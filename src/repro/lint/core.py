"""Rule-engine core shared by the model verifier and the code analyzer.

Dearle et al.'s constraint-based deployment middleware (arXiv:1006.4733)
argues that deployment constraints should be checked *statically, before
enactment* — an autonomic manager that only discovers invalid inputs
mid-migration has already lost.  This package gives the reproduction that
layer.  The machinery here is deliberately generic:

* :class:`Severity` — ``error``/``warning``/``info`` levels with ordering;
* :class:`Finding` — one machine-readable diagnostic;
* :class:`Rule` — a named, tagged check producing findings from a context;
* :class:`RuleRegistry` — the pluggable catalog rules register into;
* :class:`LintReport` — an aggregation with filtering and exit-code logic;
* :func:`render_text` / :func:`render_json` — the two reporters.

The two pillars — :mod:`repro.lint.model_rules` (deployment models) and
:mod:`repro.lint.code` (AST conventions) — are just rule sets over
different context types plugged into this engine.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import (
    Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple,
)

from repro.core.errors import ReproError
from repro.core.report import ReportBase


class Severity(enum.IntEnum):
    """Diagnostic severity; comparisons follow escalation order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ReproError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.label for s in cls]}") from None


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule.

    ``subject`` identifies what the finding is about (an entity id for
    model rules, unused for code rules where ``file``/``line`` locate it).
    """

    rule: str
    severity: Severity
    message: str
    subject: str = ""
    file: Optional[str] = None
    line: Optional[int] = None
    col: Optional[int] = None
    detail: Mapping[str, Any] = field(default_factory=dict)

    def location(self) -> str:
        if self.file is not None:
            return f"{self.file}:{self.line}" if self.line else self.file
        return self.subject

    def sort_key(self) -> Tuple[Any, ...]:
        """Location-major ordering: (path, line, col, rule id, ...).

        Findings sort by where they are, not how bad they are, so output
        is stable as rules evolve and diffs stay local to edited files.
        """
        return (self.file or "", self.line or 0, self.col or 0, self.rule,
                self.subject, -self.severity, self.message)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
        }
        if self.subject:
            out["subject"] = self.subject
        if self.file is not None:
            out["file"] = self.file
        if self.line is not None:
            out["line"] = self.line
        if self.col is not None:
            out["col"] = self.col
        if self.detail:
            out["detail"] = dict(self.detail)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        """Inverse of :meth:`as_dict` (used by the result cache)."""
        return cls(
            rule=data["rule"],
            severity=Severity.parse(data["severity"]),
            message=data["message"],
            subject=data.get("subject", ""),
            file=data.get("file"),
            line=data.get("line"),
            col=data.get("col"),
            detail=dict(data.get("detail", {})))

    def __str__(self) -> str:
        where = self.location()
        prefix = f"{where}: " if where else ""
        return f"{prefix}{self.message} [{self.rule}]"


class Rule:
    """A named static check.

    Subclasses set the class attributes and implement :meth:`check`, which
    receives a context object (whose type depends on the pillar: a
    :class:`~repro.lint.model_rules.ModelLintContext` or a
    :class:`~repro.lint.code.CodeLintContext`) and yields findings.
    """

    #: Stable identifier, e.g. ``"MV003"``; used for suppression and docs.
    rule_id: str = ""
    #: Default severity of findings this rule emits.
    severity: Severity = Severity.ERROR
    #: One-line description for the rule catalog.
    description: str = ""
    #: Free-form grouping labels; registries can run tag subsets (the
    #: effector pre-flight runs only rules tagged ``"deployment"``).
    tags: frozenset = frozenset()

    def check(self, context: Any) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, message: str, subject: str = "",
                severity: Optional[Severity] = None,
                file: Optional[str] = None, line: Optional[int] = None,
                col: Optional[int] = None, **detail: Any) -> Finding:
        """Convenience constructor stamped with this rule's id/severity."""
        return Finding(self.rule_id, severity or self.severity, message,
                       subject=subject, file=file, line=line, col=col,
                       detail=detail)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.rule_id!r})"


@dataclass
class LintReport(ReportBase):
    """All findings of one verification run."""

    findings: List[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "LintReport") -> "LintReport":
        self.findings.extend(other.findings)
        return self

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def by_severity(self, severity: Severity) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == severity)

    @property
    def errors(self) -> Tuple[Finding, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def has_errors(self) -> bool:
        return any(f.severity >= Severity.ERROR for f in self.findings)

    def counts(self) -> Dict[str, int]:
        out = {s.label: 0 for s in Severity}
        for finding in self.findings:
            out[finding.severity.label] += 1
        return out

    def at_least(self, severity: Severity) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity >= severity)

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        """CLI/CI convention: 1 when findings at/above *fail_on* exist."""
        return 1 if self.at_least(fail_on) else 0

    def sorted(self) -> "LintReport":
        """Deterministic order: by (path, line, col, rule id), deduped.

        Identical findings collapse to one (a file reached through two
        input paths, or a rule run twice, must not double-report), so
        JSON/SARIF output is byte-identical run to run.
        """
        seen = set()
        unique: List[Finding] = []
        for finding in sorted(self.findings, key=Finding.sort_key):
            key = (finding.rule, finding.severity, finding.message,
                   finding.subject, finding.file, finding.line, finding.col,
                   tuple(sorted((k, repr(v))
                                for k, v in finding.detail.items())))
            if key in seen:
                continue
            seen.add(key)
            unique.append(finding)
        return LintReport(unique)

    # -- Report protocol (delegates to the module-level reporters) -----
    def to_dict(self, title: str = "", **opts: Any) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "findings": [f.as_dict() for f in self.sorted()],
            "summary": self.counts(),
        }
        if title:
            payload["target"] = title
        return payload

    def render(self, title: str = "", **opts: Any) -> str:
        return render_text(self, title=title)

    def summary_line(self) -> str:
        counts = self.counts()
        parts = ", ".join(f"{counts[s.label]} {s.label}(s)"
                          for s in sorted(Severity, reverse=True)
                          if counts[s.label])
        return parts if parts else "clean"


class RuleRegistry:
    """Pluggable catalog of rules.

    Rules register under their ``rule_id``; downstream users extend the
    verifier by subclassing :class:`Rule` and calling :meth:`register` (see
    ``docs/STATIC_ANALYSIS.md``).
    """

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: Dict[str, Rule] = {}
        for rule in rules:
            self.register(rule)

    def register(self, rule: Rule, replace: bool = False) -> Rule:
        if isinstance(rule, type):
            rule = rule()
        if not rule.rule_id:
            raise ReproError(f"rule {rule!r} has no rule_id")
        if rule.rule_id in self._rules and not replace:
            raise ReproError(f"rule {rule.rule_id!r} already registered")
        self._rules[rule.rule_id] = rule
        return rule

    def unregister(self, rule_id: str) -> None:
        if rule_id not in self._rules:
            raise ReproError(f"rule {rule_id!r} is not registered")
        del self._rules[rule_id]

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise ReproError(f"rule {rule_id!r} is not registered") from None

    def rules(self, tags: Optional[Iterable[str]] = None,
              only: Optional[Iterable[str]] = None) -> Tuple[Rule, ...]:
        """Registered rules, optionally restricted to *tags* and/or ids."""
        wanted_tags = None if tags is None else set(tags)
        wanted_ids = None if only is None else set(only)
        selected = []
        for rule_id in sorted(self._rules):
            rule = self._rules[rule_id]
            if wanted_ids is not None and rule_id not in wanted_ids:
                continue
            if wanted_tags is not None and not (wanted_tags & rule.tags):
                continue
            selected.append(rule)
        return tuple(selected)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules())

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def copy(self) -> "RuleRegistry":
        return RuleRegistry(self._rules.values())

    def run(self, context: Any, tags: Optional[Iterable[str]] = None,
            only: Optional[Iterable[str]] = None) -> LintReport:
        """Apply the (selected) rules to *context*.

        A crashing rule must not abort verification of everything else, so
        unexpected exceptions surface as error findings against the rule
        itself (the same contract pylint/ruff follow for plugin crashes).
        """
        report = LintReport()
        for rule in self.rules(tags=tags, only=only):
            try:
                report.extend(rule.check(context))
            except Exception as exc:  # noqa: BLE001 — isolate rule crashes
                report.add(Finding(
                    rule.rule_id, Severity.ERROR,
                    f"rule crashed: {type(exc).__name__}: {exc}",
                    detail={"crash": True}))
        return report.sorted()


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------

def render_text(report: LintReport, title: str = "") -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for finding in report.sorted():
        lines.append(f"  {finding.severity.label:<7} {finding}")
    counts = report.counts()
    summary = ", ".join(f"{counts[s.label]} {s.label}(s)"
                        for s in sorted(Severity, reverse=True)
                        if counts[s.label])
    lines.append(f"  {summary}" if summary else "  clean")
    return "\n".join(lines)


def render_json(report: LintReport, title: str = "") -> str:
    """Machine-readable report (stable key order for diffing in CI)."""
    payload: Dict[str, Any] = {
        "findings": [f.as_dict() for f in report.sorted()],
        "summary": report.counts(),
    }
    if title:
        payload["target"] = title
    return json.dumps(payload, indent=2, sort_keys=True)
