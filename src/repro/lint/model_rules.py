"""Pillar 1 — the model verifier: static rules over deployment models.

The analyzer/effector pipeline assumes its inputs are well-formed: every
component mapped to exactly one live host, capacities respected, parameters
in range, interacting components mutually reachable, and the hard
constraint set satisfiable.  Nothing in the paper's loop checks any of that
before algorithms search a model or the effector migrates live components —
these rules do, following the static-verification discipline of
constraint-based deployment middleware (arXiv:1006.4733).

Rules are tagged:

* ``deployment`` — judge a (model, deployment) pair; this subset is the
  effector/batch pre-flight gate (:func:`verify_deployment`);
* ``topology`` / ``parameters`` / ``objectives`` — judge the model itself
  regardless of any particular deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Type,
)

from repro.core.constraints import (
    CollocationConstraint, ConstraintSet, LocationConstraint,
)
from repro.core.model import DeploymentModel
from repro.core.objectives import Objective
from repro.lint.core import (
    Finding, LintReport, Rule, RuleRegistry, Severity,
)

DEPLOYMENT = "deployment"
TOPOLOGY = "topology"
PARAMETERS = "parameters"
OBJECTIVES = "objectives"


@dataclass
class ModelLintContext:
    """Everything the model rules may inspect.

    ``deployment`` defaults to the model's current deployment;
    ``constraints`` defaults to the constraints stored on the model itself.
    ``objectives`` are the Objective *classes* whose incremental-evaluation
    contract should be audited (instances work too).
    """

    model: DeploymentModel
    deployment: Optional[Mapping[str, str]] = None
    constraints: Optional[ConstraintSet] = None
    objectives: Sequence[object] = ()

    def __post_init__(self) -> None:
        if self.deployment is None:
            self.deployment = self.model.deployment.as_dict()
        if self.constraints is None:
            self.constraints = ConstraintSet(self.model.constraints)

    # -- shared helpers (computed once per run, used by several rules) ------
    _reachable: Dict[str, Set[str]] = field(default_factory=dict, repr=False)

    def reachable_from(self, host_id: str) -> Set[str]:
        """Hosts reachable from *host_id* over existing physical links."""
        cached = self._reachable.get(host_id)
        if cached is not None:
            return cached
        adjacency: Dict[str, Set[str]] = {}
        for link in self.model.physical_links:
            a, b = link.hosts
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        seen: Set[str] = set()
        stack = [host_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(adjacency.get(current, ()))
        for member in seen:
            self._reachable[member] = seen
        return seen


class ModelRule(Rule):
    """Base class for rules over :class:`ModelLintContext`."""

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Deployment-shape rules (the pre-flight subset)
# ---------------------------------------------------------------------------

class UnmappedComponentRule(ModelRule):
    rule_id = "MV001"
    severity = Severity.ERROR
    description = ("Every component must be mapped to exactly one host; "
                   "unmapped components cannot be migrated or scored.")
    tags = frozenset({DEPLOYMENT})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        for component_id in context.model.component_ids:
            if component_id not in context.deployment:
                yield self.finding(
                    "component is not mapped to any host",
                    subject=f"component {component_id!r}")


class UnknownDeploymentEntityRule(ModelRule):
    rule_id = "MV002"
    severity = Severity.ERROR
    description = ("The deployment map must reference only declared "
                   "components and hosts.")
    tags = frozenset({DEPLOYMENT})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        model = context.model
        for component_id, host_id in sorted(context.deployment.items()):
            if not model.has_component(component_id):
                yield self.finding(
                    "deployment maps an undeclared component",
                    subject=f"component {component_id!r}")
            if not model.has_host(host_id):
                yield self.finding(
                    f"deployment places {component_id!r} on an undeclared "
                    f"host {host_id!r}",
                    subject=f"host {host_id!r}")


class _CapacityRule(ModelRule):
    """Shared machinery for per-host additive resource capacities."""

    resource = ""  # "memory" or "cpu"

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        model = context.model
        used: Dict[str, float] = {}
        for component_id, host_id in context.deployment.items():
            if not (model.has_component(component_id)
                    and model.has_host(host_id)):
                continue  # MV002's finding, not ours
            demand = model.component(component_id).params.get(self.resource)
            used[host_id] = used.get(host_id, 0.0) + demand
        for host_id in sorted(used):
            capacity = model.host(host_id).params.get(self.resource)
            if used[host_id] > capacity:
                yield self.finding(
                    f"{self.resource} over capacity: components need "
                    f"{used[host_id]:g} but only {capacity:g} available",
                    subject=f"host {host_id!r}",
                    used=used[host_id], capacity=capacity)


class MemoryCapacityRule(_CapacityRule):
    rule_id = "MV003"
    severity = Severity.ERROR
    description = ("Total memory of the components on a host must not "
                   "exceed the host's available memory.")
    tags = frozenset({DEPLOYMENT})
    resource = "memory"


class CpuCapacityRule(_CapacityRule):
    rule_id = "MV004"
    severity = Severity.ERROR
    description = ("Total CPU demand of the components on a host must not "
                   "exceed the host's CPU capacity.")
    tags = frozenset({DEPLOYMENT})
    resource = "cpu"


class UnbackedLogicalLinkRule(ModelRule):
    rule_id = "MV005"
    severity = Severity.ERROR
    description = ("Interacting components placed on distinct hosts need a "
                   "physical path between those hosts.")
    tags = frozenset({DEPLOYMENT, TOPOLOGY})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        model = context.model
        for comp_a, comp_b, _link in model.interaction_pairs():
            host_a = context.deployment.get(comp_a)
            host_b = context.deployment.get(comp_b)
            if host_a is None or host_b is None or host_a == host_b:
                continue
            if not (model.has_host(host_a) and model.has_host(host_b)):
                continue
            if host_b not in context.reachable_from(host_a):
                yield self.finding(
                    f"logical link {comp_a!r}<->{comp_b!r} has no physical "
                    f"path between hosts {host_a!r} and {host_b!r}",
                    subject=f"logical link {comp_a!r}<->{comp_b!r}")


class ConstraintViolationRule(ModelRule):
    rule_id = "MV010"
    severity = Severity.ERROR
    description = ("The deployment must satisfy every hard constraint "
                   "(the paper's ConstraintChecker, applied statically).")
    tags = frozenset({DEPLOYMENT})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        model = context.model
        # Guard each constraint separately so one referencing unknown
        # entities (MV011's finding) cannot crash the whole pass.
        for constraint in context.constraints:
            try:
                messages = constraint.violations(model, context.deployment)
            except Exception:  # noqa: BLE001 — dangling constraint
                continue
            for message in messages:
                yield self.finding(message, subject=repr(constraint))


# ---------------------------------------------------------------------------
# Parameter-range rules
# ---------------------------------------------------------------------------

class NegativeFrequencyRule(ModelRule):
    rule_id = "MV006"
    severity = Severity.ERROR
    description = ("Logical-link interaction frequencies and event sizes "
                   "must be non-negative.")
    tags = frozenset({PARAMETERS})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        for link in context.model.logical_links:
            subject = f"logical link {link.components[0]!r}<->{link.components[1]!r}"
            if link.frequency < 0:
                yield self.finding(
                    f"negative interaction frequency {link.frequency:g}",
                    subject=subject)
            if link.evt_size < 0:
                yield self.finding(
                    f"negative event size {link.evt_size:g}", subject=subject)


class ReliabilityRangeRule(ModelRule):
    rule_id = "MV007"
    severity = Severity.ERROR
    description = "Physical-link reliabilities must lie in [0, 1]."
    tags = frozenset({PARAMETERS})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        for link in context.model.physical_links:
            value = link.params.get("reliability")
            if not 0.0 <= value <= 1.0:
                yield self.finding(
                    f"reliability {value:g} outside [0, 1]",
                    subject=f"physical link {link.hosts[0]!r}<->{link.hosts[1]!r}")


class NegativeResourceRule(ModelRule):
    rule_id = "MV008"
    severity = Severity.ERROR
    description = ("Host/component memory and CPU, and physical-link "
                   "bandwidth and delay, must be non-negative.")
    tags = frozenset({PARAMETERS})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        model = context.model
        for host in model.hosts:
            for name in ("memory", "cpu"):
                value = host.params.get(name)
                if value < 0:
                    yield self.finding(f"negative {name} {value:g}",
                                       subject=f"host {host.id!r}")
        for component in model.components:
            for name in ("memory", "cpu"):
                value = component.params.get(name)
                if value < 0:
                    yield self.finding(f"negative {name} {value:g}",
                                       subject=f"component {component.id!r}")
        for link in model.physical_links:
            subject = f"physical link {link.hosts[0]!r}<->{link.hosts[1]!r}"
            for name in ("bandwidth", "delay"):
                value = link.params.get(name)
                if value < 0:
                    yield self.finding(f"negative {name} {value:g}",
                                       subject=subject)


class PerfectlyReliableHostRule(ModelRule):
    rule_id = "MV017"
    severity = Severity.INFO
    description = ("A host whose every physical link has reliability 1.0 is "
                   "modeled as failure-proof: availability objectives cannot "
                   "rank placements on it and fault campaigns degrade "
                   "nothing — usually unmeasured links, not a perfect "
                   "network.")
    tags = frozenset({PARAMETERS})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        links_by_host: Dict[str, List] = {}
        for link in context.model.physical_links:
            for host_id in link.hosts:
                links_by_host.setdefault(host_id, []).append(link)
        for host_id in context.model.host_ids:
            links = links_by_host.get(host_id)
            if links and all(link.params.get("reliability") == 1.0
                             for link in links):
                yield self.finding(
                    f"all {len(links)} physical links of this host have "
                    "reliability 1.0; fault campaigns and availability "
                    "ranking will be no-ops around it",
                    subject=f"host {host_id!r}", links=len(links))


# ---------------------------------------------------------------------------
# Topology and constraint-set rules
# ---------------------------------------------------------------------------

class UnreachableHostRule(ModelRule):
    rule_id = "MV009"
    severity = Severity.WARNING
    description = ("Hosts cut off from the largest physically-connected "
                   "group can neither send monitoring data nor receive "
                   "migrated components.")
    tags = frozenset({TOPOLOGY})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        host_ids = context.model.host_ids
        if len(host_ids) < 2:
            return
        groups: List[Set[str]] = []
        seen: Set[str] = set()
        for host_id in host_ids:
            if host_id in seen:
                continue
            group = context.reachable_from(host_id)
            seen |= group
            groups.append(group)
        if len(groups) < 2:
            return
        main = max(groups, key=len)
        for group in groups:
            if group is main:
                continue
            for host_id in sorted(group):
                yield self.finding(
                    "host is not physically reachable from the main "
                    f"partition ({len(main)} hosts)",
                    subject=f"host {host_id!r}")


class DanglingConstraintRule(ModelRule):
    rule_id = "MV011"
    severity = Severity.WARNING
    description = ("Location/collocation constraints referencing entities "
                   "absent from the model are dead weight (or typos).")
    tags = frozenset({TOPOLOGY})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        model = context.model
        for constraint in context.constraints:
            if isinstance(constraint, LocationConstraint):
                if not model.has_component(constraint.component):
                    yield self.finding(
                        "location constraint references undeclared "
                        f"component {constraint.component!r}",
                        subject=repr(constraint))
                hosts = (constraint.allowed if constraint.allowed is not None
                         else constraint.forbidden) or ()
                for host_id in sorted(hosts):
                    if not model.has_host(host_id):
                        yield self.finding(
                            "location constraint references undeclared "
                            f"host {host_id!r}", subject=repr(constraint))
            elif isinstance(constraint, CollocationConstraint):
                for component_id in constraint.components:
                    if not model.has_component(component_id):
                        yield self.finding(
                            "collocation constraint references undeclared "
                            f"component {component_id!r}",
                            subject=repr(constraint))


class UnsatisfiableConstraintRule(ModelRule):
    rule_id = "MV012"
    severity = Severity.ERROR
    description = ("Each component must have at least one host the "
                   "constraint set allows it on (cheap per-component "
                   "satisfiability; a full CSP is the algorithms' job).")
    tags = frozenset({TOPOLOGY})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        model = context.model
        if not model.host_ids:
            return
        for component_id in model.component_ids:
            try:
                allowed = context.constraints.allowed_hosts(
                    model, {}, component_id)
            except Exception:  # noqa: BLE001 — dangling constraint
                continue
            if not allowed:
                yield self.finding(
                    "no host satisfies the constraint set for this "
                    "component; the deployment space is empty",
                    subject=f"component {component_id!r}")


class IsolatedComponentRule(ModelRule):
    rule_id = "MV013"
    severity = Severity.INFO
    description = ("Components with no logical links do not influence any "
                   "interaction-based objective; placement is arbitrary.")
    tags = frozenset({TOPOLOGY})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        for component_id in context.model.component_ids:
            if not context.model.logical_neighbors(component_id):
                yield self.finding("component has no logical links",
                                   subject=f"component {component_id!r}")


class CompiledEngineAdvisoryRule(ModelRule):
    rule_id = "MV016"
    severity = Severity.INFO
    description = ("Models beyond the object path's comfort zone "
                   "(hosts x components > 2000) should be searched through "
                   "the compiled kernels (repro.algorithms.compiled), which "
                   "the evaluation engine uses by default for the built-in "
                   "objectives.")
    tags = frozenset({TOPOLOGY})

    #: hosts x components above which a full object-path evaluation walk
    #: becomes the dominant cost of a search run (see docs/PERFORMANCE.md).
    COMFORT_ZONE = 2000

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        hosts = len(context.model.host_ids)
        components = len(context.model.component_ids)
        size = hosts * components
        if size > self.COMFORT_ZONE:
            yield self.finding(
                f"model size {hosts} hosts x {components} components "
                f"(= {size}) exceeds the object-path comfort zone "
                f"({self.COMFORT_ZONE}); ensure the evaluation engine's "
                "compiled kernels are in use (use_kernels=True, built-in "
                "objectives)",
                subject=f"model {context.model.name!r}",
                hosts=hosts, components=components, size=size)


class EmptyModelRule(ModelRule):
    rule_id = "MV014"
    severity = Severity.WARNING
    description = "A model without hosts or without components is vacuous."
    tags = frozenset({TOPOLOGY})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        if not context.model.host_ids:
            yield self.finding("model declares no hosts",
                               subject=f"model {context.model.name!r}")
        if not context.model.component_ids:
            yield self.finding("model declares no components",
                               subject=f"model {context.model.name!r}")


# ---------------------------------------------------------------------------
# Objective-contract rules
# ---------------------------------------------------------------------------

class InfeasiblePlacementRatioRule(ModelRule):
    rule_id = "MV018"
    severity = Severity.WARNING
    description = ("Constraint sets that rule out most of the placement "
                   "space make search algorithms spend their rounds "
                   "probing moves that can never be applied; over half of "
                   "all (component, host) placements being infeasible "
                   "usually signals over-tight location constraints or "
                   "undersized hosts.")
    tags = frozenset({TOPOLOGY})

    #: Warn when more than this fraction of the placement space is
    #: infeasible against an empty deployment.
    THRESHOLD = 0.5
    #: Skip the quadratic probe sweep beyond this many (component, host)
    #: pairs; the advisory targets interactively-sized models.
    MAX_PAIRS = 20_000

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        model = context.model
        constraints = context.constraints
        hosts = model.host_ids
        components = model.component_ids
        total = len(hosts) * len(components)
        if not total or total > self.MAX_PAIRS:
            return
        if constraints is None or not len(constraints):
            return
        empty: Mapping[str, str] = {}
        infeasible = 0
        for component in components:
            for host in hosts:
                try:
                    if not constraints.allows(model, empty, component,
                                              host):
                        infeasible += 1
                except Exception:  # noqa: BLE001 - user constraint raised
                    return  # cannot judge a constraint set that errors
        ratio = infeasible / total
        if ratio > self.THRESHOLD:
            yield self.finding(
                f"{infeasible} of {total} (component, host) placements "
                f"({ratio:.0%}) are infeasible even against an empty "
                "deployment; the constraint set leaves the search "
                "algorithms little legal room to move",
                subject=f"model {model.name!r}",
                infeasible=infeasible, total=total, ratio=round(ratio, 4))


class DeltaContractRule(ModelRule):
    rule_id = "MV015"
    severity = Severity.ERROR
    description = ("Objectives declaring supports_delta=True must override "
                   "move_delta with a real incremental implementation; "
                   "inheriting the base recompute-from-scratch silently "
                   "forfeits the O(degree) fast path the engine was "
                   "promised.")
    tags = frozenset({OBJECTIVES})

    def check(self, context: ModelLintContext) -> Iterable[Finding]:
        for objective in context.objectives or default_objectives():
            cls = objective if isinstance(objective, type) else type(objective)
            subject = f"objective {cls.__name__}"
            move_delta = getattr(cls, "move_delta", None)
            if not callable(move_delta):
                yield self.finding("move_delta is missing or not callable",
                                   subject=subject)
                continue
            if getattr(cls, "supports_delta", False) and \
                    move_delta is Objective.move_delta:
                yield self.finding(
                    "declares supports_delta=True but inherits the base "
                    "move_delta (full re-evaluation)", subject=subject)


def default_objectives() -> Tuple[Type[Objective], ...]:
    """Every concrete Objective subclass importable from the core package.

    Walking ``__subclasses__`` keeps the audit in sync with the registry of
    objectives automatically — a new objective is contract-checked the
    moment it is defined, with no list to maintain.
    """
    out: List[Type[Objective]] = []
    stack: List[Type[Objective]] = list(Objective.__subclasses__())
    while stack:
        cls = stack.pop()
        stack.extend(cls.__subclasses__())
        if cls not in out:
            out.append(cls)
    return tuple(sorted(out, key=lambda c: c.__name__))


# ---------------------------------------------------------------------------
# Registry and entry points
# ---------------------------------------------------------------------------

MODEL_RULES: Tuple[Type[ModelRule], ...] = (
    UnmappedComponentRule,
    UnknownDeploymentEntityRule,
    MemoryCapacityRule,
    CpuCapacityRule,
    UnbackedLogicalLinkRule,
    NegativeFrequencyRule,
    ReliabilityRangeRule,
    NegativeResourceRule,
    UnreachableHostRule,
    ConstraintViolationRule,
    DanglingConstraintRule,
    UnsatisfiableConstraintRule,
    IsolatedComponentRule,
    EmptyModelRule,
    CompiledEngineAdvisoryRule,
    InfeasiblePlacementRatioRule,
    DeltaContractRule,
    PerfectlyReliableHostRule,
)


def model_rule_registry() -> RuleRegistry:
    """A fresh registry holding the built-in model verifier rules."""
    return RuleRegistry(cls() for cls in MODEL_RULES)


def verify_model(model: DeploymentModel,
                 deployment: Optional[Mapping[str, str]] = None,
                 constraints: Optional[ConstraintSet] = None,
                 objectives: Sequence[object] = (),
                 registry: Optional[RuleRegistry] = None,
                 tags: Optional[Iterable[str]] = None) -> LintReport:
    """Run the full model verifier (or a tag subset) over *model*."""
    context = ModelLintContext(model, deployment=deployment,
                               constraints=constraints,
                               objectives=objectives)
    active = registry if registry is not None else model_rule_registry()
    return active.run(context, tags=tags)


def verify_deployment(model: DeploymentModel,
                      deployment: Optional[Mapping[str, str]] = None,
                      constraints: Optional[ConstraintSet] = None,
                      registry: Optional[RuleRegistry] = None) -> LintReport:
    """The pre-flight subset: only rules that judge a deployment's shape.

    This is what :class:`repro.core.effector.Effector` runs before
    enactment and :class:`repro.desi.batch.ExperimentRunner` runs over
    generated models.
    """
    return verify_model(model, deployment=deployment, constraints=constraints,
                        registry=registry, tags=(DEPLOYMENT,))
