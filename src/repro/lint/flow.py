"""Intraprocedural control-flow graphs and a worklist dataflow solver.

The per-node AST rules of :mod:`repro.lint.code` answer "does this
statement look wrong?"; they cannot answer "can execution *reach* this
write without holding the lock?" or "does this wall-clock value *flow
into* the rendered report?".  Those are whole-function questions, and
this module supplies the machinery to ask them:

* :func:`build_cfg` — a :class:`ControlFlowGraph` per function, covering
  branches, ``while``/``for`` loops (with ``break``/``continue`` and
  ``else``), ``try``/``except``/``else``/``finally`` (with exception
  edges), ``with``, and ``match``;
* :func:`solve` — a generic iterate-to-fixpoint worklist solver over a
  :class:`DataflowProblem` (forward or backward, set-union join);
* :class:`ReachingDefinitions` / :class:`Liveness` — the two classic
  instances, used by the determinism pack (taint-style value tracking)
  and exposed for custom rules.

The graphs are an over-approximation by design: every statement that
*may* raise gets an exception edge to the innermost handler (or the
function exit), so "no path reaches X" conclusions are safe to lint on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set,
    Tuple, Union,
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Edge kinds, recorded so analyses can treat exceptional flow specially.
NORMAL = "normal"
TRUE = "true"
FALSE = "false"
EXCEPTION = "exception"
LOOP = "loop"

#: Compound statements: their *bodies* become separate blocks; only the
#: header expression evaluates in the block holding the statement.
COMPOUND_STATEMENTS = (ast.If, ast.For, ast.AsyncFor, ast.While, ast.With,
                       ast.AsyncWith, ast.Try, ast.Match, ast.FunctionDef,
                       ast.AsyncFunctionDef, ast.ClassDef)


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of simple statements."""

    index: int
    statements: List[ast.stmt] = field(default_factory=list)
    successors: List[Tuple["BasicBlock", str]] = field(default_factory=list)
    predecessors: List[Tuple["BasicBlock", str]] = field(default_factory=list)

    def succ(self, kinds: Optional[Iterable[str]] = None
             ) -> Tuple["BasicBlock", ...]:
        wanted = None if kinds is None else set(kinds)
        return tuple(block for block, kind in self.successors
                     if wanted is None or kind in wanted)

    @property
    def line(self) -> Optional[int]:
        return self.statements[0].lineno if self.statements else None

    def __repr__(self) -> str:
        return (f"BasicBlock({self.index}, "
                f"{len(self.statements)} stmts, "
                f"-> {[b.index for b, _ in self.successors]})")


class ControlFlowGraph:
    """CFG of one function: blocks, a unique entry, a unique exit."""

    def __init__(self, function: FunctionNode):
        self.function = function
        self.blocks: List[BasicBlock] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def add_edge(self, src: BasicBlock, dst: BasicBlock,
                 kind: str = NORMAL) -> None:
        if any(b is dst and k == kind for b, k in src.successors):
            return
        src.successors.append((dst, kind))
        dst.predecessors.append((src, kind))

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def statements(self) -> Iterator[Tuple[BasicBlock, ast.stmt]]:
        for block in self.blocks:
            for statement in block.statements:
                yield block, statement

    def reachable(self, start: BasicBlock,
                  stop: Optional[Callable[[BasicBlock], bool]] = None,
                  ) -> Set[int]:
        """Block indices reachable from *start* (inclusive).

        Traversal does not continue *past* a block for which *stop* is
        true, but the block itself is included — "can exit be reached
        without passing a release?" is ``exit.index in cfg.reachable(
        after_acquire, stop=contains_release)``.
        """
        seen: Set[int] = set()
        stack = [start]
        while stack:
            block = stack.pop()
            if block.index in seen:
                continue
            seen.add(block.index)
            if stop is not None and stop(block):
                continue
            stack.extend(succ for succ, _ in block.successors)
        return seen


def may_raise(statement: ast.stmt) -> bool:
    """Whether *statement* can plausibly raise.

    Over-approximate: any call, subscript, attribute access, binary
    arithmetic, ``raise``, or ``assert`` may raise; plain constant/name
    rebinding and ``pass``/``break``/``continue``/``global`` cannot.
    """
    if isinstance(statement, (ast.Raise, ast.Assert)):
        return True
    if isinstance(statement, COMPOUND_STATEMENTS):
        # Only the header expression belongs to the enclosing block.
        return any(_expression_may_raise(expr)
                   for expr in header_expressions(statement))
    return _expression_may_raise(statement)


def _expression_may_raise(node: ast.AST) -> bool:
    return any(isinstance(sub, (ast.Call, ast.Subscript, ast.Attribute,
                                ast.BinOp, ast.Await, ast.Yield,
                                ast.YieldFrom, ast.Starred))
               for sub in ast.walk(node))


def header_expressions(statement: ast.stmt) -> List[ast.expr]:
    """The expressions a compound statement evaluates in its own block
    (the loop iterable, the branch test, the ``with`` context items)."""
    if isinstance(statement, ast.If) or isinstance(statement, ast.While):
        return [statement.test]
    if isinstance(statement, (ast.For, ast.AsyncFor)):
        return [statement.iter]
    if isinstance(statement, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in statement.items]
    if isinstance(statement, ast.Match):
        return [statement.subject]
    return []


class _Builder:
    """Recursive-descent CFG construction.

    ``_loops`` is a stack of ``(header, after)`` targets for
    ``continue``/``break``; ``_handlers`` is a stack of exception targets
    (innermost first) — the dispatch block of the nearest enclosing
    ``try`` (or its ``finally``), falling back to the function exit.
    """

    def __init__(self, function: FunctionNode):
        self.cfg = ControlFlowGraph(function)
        self._loops: List[Tuple[BasicBlock, BasicBlock]] = []
        self._handlers: List[BasicBlock] = [self.cfg.exit]
        tail = self._sequence(function.body, self.cfg.entry)
        if tail is not None:
            self.cfg.add_edge(tail, self.cfg.exit)

    # -- helpers -----------------------------------------------------------
    def _place(self, statement: ast.stmt,
               block: BasicBlock) -> BasicBlock:
        """Append *statement* to *block*, adding its exception edge."""
        block.statements.append(statement)
        if may_raise(statement):
            self.cfg.add_edge(block, self._handlers[-1], EXCEPTION)
        return block

    def _sequence(self, statements: Iterable[ast.stmt],
                  block: Optional[BasicBlock]) -> Optional[BasicBlock]:
        """Thread *statements* through the graph; returns the open tail
        block, or None when the sequence cannot fall through."""
        for statement in statements:
            if block is None:  # dead code after return/raise/break
                block = self.cfg.new_block()
            block = self._statement(statement, block)
        return block

    # -- dispatch ----------------------------------------------------------
    def _statement(self, statement: ast.stmt,
                   block: BasicBlock) -> Optional[BasicBlock]:
        if isinstance(statement, ast.If):
            return self._if(statement, block)
        if isinstance(statement, (ast.While,)):
            return self._while(statement, block)
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            return self._for(statement, block)
        if isinstance(statement, ast.Try):
            return self._try(statement, block)
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            return self._with(statement, block)
        if isinstance(statement, ast.Match):
            return self._match(statement, block)
        if isinstance(statement, (ast.Return, ast.Raise)):
            self._place(statement, block)
            target = (self._handlers[-1] if isinstance(statement, ast.Raise)
                      else self.cfg.exit)
            kind = EXCEPTION if isinstance(statement, ast.Raise) else NORMAL
            self.cfg.add_edge(block, target, kind)
            return None
        if isinstance(statement, ast.Break):
            self._place(statement, block)
            if self._loops:
                self.cfg.add_edge(block, self._loops[-1][1])
            return None
        if isinstance(statement, ast.Continue):
            self._place(statement, block)
            if self._loops:
                self.cfg.add_edge(block, self._loops[-1][0], LOOP)
            return None
        # Nested defs/classes are opaque single statements here; their own
        # bodies get their own CFGs via iter_functions().
        return self._place(statement, block)

    # -- compound forms ----------------------------------------------------
    def _if(self, statement: ast.If, block: BasicBlock) -> Optional[BasicBlock]:
        self._place(statement, block)
        after = self.cfg.new_block()
        then_entry = self.cfg.new_block()
        self.cfg.add_edge(block, then_entry, TRUE)
        then_tail = self._sequence(statement.body, then_entry)
        if then_tail is not None:
            self.cfg.add_edge(then_tail, after)
        if statement.orelse:
            else_entry = self.cfg.new_block()
            self.cfg.add_edge(block, else_entry, FALSE)
            else_tail = self._sequence(statement.orelse, else_entry)
            if else_tail is not None:
                self.cfg.add_edge(else_tail, after)
        else:
            self.cfg.add_edge(block, after, FALSE)
        return after if after.predecessors else None

    def _while(self, statement: ast.While,
               block: BasicBlock) -> Optional[BasicBlock]:
        header = self.cfg.new_block()
        self.cfg.add_edge(block, header)
        self._place(statement, header)
        after = self.cfg.new_block()
        body_entry = self.cfg.new_block()
        self.cfg.add_edge(header, body_entry, TRUE)
        self._loops.append((header, after))
        body_tail = self._sequence(statement.body, body_entry)
        self._loops.pop()
        if body_tail is not None:
            self.cfg.add_edge(body_tail, header, LOOP)
        if statement.orelse:
            else_entry = self.cfg.new_block()
            self.cfg.add_edge(header, else_entry, FALSE)
            else_tail = self._sequence(statement.orelse, else_entry)
            if else_tail is not None:
                self.cfg.add_edge(else_tail, after)
        else:
            self.cfg.add_edge(header, after, FALSE)
        return after if after.predecessors else None

    def _for(self, statement: Union[ast.For, ast.AsyncFor],
             block: BasicBlock) -> Optional[BasicBlock]:
        header = self.cfg.new_block()
        self.cfg.add_edge(block, header)
        self._place(statement, header)
        after = self.cfg.new_block()
        body_entry = self.cfg.new_block()
        self.cfg.add_edge(header, body_entry, TRUE)
        self._loops.append((header, after))
        body_tail = self._sequence(statement.body, body_entry)
        self._loops.pop()
        if body_tail is not None:
            self.cfg.add_edge(body_tail, header, LOOP)
        if statement.orelse:
            else_entry = self.cfg.new_block()
            self.cfg.add_edge(header, else_entry, FALSE)
            else_tail = self._sequence(statement.orelse, else_entry)
            if else_tail is not None:
                self.cfg.add_edge(else_tail, after)
        else:
            self.cfg.add_edge(header, after, FALSE)
        return after if after.predecessors else None

    def _with(self, statement: Union[ast.With, ast.AsyncWith],
              block: BasicBlock) -> Optional[BasicBlock]:
        self._place(statement, block)
        body_entry = self.cfg.new_block()
        self.cfg.add_edge(block, body_entry)
        body_tail = self._sequence(statement.body, body_entry)
        if body_tail is None:
            return None
        after = self.cfg.new_block()
        self.cfg.add_edge(body_tail, after)
        return after

    def _match(self, statement: ast.Match,
               block: BasicBlock) -> Optional[BasicBlock]:
        self._place(statement, block)
        after = self.cfg.new_block()
        exhaustive = False
        for case in statement.cases:
            case_entry = self.cfg.new_block()
            self.cfg.add_edge(block, case_entry, TRUE)
            case_tail = self._sequence(case.body, case_entry)
            if case_tail is not None:
                self.cfg.add_edge(case_tail, after)
            if (isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None and case.guard is None):
                exhaustive = True
        if not exhaustive:
            self.cfg.add_edge(block, after, FALSE)
        return after if after.predecessors else None

    def _try(self, statement: ast.Try,
             block: BasicBlock) -> Optional[BasicBlock]:
        self._place(statement, block)
        after = self.cfg.new_block()
        final_entry: Optional[BasicBlock] = (
            self.cfg.new_block() if statement.finalbody else None)
        # Where exceptions raised in the try body go: the handler dispatch
        # block when handlers exist, else straight to finally/outer.
        outer_handler = self._handlers[-1]
        dispatch = (self.cfg.new_block() if statement.handlers
                    else (final_entry or outer_handler))

        body_entry = self.cfg.new_block()
        self.cfg.add_edge(block, body_entry)
        self._handlers.append(dispatch)
        body_tail = self._sequence(statement.body, body_entry)
        self._handlers.pop()
        if body_tail is not None and statement.orelse:
            body_tail = self._sequence(statement.orelse, body_tail)

        join = final_entry if final_entry is not None else after
        if body_tail is not None:
            self.cfg.add_edge(body_tail, join)

        if statement.handlers:
            # A handler body may itself raise: it propagates to finally
            # (when present) or to the enclosing handler.
            escape = final_entry if final_entry is not None else outer_handler
            self._handlers.append(escape)
            for handler in statement.handlers:
                handler_entry = self.cfg.new_block()
                self.cfg.add_edge(dispatch, handler_entry, EXCEPTION)
                handler_tail = self._sequence(handler.body, handler_entry)
                if handler_tail is not None:
                    self.cfg.add_edge(handler_tail, join)
            self._handlers.pop()
            # No handler may match: the exception escapes past this try.
            self.cfg.add_edge(dispatch, escape, EXCEPTION)

        if final_entry is not None:
            final_tail = self._sequence(statement.finalbody, final_entry)
            if final_tail is not None:
                self.cfg.add_edge(final_tail, after)
                # The finally block also runs on the exceptional path out;
                # conservatively it may then propagate to the outer target.
                self.cfg.add_edge(final_tail, outer_handler, EXCEPTION)
        return after if after.predecessors else None


def build_cfg(function: FunctionNode) -> ControlFlowGraph:
    """Construct the control-flow graph of one function definition."""
    return _Builder(function).cfg


def iter_functions(tree: ast.AST) -> Iterator[FunctionNode]:
    """Every (possibly nested) function/method definition under *tree*."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ---------------------------------------------------------------------------
# Worklist dataflow solver
# ---------------------------------------------------------------------------

Fact = FrozenSet
Facts = Dict[int, Tuple[Fact, Fact]]  # block index -> (in, out)

EMPTY: Fact = frozenset()


class DataflowProblem:
    """A monotone dataflow problem with set-union join.

    Subclasses choose the ``direction`` and implement :meth:`transfer`,
    mapping the facts entering a block to the facts leaving it.  The
    solver iterates transfer functions to a fixpoint, so ``transfer``
    must be monotone (growing inputs never shrink outputs).
    """

    direction: str = "forward"

    def boundary(self, cfg: ControlFlowGraph) -> Fact:
        """Facts at the entry (forward) / exit (backward) block."""
        return EMPTY

    def transfer(self, block: BasicBlock, facts: Fact) -> Fact:
        raise NotImplementedError


def solve(cfg: ControlFlowGraph, problem: DataflowProblem) -> Facts:
    """Iterate *problem* over *cfg* to a fixpoint; returns per-block
    ``(in, out)`` fact pairs (for backward problems, ``in`` is the fact
    at block exit and ``out`` the fact at block entry)."""
    forward = problem.direction == "forward"
    start = cfg.entry if forward else cfg.exit

    def upstream(block: BasicBlock) -> Iterable[BasicBlock]:
        pairs = block.predecessors if forward else block.successors
        return [b for b, _ in pairs]

    def downstream(block: BasicBlock) -> Iterable[BasicBlock]:
        pairs = block.successors if forward else block.predecessors
        return [b for b, _ in pairs]

    facts_in: Dict[int, Fact] = {block.index: EMPTY for block in cfg}
    facts_out: Dict[int, Fact] = {block.index: EMPTY for block in cfg}
    facts_in[start.index] = problem.boundary(cfg)

    pending = [block for block in cfg]
    on_queue = {block.index for block in cfg}
    while pending:
        block = pending.pop(0)
        on_queue.discard(block.index)
        merged: Set = set(facts_in[start.index]) if block is start else set()
        for source in upstream(block):
            merged |= facts_out[source.index]
        facts_in[block.index] = frozenset(merged)
        out = problem.transfer(block, facts_in[block.index])
        if out != facts_out[block.index]:
            facts_out[block.index] = out
            for target in downstream(block):
                if target.index not in on_queue:
                    pending.append(target)
                    on_queue.add(target.index)
    return {index: (facts_in[index], facts_out[index])
            for index in facts_in}


# ---------------------------------------------------------------------------
# Classic instances
# ---------------------------------------------------------------------------

def assigned_names(statement: ast.stmt) -> Set[str]:
    """Local names (re)bound by *statement* (assignment targets, loop
    variables, ``with ... as`` bindings, aug-assignments)."""
    names: Set[str] = set()

    def target_names(target: ast.AST) -> Iterator[str]:
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store,)):
                yield node.id

    if isinstance(statement, ast.Assign):
        for target in statement.targets:
            names.update(target_names(target))
    elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
        names.update(target_names(statement.target))
    elif isinstance(statement, (ast.For, ast.AsyncFor)):
        names.update(target_names(statement.target))
    elif isinstance(statement, (ast.With, ast.AsyncWith)):
        for item in statement.items:
            if item.optional_vars is not None:
                names.update(target_names(item.optional_vars))
    elif isinstance(statement, ast.NamedExpr):  # pragma: no cover
        names.update(target_names(statement.target))
    for node in walk_headers(statement):
        if isinstance(node, ast.NamedExpr):
            names.update(target_names(node.target))
    return names


def walk_headers(statement: ast.stmt) -> Iterator[ast.AST]:
    """Walk the statement, excluding nested compound bodies (those belong
    to other blocks)."""
    if isinstance(statement, COMPOUND_STATEMENTS):
        for expr in header_expressions(statement):
            yield from ast.walk(expr)
    else:
        yield from ast.walk(statement)


def used_names(statement: ast.stmt) -> Set[str]:
    """Local names read by *statement* (header only for compounds)."""
    return {node.id for node in walk_headers(statement)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)}


#: A definition site: (variable name, line number of the defining stmt).
Definition = Tuple[str, int]


class ReachingDefinitions(DataflowProblem):
    """Which ``(name, line)`` definitions may reach each block."""

    direction = "forward"

    def transfer(self, block: BasicBlock, facts: Fact) -> Fact:
        live: Set[Definition] = set(facts)
        for statement in block.statements:
            killed = assigned_names(statement)
            if killed:
                live = {(name, line) for name, line in live
                        if name not in killed}
                live.update((name, statement.lineno) for name in killed)
        return frozenset(live)

    @staticmethod
    def at_statements(cfg: ControlFlowGraph
                      ) -> Dict[int, FrozenSet[Definition]]:
        """Definitions reaching each statement, keyed by ``id(stmt)``."""
        solution = solve(cfg, ReachingDefinitions())
        reaching: Dict[int, FrozenSet[Definition]] = {}
        for block in cfg:
            live: Set[Definition] = set(solution[block.index][0])
            for statement in block.statements:
                reaching[id(statement)] = frozenset(live)
                killed = assigned_names(statement)
                if killed:
                    live = {(name, line) for name, line in live
                            if name not in killed}
                    live.update((name, statement.lineno) for name in killed)
        return reaching


class Liveness(DataflowProblem):
    """Which names are live (read before any rebinding) at block exit."""

    direction = "backward"

    def transfer(self, block: BasicBlock, facts: Fact) -> Fact:
        live: Set[str] = set(facts)
        for statement in reversed(block.statements):
            live -= assigned_names(statement)
            live |= used_names(statement)
        return frozenset(live)
