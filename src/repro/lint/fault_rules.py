"""Pillar 1b — the fault-plan verifier: static rules over fault campaigns.

A :class:`~repro.faults.plan.FaultPlan` is an architecture-adjacent
document just like a deployment model, and it deserves the same
discipline: verify it *before* arming an injector, not by watching a
campaign misbehave.  These rules (``FP001``–``FP004``) run through the
same engine as the model verifier, so they compose with custom
registries, text/JSON rendering, and severity thresholds.

Division of labor with :meth:`FaultPlan.validate`: ``validate`` is the
strict all-or-nothing gate the injector calls (it raises on *any*
structural problem); the lint rules are the reporting surface — they
classify problems by rule id and severity so a CLI/CI run can list every
issue in every plan at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Type

from repro.core.model import DeploymentModel
from repro.faults.plan import FaultPlan, reference_problems
from repro.lint.core import (
    Finding, LintReport, Rule, RuleRegistry, Severity,
)


@dataclass
class FaultPlanLintContext:
    """A plan, optionally paired with the model it will run against."""

    plan: FaultPlan
    model: Optional[DeploymentModel] = None


class FaultPlanRule(Rule):
    """Base class for rules over :class:`FaultPlanLintContext`."""

    def check(self, context: FaultPlanLintContext) -> Iterable[Finding]:
        raise NotImplementedError


def _subject(context: FaultPlanLintContext, action) -> str:
    return (f"plan {context.plan.name!r} t={action.time:g} "
            f"{action.kind}({', '.join(action.target)})")


class UnknownFaultTargetRule(FaultPlanRule):
    rule_id = "FP001"
    severity = Severity.ERROR
    description = ("Fault actions must reference hosts and physical links "
                   "that exist in the model; a dangling target makes the "
                   "injector refuse to arm (only runs with a model).")

    def check(self, context: FaultPlanLintContext) -> Iterable[Finding]:
        if context.model is None:
            return
        for action in context.plan.actions:
            for problem in reference_problems(action, context.model):
                yield self.finding(problem,
                                   subject=_subject(context, action))


class OverlappingPartitionsRule(FaultPlanRule):
    rule_id = "FP002"
    severity = Severity.WARNING
    description = ("Partitions whose active intervals overlap interfere: "
                   "the second cut snapshots links the first already "
                   "severed, so heals can restore a state that never "
                   "existed.  Stagger them or merge the groups.")

    def check(self, context: FaultPlanLintContext) -> Iterable[Finding]:
        plan = context.plan
        intervals: List[Tuple[float, float, object]] = []
        for action in plan.actions:
            if action.kind != "partition":
                continue
            duration = action.param("duration")
            end = (action.time + float(duration) if duration is not None
                   else plan.duration)
            intervals.append((action.time, end, action))
        intervals.sort(key=lambda item: item[0])
        for (start_a, end_a, act_a), (start_b, end_b, act_b) in zip(
                intervals, intervals[1:]):
            if start_b < end_a:
                yield self.finding(
                    f"overlaps the partition of {act_a.target} active "
                    f"[{start_a:g}, {end_a:g})",
                    subject=_subject(context, act_b))


class NegativeTimeRule(FaultPlanRule):
    rule_id = "FP003"
    severity = Severity.ERROR
    description = ("Action times, durations, and flap periods must be "
                   "non-negative; the clock cannot schedule into the past.")

    def check(self, context: FaultPlanLintContext) -> Iterable[Finding]:
        if context.plan.duration < 0:
            yield self.finding(
                f"negative campaign duration {context.plan.duration:g}",
                subject=f"plan {context.plan.name!r}")
        for action in context.plan.actions:
            for problem in action.problems():
                if "negative" in problem:
                    yield self.finding(problem,
                                       subject=_subject(context, action))


class ActionAfterCampaignEndRule(FaultPlanRule):
    rule_id = "FP004"
    severity = Severity.WARNING
    description = ("Actions scheduled (or still in effect) past the "
                   "campaign's duration never run to completion in the "
                   "harness — dead weight or an off-by-one in a generator.")

    def check(self, context: FaultPlanLintContext) -> Iterable[Finding]:
        plan = context.plan
        for action in plan.actions:
            if action.time > plan.duration:
                yield self.finding(
                    f"starts after the campaign ends ({plan.duration:g})",
                    subject=_subject(context, action))
            elif action.end_time > plan.duration:
                yield self.finding(
                    f"effect extends to {action.end_time:g}, past the "
                    f"campaign end ({plan.duration:g}); it will never be "
                    "restored in-run", subject=_subject(context, action))


FAULT_RULES: Tuple[Type[FaultPlanRule], ...] = (
    UnknownFaultTargetRule,
    OverlappingPartitionsRule,
    NegativeTimeRule,
    ActionAfterCampaignEndRule,
)


def fault_rule_registry() -> RuleRegistry:
    """A fresh registry holding the built-in fault-plan rules."""
    return RuleRegistry(cls() for cls in FAULT_RULES)


def verify_fault_plan(plan: FaultPlan,
                      model: Optional[DeploymentModel] = None,
                      registry: Optional[RuleRegistry] = None) -> LintReport:
    """Run the fault-plan verifier over *plan* (and *model*, when given)."""
    context = FaultPlanLintContext(plan, model=model)
    active = registry if registry is not None else fault_rule_registry()
    return active.run(context)
