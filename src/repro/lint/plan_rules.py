"""Pillar 1d — the schedule verifier: static rules over migration schedules.

A :class:`~repro.plan.MigrationSchedule` is a promise: every wave's
barrier state stays inside the constraint set, every recorded prediction
accounts for link contention, and every move can actually traverse its
route.  The planner establishes those properties at build time, but a
schedule is a plain document — it can be saved, edited, replayed against
a drifted model, or produced by other tooling — so the promise deserves
independent verification, through the same rule engine as the model and
fault-plan verifiers.

Rules:

* ``PL001`` (error) — a wave's barrier state violates the constraint set
  (beyond the violations already present in the starting deployment);
* ``PL002`` (warning) — a wave's recorded predictions undercut the
  contention-aware recomputation (the packing oversubscribes a link, or
  the schedule is stale for this model);
* ``PL003`` (error) — a scheduled move is unreachable: a route leg has
  no positive-bandwidth link under the current model, the move departs
  from a host its component is not on, or a component the schedule
  itself declared unreachable appears in a wave anyway.

Entry points: :func:`verify_schedule` and
``python -m repro plan lint`` (see ``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Type

from repro.algorithms.search import make_checker
from repro.core.constraints import ConstraintSet
from repro.core.model import DeploymentModel
from repro.lint.core import (
    Finding, LintReport, Rule, RuleRegistry, Severity,
)
from repro.plan.planner import predict_wave_eta
from repro.plan.schedule import MigrationSchedule

SCHEDULE = "schedule"

#: Relative slack granted to recorded etas before PL002 fires; predictions
#: are floats recomputed in a different summation order.
_ETA_TOLERANCE = 1e-6


@dataclass
class ScheduleLintContext:
    """A schedule paired with the model it is to run against.

    ``constraints`` defaults to the constraints stored on the model, the
    same default the planner uses at build time.
    """

    model: DeploymentModel
    schedule: MigrationSchedule
    constraints: Optional[ConstraintSet] = None

    def __post_init__(self) -> None:
        if self.constraints is None:
            self.constraints = ConstraintSet(self.model.constraints)


class ScheduleRule(Rule):
    """Base class for rules over :class:`ScheduleLintContext`."""

    tags = frozenset({SCHEDULE})

    def check(self, context: ScheduleLintContext) -> Iterable[Finding]:
        raise NotImplementedError


class WaveConstraintViolationRule(ScheduleRule):
    rule_id = "PL001"
    severity = Severity.ERROR
    description = ("Every post-wave barrier state must satisfy the "
                   "constraint set (no worse than the starting "
                   "deployment): barriers are rollback targets, and "
                   "rolling back into a violating deployment defeats the "
                   "schedule's safety guarantee.")
    tags = frozenset({SCHEDULE})

    def check(self, context: ScheduleLintContext) -> Iterable[Finding]:
        schedule = context.schedule
        checker = make_checker(context.model, context.constraints)
        checker.reset(dict(schedule.current))
        baseline = checker.violation_count()
        for wave in schedule.waves:
            state = schedule.state_after(wave.index)
            checker.reset(state)
            violations = checker.violation_count()
            if violations > baseline:
                yield self.finding(
                    f"barrier state violates {violations} constraint"
                    f"{'' if violations == 1 else 's'} "
                    f"(starting deployment violates {baseline})",
                    subject=f"wave {wave.index}",
                    violations=violations, baseline=baseline)


class WaveOversubscriptionRule(ScheduleRule):
    rule_id = "PL002"
    severity = Severity.WARNING
    description = ("A wave's recorded eta must cover the contention-aware "
                   "recomputation of its route packing; an undercut eta "
                   "means the wave oversubscribes a link (or the schedule "
                   "was packed against a different model) and the "
                   "predicted makespan is optimistic.")
    tags = frozenset({SCHEDULE})

    def check(self, context: ScheduleLintContext) -> Iterable[Finding]:
        for wave in context.schedule.waves:
            if not wave.moves:
                continue
            eta, __ = predict_wave_eta(context.model, wave.moves)
            if eta == float("inf"):
                continue  # PL003 reports the broken route itself
            if eta > wave.eta * (1.0 + _ETA_TOLERANCE) + _ETA_TOLERANCE:
                yield self.finding(
                    f"recorded eta {wave.eta:.3f} s undercuts the "
                    f"contention-aware recomputation {eta:.3f} s",
                    subject=f"wave {wave.index}",
                    recorded=wave.eta, recomputed=eta)


class UnreachableMoveRule(ScheduleRule):
    rule_id = "PL003"
    severity = Severity.ERROR
    description = ("Every scheduled move must be enactable: each route leg "
                   "needs a positive-bandwidth link in the current model, "
                   "the move must depart from the host its component "
                   "occupies at that wave, and components the schedule "
                   "declares unreachable must not appear in any wave.")
    tags = frozenset({SCHEDULE})

    def check(self, context: ScheduleLintContext) -> Iterable[Finding]:
        model = context.model
        schedule = context.schedule
        declared = set(schedule.unreachable)
        state = dict(schedule.current)
        for wave in schedule.waves:
            for move in wave.moves:
                subject = (f"wave {wave.index} move {move.component!r} "
                           f"({move.source} -> {move.target})")
                if move.component in declared:
                    yield self.finding(
                        "component is declared unreachable but appears "
                        "in a wave", subject=subject)
                located = state.get(move.component)
                if located != move.source:
                    yield self.finding(
                        f"move departs from {move.source!r} but the "
                        f"component is on {located!r} at this wave",
                        subject=subject)
                if (len(move.route) < 2 or move.route[0] != move.source
                        or move.route[-1] != move.target):
                    yield self.finding(
                        f"route {'-'.join(move.route)} does not connect "
                        f"source to target", subject=subject)
                    continue
                for a, b in zip(move.route, move.route[1:]):
                    if model.bandwidth(a, b) <= 0.0:
                        yield self.finding(
                            f"route leg {a}-{b} has no positive-bandwidth "
                            f"link", subject=subject, leg=[a, b])
            for move in wave.moves:
                state[move.component] = move.target


#: The built-in schedule verifier rules, in rule-id order.
PLAN_RULES: Tuple[Type[ScheduleRule], ...] = (
    WaveConstraintViolationRule,
    WaveOversubscriptionRule,
    UnreachableMoveRule,
)


def plan_rule_registry() -> RuleRegistry:
    """A fresh registry holding the built-in schedule verifier rules."""
    return RuleRegistry(cls() for cls in PLAN_RULES)


def verify_schedule(model: DeploymentModel, schedule: MigrationSchedule,
                    constraints: Optional[ConstraintSet] = None,
                    registry: Optional[RuleRegistry] = None) -> LintReport:
    """Run the schedule verifier (``PL001``–``PL003``) over *schedule*.

    This is the static half of the wave-safety story: the planner
    guarantees these properties for the model it built against, and
    ``verify_schedule`` re-establishes them for the model you are about
    to execute against (``python -m repro plan lint``).
    """
    context = ScheduleLintContext(model, schedule, constraints=constraints)
    active = registry if registry is not None else plan_rule_registry()
    return active.run(context)
