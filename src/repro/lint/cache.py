"""Persistence plumbing for the linter: result cache and baselines.

Two independent mechanisms share this module because both are about
lint runs remembering earlier lint runs:

* :class:`LintCache` — a content-hash result cache.  Each analyzed file
  is keyed by its path and the SHA-256 of its bytes, together with a
  fingerprint of the active rule set; a re-run over an unchanged tree
  re-parses nothing and is near-instant.  Cached entries carry the
  per-file findings *and* the distilled
  :class:`~repro.lint.concurrency.FileConcurrencySummary`, so the
  package-wide lock-graph pass also runs without re-parsing.
* **Baselines** — a recorded set of accepted findings.  A baseline file
  maps each finding to a line-number-independent fingerprint
  (``rule|file|message``), so a team can adopt a new rule without first
  fixing every historical hit, while new findings still fail CI.  The
  repo's own gate intentionally runs with an **empty** baseline.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterable, Mapping, Optional, Set, Tuple

from repro.core.errors import ReproError
from repro.lint.core import Finding, LintReport, RuleRegistry

#: Bump when the cache entry layout changes; old caches are discarded.
CACHE_SCHEMA = 1

#: Default cache location (relative to the working directory).
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


def file_digest(data: bytes) -> str:
    """Content hash used as the cache key for one file."""
    return hashlib.sha256(data).hexdigest()


def rules_fingerprint(registry: RuleRegistry) -> str:
    """Hash of the active rule set (ids, severities, descriptions).

    Any change to what the rules *are* — a new rule, a reworded message
    category, a severity bump — must invalidate every cached result.
    """
    parts = [f"schema={CACHE_SCHEMA}"]
    for rule in registry:
        parts.append(
            f"{rule.rule_id}|{rule.severity.label}|{rule.description}")
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


class LintCache:
    """Content-addressed store of per-file lint results.

    Entries hold everything :func:`repro.lint.code.analyze_paths` needs
    to skip a file entirely: the (already suppression-filtered) findings,
    the concurrency summary for the package pass, and the suppression
    line map (package-pass findings attributed to the file must still
    honor ``# lint: ignore``).
    """

    def __init__(self, path: str, fingerprint: str):
        self.path = path
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False

    # -- persistence ---------------------------------------------------
    @classmethod
    def load(cls, path: str, registry: RuleRegistry) -> "LintCache":
        """Open the cache at *path*; a missing, corrupt, or stale-schema
        file simply yields an empty cache (a cache must never make a
        run fail)."""
        cache = cls(path, rules_fingerprint(registry))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return cache
        if not isinstance(data, dict) or \
                data.get("fingerprint") != cache.fingerprint:
            return cache
        entries = data.get("files")
        if isinstance(entries, dict):
            cache._entries = entries
        return cache

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {"fingerprint": self.fingerprint, "files": self._entries}
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, self.path)
        self._dirty = False

    # -- lookup / store ------------------------------------------------
    def lookup(self, filename: str,
               digest: str) -> Optional[Dict[str, Any]]:
        """The cached entry for *filename* at *digest*, or None.

        Counts toward :attr:`hits` / :attr:`misses`; the stats line the
        CLI prints (and the CI cache smoke asserts on) comes from these.
        """
        entry = self._entries.get(filename)
        if entry is not None and entry.get("digest") == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, filename: str, digest: str,
              findings: Iterable[Finding],
              summary: Optional[Mapping[str, Any]] = None,
              suppressions: Optional[Mapping[int, Set[str]]] = None) -> None:
        self._entries[filename] = {
            "digest": digest,
            "findings": [f.as_dict() for f in findings],
            "summary": dict(summary) if summary is not None else None,
            "suppressions": {
                str(line): sorted(ids)
                for line, ids in (suppressions or {}).items()},
        }
        self._dirty = True

    def stats_line(self) -> str:
        total = self.hits + self.misses
        return f"lint cache: hits={self.hits} misses={self.misses} " \
               f"files={total}"

    @staticmethod
    def entry_findings(entry: Mapping[str, Any]) -> Tuple[Finding, ...]:
        return tuple(Finding.from_dict(d) for d in entry.get("findings", ()))

    @staticmethod
    def entry_suppressions(entry: Mapping[str, Any]) -> Dict[int, Set[str]]:
        return {int(line): set(ids)
                for line, ids in (entry.get("suppressions") or {}).items()}


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------

def finding_fingerprint(finding: Finding) -> str:
    """Stable identity of a finding across unrelated edits.

    Deliberately excludes the line number: inserting a line above an
    accepted finding moves it but does not make it new.
    """
    text = f"{finding.rule}|{finding.file or finding.subject}|" \
           f"{finding.message}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def write_baseline(report: LintReport, path: str) -> int:
    """Record every finding in *report* as accepted; returns the count."""
    fingerprints = sorted({finding_fingerprint(f) for f in report})
    payload = {"version": 1, "fingerprints": fingerprints}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(fingerprints)


def load_baseline(path: str) -> Set[str]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read baseline {path!r}: {exc}") from exc
    except ValueError as exc:
        raise ReproError(f"baseline {path!r} is not valid JSON") from exc
    fingerprints = data.get("fingerprints") if isinstance(data, dict) else None
    if not isinstance(fingerprints, list):
        raise ReproError(f"baseline {path!r} has no 'fingerprints' list")
    return set(fingerprints)


def apply_baseline(report: LintReport,
                   fingerprints: Set[str]) -> LintReport:
    """Drop findings whose fingerprint appears in *fingerprints*."""
    return LintReport([f for f in report
                       if finding_fingerprint(f) not in fingerprints])
