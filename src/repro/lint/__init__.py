"""Static verification for deployment models and middleware code.

Two pillars behind one rule-engine core (:mod:`repro.lint.core`):

* the **model verifier** (:mod:`repro.lint.model_rules`,
  :mod:`repro.lint.xadl_rules`) — checks ``DeploymentModel``s, xADL
  documents, constraint sets, and objective contracts before algorithms
  search them or the effector migrates live components;
* the **code analyzer** (:mod:`repro.lint.code`) — AST rules enforcing
  this repository's concurrency and registry conventions.

Entry points: ``python -m repro lint`` on the command line,
:func:`verify_deployment` as the effector/batch pre-flight gate, and the
rule registries for custom rules (see ``docs/STATIC_ANALYSIS.md``).
"""

from repro.lint.cache import (
    LintCache, apply_baseline, finding_fingerprint, load_baseline,
    write_baseline,
)
from repro.lint.code import (
    CODE_RULES, CodeLintContext, CodeRule, analyze_paths, analyze_source,
    code_rule_registry, iter_python_files,
)
from repro.lint.concurrency import (
    CONCURRENCY_RULES, FileConcurrencySummary, analyze_lock_graph,
    analyze_package, summarize_concurrency,
)
from repro.lint.core import (
    Finding, LintReport, Rule, RuleRegistry, Severity, render_json,
    render_text,
)
from repro.lint.determinism import DETERMINISM_RULES
from repro.lint.sarif import render_sarif, sarif_log
from repro.lint.fault_rules import (
    FAULT_RULES, FaultPlanLintContext, FaultPlanRule, fault_rule_registry,
    verify_fault_plan,
)
from repro.lint.model_rules import (
    MODEL_RULES, ModelLintContext, ModelRule, default_objectives,
    model_rule_registry, verify_deployment, verify_model,
)
from repro.lint.plan_rules import (
    PLAN_RULES, ScheduleLintContext, ScheduleRule, plan_rule_registry,
    verify_schedule,
)
from repro.lint.xadl_rules import (
    DOCUMENT_RULES, verify_xadl_file, verify_xadl_source,
)

__all__ = [
    "CODE_RULES",
    "CONCURRENCY_RULES",
    "CodeLintContext",
    "CodeRule",
    "DETERMINISM_RULES",
    "DOCUMENT_RULES",
    "FAULT_RULES",
    "FaultPlanLintContext",
    "FaultPlanRule",
    "FileConcurrencySummary",
    "Finding",
    "LintCache",
    "LintReport",
    "MODEL_RULES",
    "ModelLintContext",
    "ModelRule",
    "PLAN_RULES",
    "Rule",
    "RuleRegistry",
    "ScheduleLintContext",
    "ScheduleRule",
    "Severity",
    "analyze_lock_graph",
    "analyze_package",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "code_rule_registry",
    "default_objectives",
    "fault_rule_registry",
    "finding_fingerprint",
    "iter_python_files",
    "load_baseline",
    "model_rule_registry",
    "plan_rule_registry",
    "render_json",
    "render_sarif",
    "render_text",
    "sarif_log",
    "summarize_concurrency",
    "verify_deployment",
    "verify_fault_plan",
    "verify_model",
    "verify_schedule",
    "verify_xadl_file",
    "verify_xadl_source",
]
