"""Pillar 2 — the code analyzer: AST rules for this repository's conventions.

Generic linters cannot know that a :class:`~repro.middleware.scaffold.Scaffold`
serializes handlers per brick, that ``Analyzer.register_algorithm`` is a
deprecated shim around :class:`~repro.core.registry.AlgorithmRegistry`, or
that a blocking call inside an event handler stalls a whole dispatch queue.
These rules do.  Run them with ``python -m repro lint --code [paths]`` (CI
runs them over ``src/repro``).

Findings on a line carrying ``# lint: ignore`` (or
``# lint: ignore[CD001]`` for a specific rule) are suppressed, mirroring
``noqa`` so deliberate exceptions stay visible in the diff.
"""

from __future__ import annotations

import ast
import os
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Type,
)

from repro.core.errors import ReproError
from repro.lint import flow
from repro.lint.cache import LintCache, file_digest
from repro.lint.core import (
    Finding, LintReport, Rule, RuleRegistry, Severity,
)

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9, ]+)\])?")

#: Names whose construction marks an attribute as a lock (CD001).
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                   "BoundedSemaphore"}

#: Method-name shapes treated as event-handler entry points (CD002).
_HANDLER_PREFIXES = ("handle", "on_", "_on_")
_HANDLER_NAMES = {"handle", "notify", "notify_monitors"}


@dataclass
class CodeLintContext:
    """One parsed source file."""

    path: str
    source: str
    tree: ast.AST

    #: line number -> set of suppressed rule ids (empty set = all rules).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str, path: str = "<string>") -> "CodeLintContext":
        tree = ast.parse(source, filename=path)
        suppressions: Dict[int, Set[str]] = {}
        for number, text in enumerate(source.splitlines(), start=1):
            match = _IGNORE_RE.search(text)
            if match:
                ids = match.group(1)
                suppressions[number] = (
                    {part.strip() for part in ids.split(",")} if ids
                    else set())
        _spread_over_statements(suppressions, tree)
        return cls(path, source, tree, suppressions)

    def is_suppressed(self, finding: Finding) -> bool:
        return _suppressed_by_map(finding, self.suppressions)


def _suppressed_by_map(finding: Finding,
                       suppressions: Mapping[int, Set[str]]) -> bool:
    ids = suppressions.get(finding.line or -1)
    if ids is None:
        return False
    return not ids or finding.rule in ids


def _spread_over_statements(suppressions: Dict[int, Set[str]],
                            tree: ast.AST) -> None:
    """Extend per-line suppressions across multi-line statements.

    A rule reports the line of the node it flagged, but an ignore
    comment can only sit on one physical line of the statement; the two
    need not coincide for a call spanning several lines.  So a comment
    on *any* line of a statement's span suppresses findings on *every*
    line of that span.  Compound statements spread over their header
    only (an ignore inside a loop body must not blanket the loop).
    """
    if not suppressions:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        first = node.lineno
        last = node.end_lineno or first
        if isinstance(node, flow.COMPOUND_STATEMENTS):
            bodies = [getattr(node, "body", None)]
            heads = [part[0].lineno for part in bodies if part]
            last = min([last] + [head - 1 for head in heads])
        span = range(first, last + 1)
        hits = [suppressions[line] for line in span if line in suppressions]
        if not hits:
            continue
        merged: Optional[Set[str]] = set()
        for ids in hits:
            if not ids:  # blanket `# lint: ignore`
                merged = set()
                break
            merged.update(ids)
        for line in span:
            existing = suppressions.get(line)
            if existing is None:
                suppressions[line] = set(merged)
            elif existing and merged:
                existing.update(merged)
            else:  # either side blanket-suppresses: blanket wins
                suppressions[line] = set()


class CodeRule(Rule):
    """Base class for rules over :class:`CodeLintContext`."""

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        raise NotImplementedError


def _is_lock_factory(value: ast.AST) -> bool:
    """True for ``threading.Lock()``, ``Lock()``, ``threading.RLock()``..."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _self_attribute(node: ast.AST) -> Optional[str]:
    """The attribute name when *node* is ``self.<attr>``, else None."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _mentions_lock(node: ast.AST, lock_attrs: Set[str]) -> bool:
    """Whether any ``self.<lock>`` appears anywhere under *node*."""
    return any(_self_attribute(sub) in lock_attrs for sub in ast.walk(node))


class UnlockedSharedMutationRule(CodeRule):
    rule_id = "CD001"
    severity = Severity.ERROR
    description = ("Classes that create a lock in __init__ declare a lock "
                   "discipline: public methods must mutate self attributes "
                   "only inside a `with <lock>:` block.")
    tags = frozenset({"concurrency"})

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(context, node)

    def _check_class(self, context: CodeLintContext,
                     cls: ast.ClassDef) -> Iterable[Finding]:
        lock_attrs = self._lock_attributes(cls)
        if not lock_attrs:
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            # Private helpers are presumed to be called with the lock held
            # by their public callers; flagging them would force lock
            # reentrancy everywhere.
            if method.name.startswith("_"):
                continue
            yield from self._check_method(context, cls, method, lock_attrs)

    @staticmethod
    def _lock_attributes(cls: ast.ClassDef) -> Set[str]:
        locks: Set[str] = set()
        for method in cls.body:
            if isinstance(method, ast.FunctionDef) and \
                    method.name == "__init__":
                for node in ast.walk(method):
                    if isinstance(node, ast.Assign) and \
                            _is_lock_factory(node.value):
                        for target in node.targets:
                            attr = _self_attribute(target)
                            if attr is not None:
                                locks.add(attr)
        return locks

    def _check_method(self, context: CodeLintContext, cls: ast.ClassDef,
                      method: ast.AST,
                      lock_attrs: Set[str]) -> Iterable[Finding]:
        guarded: Set[int] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.With) and any(
                    _mentions_lock(item.context_expr, lock_attrs)
                    for item in node.items):
                guarded.update(id(sub) for sub in ast.walk(node))
        for node in ast.walk(method):
            if id(node) in guarded:
                continue
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    attr = _self_attribute(target)
                    if attr is not None and attr not in lock_attrs:
                        yield self.finding(
                            f"{cls.name}.{method.name} mutates self."
                            f"{attr} outside the lock "
                            f"({', '.join(sorted(lock_attrs))})",
                            file=context.path, line=node.lineno)


class BlockingCallInHandlerRule(CodeRule):
    rule_id = "CD002"
    severity = Severity.ERROR
    description = ("Event-handler methods (handle*/on_*/notify*) must not "
                   "block: a sleeping handler stalls its scaffold's entire "
                   "dispatch queue.")
    tags = frozenset({"concurrency"})

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                for method in node.body:
                    if isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)) and \
                            self._is_handler(method.name):
                        yield from self._check_body(context, node.name,
                                                    method)

    @staticmethod
    def _is_handler(name: str) -> bool:
        return name in _HANDLER_NAMES or \
            any(name.startswith(p) for p in _HANDLER_PREFIXES)

    def _check_body(self, context: CodeLintContext, cls_name: str,
                    method: ast.AST) -> Iterable[Finding]:
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            label = self._blocking_label(node)
            if label is not None:
                yield self.finding(
                    f"{cls_name}.{method.name} calls blocking {label} "
                    "inside an event handler",
                    file=context.path, line=node.lineno)

    @staticmethod
    def _blocking_label(call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute):
            # time.sleep(...) — any `<x>.sleep(...)` attribute call.
            if func.attr == "sleep":
                return f"{ast.unparse(func)}()"
            # Unbounded thread/queue joins and waits: no positional args
            # (str.join(iterable) takes one; .wait(5.0) is bounded) and no
            # timeout/blocking keyword that bounds the wait.
            if func.attr in ("join", "wait", "acquire"):
                bounded = any(kw.arg in ("timeout", "blocking")
                              for kw in call.keywords)
                if not call.args and not bounded:
                    return f".{func.attr}()"
        return None


class BypassedRegistryRule(CodeRule):
    rule_id = "CD003"
    severity = Severity.ERROR
    description = ("Algorithm (un)registration must go through "
                   "AlgorithmRegistry; the Analyzer/AlgorithmContainer "
                   "shims are deprecated and skip tier bookkeeping.")
    tags = frozenset({"api"})

    _SHIMS = {"register_algorithm", "unregister_algorithm"}

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        # The shims' own definitions live in analyzer.py; do not flag the
        # file that implements (and deprecates) them.
        if os.path.basename(context.path) == "analyzer.py":
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in self._SHIMS:
                yield self.finding(
                    f"call to deprecated {node.func.attr}() bypasses "
                    "AlgorithmRegistry; use .registry.register(...) "
                    "instead",
                    file=context.path, line=node.lineno)


class BareExceptRule(CodeRule):
    rule_id = "CD004"
    severity = Severity.ERROR
    description = ("No bare `except:` (or `except BaseException:` without "
                   "re-raise): middleware dispatch paths must never eat "
                   "KeyboardInterrupt/SystemExit.")
    tags = frozenset({"errors"})

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or (
                isinstance(node.type, ast.Name) and
                node.type.id == "BaseException")
            if not broad:
                continue
            reraises = any(isinstance(sub, ast.Raise) and sub.exc is None
                           for sub in ast.walk(node))
            if not reraises:
                label = ("bare except:" if node.type is None
                         else "except BaseException:")
                yield self.finding(
                    f"{label} swallows exit exceptions; catch a concrete "
                    "error class",
                    file=context.path, line=node.lineno)


class SwallowedExceptionRule(CodeRule):
    rule_id = "CD005"
    severity = Severity.WARNING
    description = ("An except handler whose whole body is `pass` hides "
                   "failures; use contextlib.suppress to make the intent "
                   "explicit.")
    tags = frozenset({"errors"})

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ExceptHandler) and \
                    len(node.body) == 1 and \
                    isinstance(node.body[0], ast.Pass):
                yield self.finding(
                    "exception silently swallowed (body is just `pass`); "
                    "use contextlib.suppress(...) instead",
                    file=context.path, line=node.lineno)


class MutableDefaultRule(CodeRule):
    rule_id = "CD006"
    severity = Severity.ERROR
    description = ("Mutable default arguments ([] {} set()) are shared "
                   "across calls.")
    tags = frozenset({"api"})

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                    d for d in args.kw_defaults if d is not None]:
                if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                        isinstance(default, ast.Call) and
                        isinstance(default.func, ast.Name) and
                        default.func.id in ("list", "dict", "set")):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        f"{name}() has a mutable default argument",
                        file=context.path, line=default.lineno)


CODE_RULES: Tuple[Type[CodeRule], ...] = (
    UnlockedSharedMutationRule,
    BlockingCallInHandlerRule,
    BypassedRegistryRule,
    BareExceptRule,
    SwallowedExceptionRule,
    MutableDefaultRule,
)


def code_rule_registry() -> RuleRegistry:
    """A fresh registry holding the built-in code analyzer rules.

    Includes the dataflow-backed packs: per-file concurrency rules
    (CC002/CC003), determinism rules (DT00x), and the catalog entry for
    the package-wide lock-order pass (CC001; see :func:`analyze_paths`).
    """
    from repro.lint.concurrency import CONCURRENCY_RULES, LockOrderRule
    from repro.lint.determinism import DETERMINISM_RULES
    registry = RuleRegistry(cls() for cls in CODE_RULES)
    for cls in CONCURRENCY_RULES + DETERMINISM_RULES:
        registry.register(cls())
    registry.register(LockOrderRule())
    return registry


#: Tag selecting rules that run over the whole package, not one file;
#: :meth:`RuleRegistry.run` on a single file context must skip them.
PACKAGE_TAG = "package"


def _run_file_rules(context: CodeLintContext,
                    registry: RuleRegistry) -> LintReport:
    only = [rule.rule_id for rule in registry
            if PACKAGE_TAG not in rule.tags]
    raw = registry.run(context, only=only)
    return LintReport([f for f in raw
                       if not context.is_suppressed(f)]).sorted()


def analyze_source(source: str, path: str = "<string>",
                   registry: Optional[RuleRegistry] = None) -> LintReport:
    """Analyze one source string; syntax errors become findings."""
    try:
        context = CodeLintContext.parse(source, path)
    except SyntaxError as exc:
        report = LintReport()
        report.add(Finding("CD000", Severity.ERROR,
                           f"syntax error: {exc.msg}", file=path,
                           line=exc.lineno))
        return report
    active = registry if registry is not None else code_rule_registry()
    return _run_file_rules(context, active)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                out.extend(os.path.join(root, name)
                           for name in sorted(files)
                           if name.endswith(".py"))
        elif os.path.isfile(path):
            out.append(path)
        else:
            raise ReproError(f"no such file or directory: {path!r}")
    return out


def _analyze_file(filename: str,
                  registry: Optional[RuleRegistry] = None
                  ) -> Dict[str, Any]:
    """Analyze one file into a JSON-able record.

    This shape is what both the result cache stores and the worker
    processes of ``--jobs N`` return: per-file findings (suppression
    already applied), the concurrency summary for the package pass, and
    the suppression map (package findings honor ``# lint: ignore`` too).
    It must stay picklable and registry-free so it can cross process
    boundaries.
    """
    from repro.lint.concurrency import summarize_concurrency
    with open(filename, "rb") as handle:
        data = handle.read()
    source = data.decode("utf-8")
    record: Dict[str, Any] = {
        "path": filename,
        "digest": file_digest(data),
        "summary": None,
        "suppressions": {},
    }
    try:
        context = CodeLintContext.parse(source, filename)
    except SyntaxError as exc:
        record["findings"] = [Finding(
            "CD000", Severity.ERROR, f"syntax error: {exc.msg}",
            file=filename, line=exc.lineno).as_dict()]
        return record
    active = registry if registry is not None else code_rule_registry()
    report = _run_file_rules(context, active)
    record["findings"] = [f.as_dict() for f in report]
    record["summary"] = summarize_concurrency(context.tree,
                                              filename).as_dict()
    record["suppressions"] = {str(line): sorted(ids)
                              for line, ids in context.suppressions.items()}
    return record


def _worker_analyze(filename: str) -> Dict[str, Any]:
    """Top-level entry point for ``--jobs`` worker processes (must be
    importable by name; always uses the default rule registry)."""
    return _analyze_file(filename)


def analyze_paths(paths: Sequence[str],
                  registry: Optional[RuleRegistry] = None,
                  jobs: int = 1,
                  cache: Optional[LintCache] = None) -> LintReport:
    """Analyze every ``.py`` file under *paths* into one report.

    Runs the per-file rules (cached by content hash when *cache* is
    given, fanned out over *jobs* worker processes when > 1), then the
    package-wide concurrency pass over the per-file summaries.  A custom
    *registry* forces serial in-process analysis: rule instances are not
    shipped to workers, and the cache the CLI loads is fingerprinted
    against the default rule set.
    """
    from repro.lint.concurrency import FileConcurrencySummary, analyze_package
    filenames = iter_python_files(paths)
    records: Dict[str, Dict[str, Any]] = {}
    pending: List[str] = []

    if cache is not None and registry is None:
        for filename in filenames:
            with open(filename, "rb") as handle:
                digest = file_digest(handle.read())
            entry = cache.lookup(filename, digest)
            if entry is not None:
                records[filename] = dict(entry, path=filename)
            else:
                pending.append(filename)
    else:
        pending = list(filenames)

    if jobs > 1 and registry is None and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for record in pool.map(_worker_analyze, pending):
                records[record["path"]] = record
    else:
        for filename in pending:
            records[filename] = _analyze_file(filename, registry=registry)

    if cache is not None and registry is None:
        for filename in pending:
            record = records[filename]
            cache.store(
                filename, record["digest"],
                LintCache.entry_findings(record),
                summary=record.get("summary"),
                suppressions=LintCache.entry_suppressions(record))

    report = LintReport()
    summaries: List[FileConcurrencySummary] = []
    for filename in filenames:
        record = records[filename]
        report.extend(LintCache.entry_findings(record))
        if record.get("summary") is not None:
            summaries.append(FileConcurrencySummary.from_dict(
                record["summary"]))

    for finding in analyze_package(summaries):
        suppressions = LintCache.entry_suppressions(
            records.get(finding.file or "", {}))
        if not _suppressed_by_map(finding, suppressions):
            report.add(finding)
    return report.sorted()
