"""Pillar 2 — the code analyzer: AST rules for this repository's conventions.

Generic linters cannot know that a :class:`~repro.middleware.scaffold.Scaffold`
serializes handlers per brick, that ``Analyzer.register_algorithm`` is a
deprecated shim around :class:`~repro.core.registry.AlgorithmRegistry`, or
that a blocking call inside an event handler stalls a whole dispatch queue.
These rules do.  Run them with ``python -m repro lint --code [paths]`` (CI
runs them over ``src/repro``).

Findings on a line carrying ``# lint: ignore`` (or
``# lint: ignore[CD001]`` for a specific rule) are suppressed, mirroring
``noqa`` so deliberate exceptions stay visible in the diff.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.core.errors import ReproError
from repro.lint.core import (
    Finding, LintReport, Rule, RuleRegistry, Severity,
)

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9, ]+)\])?")

#: Names whose construction marks an attribute as a lock (CD001).
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                   "BoundedSemaphore"}

#: Method-name shapes treated as event-handler entry points (CD002).
_HANDLER_PREFIXES = ("handle", "on_", "_on_")
_HANDLER_NAMES = {"handle", "notify", "notify_monitors"}


@dataclass
class CodeLintContext:
    """One parsed source file."""

    path: str
    source: str
    tree: ast.AST

    #: line number -> set of suppressed rule ids (empty set = all rules).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str, path: str = "<string>") -> "CodeLintContext":
        tree = ast.parse(source, filename=path)
        suppressions: Dict[int, Set[str]] = {}
        for number, text in enumerate(source.splitlines(), start=1):
            match = _IGNORE_RE.search(text)
            if match:
                ids = match.group(1)
                suppressions[number] = (
                    {part.strip() for part in ids.split(",")} if ids
                    else set())
        return cls(path, source, tree, suppressions)

    def is_suppressed(self, finding: Finding) -> bool:
        ids = self.suppressions.get(finding.line or -1)
        if ids is None:
            return False
        return not ids or finding.rule in ids


class CodeRule(Rule):
    """Base class for rules over :class:`CodeLintContext`."""

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        raise NotImplementedError


def _is_lock_factory(value: ast.AST) -> bool:
    """True for ``threading.Lock()``, ``Lock()``, ``threading.RLock()``..."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _self_attribute(node: ast.AST) -> Optional[str]:
    """The attribute name when *node* is ``self.<attr>``, else None."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _mentions_lock(node: ast.AST, lock_attrs: Set[str]) -> bool:
    """Whether any ``self.<lock>`` appears anywhere under *node*."""
    return any(_self_attribute(sub) in lock_attrs for sub in ast.walk(node))


class UnlockedSharedMutationRule(CodeRule):
    rule_id = "CD001"
    severity = Severity.ERROR
    description = ("Classes that create a lock in __init__ declare a lock "
                   "discipline: public methods must mutate self attributes "
                   "only inside a `with <lock>:` block.")
    tags = frozenset({"concurrency"})

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(context, node)

    def _check_class(self, context: CodeLintContext,
                     cls: ast.ClassDef) -> Iterable[Finding]:
        lock_attrs = self._lock_attributes(cls)
        if not lock_attrs:
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            # Private helpers are presumed to be called with the lock held
            # by their public callers; flagging them would force lock
            # reentrancy everywhere.
            if method.name.startswith("_"):
                continue
            yield from self._check_method(context, cls, method, lock_attrs)

    @staticmethod
    def _lock_attributes(cls: ast.ClassDef) -> Set[str]:
        locks: Set[str] = set()
        for method in cls.body:
            if isinstance(method, ast.FunctionDef) and \
                    method.name == "__init__":
                for node in ast.walk(method):
                    if isinstance(node, ast.Assign) and \
                            _is_lock_factory(node.value):
                        for target in node.targets:
                            attr = _self_attribute(target)
                            if attr is not None:
                                locks.add(attr)
        return locks

    def _check_method(self, context: CodeLintContext, cls: ast.ClassDef,
                      method: ast.AST,
                      lock_attrs: Set[str]) -> Iterable[Finding]:
        guarded: Set[int] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.With) and any(
                    _mentions_lock(item.context_expr, lock_attrs)
                    for item in node.items):
                guarded.update(id(sub) for sub in ast.walk(node))
        for node in ast.walk(method):
            if id(node) in guarded:
                continue
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    attr = _self_attribute(target)
                    if attr is not None and attr not in lock_attrs:
                        yield self.finding(
                            f"{cls.name}.{method.name} mutates self."
                            f"{attr} outside the lock "
                            f"({', '.join(sorted(lock_attrs))})",
                            file=context.path, line=node.lineno)


class BlockingCallInHandlerRule(CodeRule):
    rule_id = "CD002"
    severity = Severity.ERROR
    description = ("Event-handler methods (handle*/on_*/notify*) must not "
                   "block: a sleeping handler stalls its scaffold's entire "
                   "dispatch queue.")
    tags = frozenset({"concurrency"})

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                for method in node.body:
                    if isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)) and \
                            self._is_handler(method.name):
                        yield from self._check_body(context, node.name,
                                                    method)

    @staticmethod
    def _is_handler(name: str) -> bool:
        return name in _HANDLER_NAMES or \
            any(name.startswith(p) for p in _HANDLER_PREFIXES)

    def _check_body(self, context: CodeLintContext, cls_name: str,
                    method: ast.AST) -> Iterable[Finding]:
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            label = self._blocking_label(node)
            if label is not None:
                yield self.finding(
                    f"{cls_name}.{method.name} calls blocking {label} "
                    "inside an event handler",
                    file=context.path, line=node.lineno)

    @staticmethod
    def _blocking_label(call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute):
            # time.sleep(...) — any `<x>.sleep(...)` attribute call.
            if func.attr == "sleep":
                return f"{ast.unparse(func)}()"
            # Unbounded thread/queue joins and waits: no positional args
            # (str.join(iterable) takes one; .wait(5.0) is bounded) and no
            # timeout/blocking keyword that bounds the wait.
            if func.attr in ("join", "wait", "acquire"):
                bounded = any(kw.arg in ("timeout", "blocking")
                              for kw in call.keywords)
                if not call.args and not bounded:
                    return f".{func.attr}()"
        return None


class BypassedRegistryRule(CodeRule):
    rule_id = "CD003"
    severity = Severity.ERROR
    description = ("Algorithm (un)registration must go through "
                   "AlgorithmRegistry; the Analyzer/AlgorithmContainer "
                   "shims are deprecated and skip tier bookkeeping.")
    tags = frozenset({"api"})

    _SHIMS = {"register_algorithm", "unregister_algorithm"}

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        # The shims' own definitions live in analyzer.py; do not flag the
        # file that implements (and deprecates) them.
        if os.path.basename(context.path) == "analyzer.py":
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in self._SHIMS:
                yield self.finding(
                    f"call to deprecated {node.func.attr}() bypasses "
                    "AlgorithmRegistry; use .registry.register(...) "
                    "instead",
                    file=context.path, line=node.lineno)


class BareExceptRule(CodeRule):
    rule_id = "CD004"
    severity = Severity.ERROR
    description = ("No bare `except:` (or `except BaseException:` without "
                   "re-raise): middleware dispatch paths must never eat "
                   "KeyboardInterrupt/SystemExit.")
    tags = frozenset({"errors"})

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or (
                isinstance(node.type, ast.Name) and
                node.type.id == "BaseException")
            if not broad:
                continue
            reraises = any(isinstance(sub, ast.Raise) and sub.exc is None
                           for sub in ast.walk(node))
            if not reraises:
                label = ("bare except:" if node.type is None
                         else "except BaseException:")
                yield self.finding(
                    f"{label} swallows exit exceptions; catch a concrete "
                    "error class",
                    file=context.path, line=node.lineno)


class SwallowedExceptionRule(CodeRule):
    rule_id = "CD005"
    severity = Severity.WARNING
    description = ("An except handler whose whole body is `pass` hides "
                   "failures; use contextlib.suppress to make the intent "
                   "explicit.")
    tags = frozenset({"errors"})

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ExceptHandler) and \
                    len(node.body) == 1 and \
                    isinstance(node.body[0], ast.Pass):
                yield self.finding(
                    "exception silently swallowed (body is just `pass`); "
                    "use contextlib.suppress(...) instead",
                    file=context.path, line=node.lineno)


class MutableDefaultRule(CodeRule):
    rule_id = "CD006"
    severity = Severity.ERROR
    description = ("Mutable default arguments ([] {} set()) are shared "
                   "across calls.")
    tags = frozenset({"api"})

    def check(self, context: CodeLintContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                    d for d in args.kw_defaults if d is not None]:
                if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                        isinstance(default, ast.Call) and
                        isinstance(default.func, ast.Name) and
                        default.func.id in ("list", "dict", "set")):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        f"{name}() has a mutable default argument",
                        file=context.path, line=default.lineno)


CODE_RULES: Tuple[Type[CodeRule], ...] = (
    UnlockedSharedMutationRule,
    BlockingCallInHandlerRule,
    BypassedRegistryRule,
    BareExceptRule,
    SwallowedExceptionRule,
    MutableDefaultRule,
)


def code_rule_registry() -> RuleRegistry:
    """A fresh registry holding the built-in code analyzer rules."""
    return RuleRegistry(cls() for cls in CODE_RULES)


def analyze_source(source: str, path: str = "<string>",
                   registry: Optional[RuleRegistry] = None) -> LintReport:
    """Analyze one source string; syntax errors become findings."""
    try:
        context = CodeLintContext.parse(source, path)
    except SyntaxError as exc:
        report = LintReport()
        report.add(Finding("CD000", Severity.ERROR,
                           f"syntax error: {exc.msg}", file=path,
                           line=exc.lineno))
        return report
    active = registry if registry is not None else code_rule_registry()
    raw = active.run(context)
    return LintReport([f for f in raw
                       if not context.is_suppressed(f)]).sorted()


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                out.extend(os.path.join(root, name)
                           for name in sorted(files)
                           if name.endswith(".py"))
        elif os.path.isfile(path):
            out.append(path)
        else:
            raise ReproError(f"no such file or directory: {path!r}")
    return out


def analyze_paths(paths: Sequence[str],
                  registry: Optional[RuleRegistry] = None) -> LintReport:
    """Analyze every ``.py`` file under *paths* into one report."""
    report = LintReport()
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        report.merge(analyze_source(source, filename, registry=registry))
    return report.sorted()
