"""Concurrency analysis pack: lock-order cycles, leaks, unlocked writes.

The middleware is genuinely multithreaded (the :class:`ThreadPoolScaffold`
worker pool, the engine's memo cache, the compiled-model snapshot cache,
the tracer) and its locking discipline is exactly the kind of property a
per-statement AST rule cannot check.  This pack reasons about whole
functions (via :mod:`repro.lint.flow` CFGs) and the whole package (via a
lock-acquisition graph merged across files):

* **CC001** — a cycle in the package-wide lock-acquisition graph: lock B
  is acquired while A is held in one place and A while B is held in
  another; two threads interleaving those regions deadlock.
* **CC002** — an explicit ``lock.acquire()`` with a path (normal or
  exceptional) to the function exit that never releases; ``with lock:``
  or ``try/finally`` are the fixes.
* **CC003** — the dataflow-backed upgrade of the CD001 heuristic: an
  attribute that *is* written under the class's lock somewhere is also
  written outside any lock region in a method reachable without the
  lock (public methods, and private methods whose call sites within the
  class are not all lock-guarded).

Per-file facts are distilled into a JSON-able
:class:`FileConcurrencySummary` so the file cache and parallel workers
can hand the cross-file pass (:func:`analyze_lock_graph`) everything it
needs without re-parsing unchanged files.
"""

from __future__ import annotations

import ast
import os
from dataclasses import asdict, dataclass, field
from typing import (
    Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple,
)

from repro.lint import flow
from repro.lint.core import Finding, LintReport, Rule, Severity
from repro.lint.flow import build_cfg, iter_functions, may_raise

#: Constructors whose result is treated as a lock object.
LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                  "BoundedSemaphore"}
#: Factories that produce *reentrant* locks (a self-edge is harmless).
REENTRANT_FACTORIES = {"RLock"}


def _lock_factory_name(value: ast.AST) -> Optional[str]:
    """``"Lock"``/``"RLock"``/... when *value* constructs a lock."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    return name if name in LOCK_FACTORIES else None


def _self_attr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


# ---------------------------------------------------------------------------
# Lock references and per-file summaries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LockRef:
    """A syntactic reference to a lock, resolved against the package-wide
    lock table during the cross-file pass.

    ``kind`` is ``"self"`` (``self.<attr>`` inside class ``cls``),
    ``"name"`` (a module-level name), or ``"provider"`` (a call to a
    method that manufactures locks, e.g. ``self._brick_lock(brick)``).
    """

    kind: str
    name: str
    cls: str = ""
    module: str = ""

    def as_dict(self) -> Dict[str, str]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, str]) -> "LockRef":
        return cls(**data)


@dataclass
class FileConcurrencySummary:
    """Everything the cross-file lock-graph pass needs from one file."""

    path: str
    module: str
    #: lock id -> factory name ("Lock", "RLock", ...).
    locks: Dict[str, str] = field(default_factory=dict)
    #: (outer ref, inner ref, line) for nested acquisitions.
    nested: List[Tuple[Dict[str, str], Dict[str, str], int]] = \
        field(default_factory=list)
    #: "Cls.method" or "module.func" -> list of refs acquired inside it.
    acquires: Dict[str, List[Dict[str, str]]] = field(default_factory=dict)
    #: (holder ref, callee qualname, line) for calls made under a lock.
    held_calls: List[Tuple[Dict[str, str], str, int]] = \
        field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path, "module": self.module, "locks": self.locks,
            "nested": [[o, i, line] for o, i, line in self.nested],
            "acquires": self.acquires,
            "held_calls": [[h, c, line] for h, c, line in self.held_calls],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FileConcurrencySummary":
        return cls(
            path=data["path"], module=data["module"],
            locks=dict(data["locks"]),
            nested=[(o, i, int(line)) for o, i, line in data["nested"]],
            acquires={key: list(refs)
                      for key, refs in data["acquires"].items()},
            held_calls=[(h, str(c), int(line))
                        for h, c, line in data["held_calls"]],
        )


def _module_name(path: str) -> str:
    return os.path.splitext(os.path.basename(path))[0]


def _with_lock_refs(item_expr: ast.AST, cls_name: str,
                    module: str) -> Optional[LockRef]:
    """The lock a ``with <expr>:`` item acquires, if recognizable."""
    attr = _self_attr(item_expr)
    if attr is not None:
        return LockRef("self", attr, cls=cls_name, module=module)
    if isinstance(item_expr, ast.Name):
        return LockRef("name", item_expr.id, module=module)
    if isinstance(item_expr, ast.Call):
        method = _self_attr(item_expr.func)
        if method is not None:
            return LockRef("provider", method, cls=cls_name, module=module)
    return None


class _SummaryExtractor(ast.NodeVisitor):
    """One pass over a module collecting the concurrency summary."""

    def __init__(self, tree: ast.AST, path: str):
        self.summary = FileConcurrencySummary(path, _module_name(path))
        self._cls_stack: List[str] = []
        self._fn_depth = 0
        self.visit(tree)

    # -- lock definitions --------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        factory = _lock_factory_name(node.value)
        if factory is not None:
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None and self._cls_stack:
                    lock_id = f"{self._cls_stack[-1]}.{attr}"
                    self.summary.locks[lock_id] = factory
                elif isinstance(target, ast.Name) and not self._cls_stack \
                        and self._fn_depth == 0:
                    lock_id = f"{self.summary.module}.{target.id}"
                    self.summary.locks[lock_id] = factory
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._cls_stack.append(node.name)
        self.generic_visit(node)
        self._cls_stack.pop()

    # -- acquisitions ------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function(node)

    def _function(self, node: flow.FunctionNode) -> None:
        cls_name = self._cls_stack[-1] if self._cls_stack else ""
        # Module-level functions key on their bare name so a call from
        # another module resolves; methods key on "Class.method".
        qualname = f"{cls_name}.{node.name}" if cls_name else node.name
        acquired: List[Dict[str, str]] = []
        self._walk_body(node.body, cls_name, holders=[], qualname=qualname,
                        acquired=acquired)
        if acquired:
            self.summary.acquires.setdefault(qualname, []).extend(acquired)
        # Still visit children: lock definitions (self._x = Lock() in
        # __init__) and nested defs are found by the NodeVisitor walk.
        self._fn_depth += 1
        self.generic_visit(node)
        self._fn_depth -= 1
        # A method that constructs a lock and returns a name is a lock
        # *provider* (e.g. ThreadPoolScaffold._brick_lock): acquiring its
        # result is modeled as its own graph node.
        if cls_name and self._returns_created_lock(node):
            factory = next(
                (f for f in (_lock_factory_name(n.value)
                             for n in ast.walk(node)
                             if isinstance(n, ast.Assign)) if f), "Lock")
            self.summary.locks[f"{cls_name}.{node.name}()"] = factory

    @staticmethod
    def _returns_created_lock(node: flow.FunctionNode) -> bool:
        created = {target.id
                   for sub in ast.walk(node) if isinstance(sub, ast.Assign)
                   and _lock_factory_name(sub.value)
                   for target in sub.targets if isinstance(target, ast.Name)}
        if not created:
            return False
        return any(isinstance(sub, ast.Return)
                   and isinstance(sub.value, ast.Name)
                   and sub.value.id in created
                   for sub in ast.walk(node))

    def _walk_body(self, body: Sequence[ast.stmt], cls_name: str,
                   holders: List[Tuple[LockRef, int]], qualname: str,
                   acquired: List[Dict[str, str]]) -> None:
        for statement in body:
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                refs: List[Tuple[LockRef, int]] = []
                for item in statement.items:
                    ref = _with_lock_refs(item.context_expr, cls_name,
                                          self.summary.module)
                    if ref is not None:
                        refs.append((ref, statement.lineno))
                for ref, line in refs:
                    acquired.append(ref.as_dict())
                    for holder, _ in holders:
                        self.summary.nested.append(
                            (holder.as_dict(), ref.as_dict(), line))
                # `with a, b:` acquires a before b.
                for index, (inner, line) in enumerate(refs):
                    for outer, _ in refs[:index]:
                        self.summary.nested.append(
                            (outer.as_dict(), inner.as_dict(), line))
                self._walk_body(statement.body, cls_name,
                                holders + refs, qualname, acquired)
                continue
            if holders:
                self._record_held_calls(statement, cls_name, holders)
            for child_body in self._nested_bodies(statement):
                self._walk_body(child_body, cls_name, holders, qualname,
                                acquired)

    @staticmethod
    def _nested_bodies(statement: ast.stmt) -> Iterable[Sequence[ast.stmt]]:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            return  # separate scope; handled by its own visit
        for name in ("body", "orelse", "finalbody"):
            body = getattr(statement, name, None)
            if body:
                yield body
        for handler in getattr(statement, "handlers", ()):
            yield handler.body
        for case in getattr(statement, "cases", ()):
            yield case.body

    def _record_held_calls(self, statement: ast.stmt, cls_name: str,
                           holders: List[Tuple[LockRef, int]]) -> None:
        # Only the statement's own expressions; nested bodies are walked
        # separately (they keep the same holder stack).
        nodes = (ast.walk(statement)
                 if not isinstance(statement, flow.COMPOUND_STATEMENTS)
                 else (node for expr in flow.header_expressions(statement)
                       for node in ast.walk(expr)))
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            callee: Optional[str] = None
            method = _self_attr(node.func)
            if method is not None and cls_name:
                callee = f"{cls_name}.{method}"
            elif isinstance(node.func, ast.Name):
                callee = node.func.id
            if callee is None:
                continue
            for holder, _ in holders:
                self.summary.held_calls.append(
                    (holder.as_dict(), callee, node.lineno))


def summarize_concurrency(tree: ast.AST,
                          path: str) -> FileConcurrencySummary:
    """Distill *tree* into the facts the lock-graph pass consumes."""
    return _SummaryExtractor(tree, path).summary


# ---------------------------------------------------------------------------
# CC001 — cross-file lock-order cycles
# ---------------------------------------------------------------------------

def _resolve(ref: Mapping[str, str],
             locks: Mapping[str, str]) -> Optional[str]:
    kind = ref["kind"]
    if kind == "self":
        candidate = f"{ref['cls']}.{ref['name']}"
        return candidate if candidate in locks else None
    if kind == "provider":
        candidate = f"{ref['cls']}.{ref['name']}()"
        return candidate if candidate in locks else None
    candidate = f"{ref['module']}.{ref['name']}"
    return candidate if candidate in locks else None


def analyze_lock_graph(
        summaries: Sequence[FileConcurrencySummary]) -> List[Finding]:
    """CC001: cycles in the merged lock-acquisition graph."""
    locks: Dict[str, str] = {}
    for summary in summaries:
        locks.update(summary.locks)

    # lock -> lock -> earliest (path, line) witness.
    edges: Dict[str, Dict[str, Tuple[str, int]]] = {}

    def add_edge(outer: str, inner: str, path: str, line: int) -> None:
        if outer == inner and locks.get(outer) in REENTRANT_FACTORIES:
            return  # re-acquiring an RLock is legal
        witness = edges.setdefault(outer, {})
        if inner not in witness or (path, line) < witness[inner]:
            witness[inner] = (path, line)

    acquires_by_qualname: Dict[str, List[Mapping[str, str]]] = {}
    for summary in summaries:
        for qualname, refs in summary.acquires.items():
            acquires_by_qualname.setdefault(qualname, []).extend(refs)

    for summary in summaries:
        for outer_ref, inner_ref, line in summary.nested:
            outer = _resolve(outer_ref, locks)
            inner = _resolve(inner_ref, locks)
            if outer is not None and inner is not None:
                add_edge(outer, inner, summary.path, line)
        for holder_ref, callee, line in summary.held_calls:
            holder = _resolve(holder_ref, locks)
            if holder is None:
                continue
            for ref in acquires_by_qualname.get(callee, ()):
                inner = _resolve(ref, locks)
                if inner is not None:
                    add_edge(holder, inner, summary.path, line)

    return [_cycle_finding(cycle, edges)
            for cycle in _cycles(edges)]


def _cycles(edges: Mapping[str, Mapping[str, Tuple[str, int]]]
            ) -> List[Tuple[str, ...]]:
    """Elementary cycles, one per strongly connected component, plus
    self-loops — deterministic order."""
    nodes = sorted(set(edges) | {n for out in edges.values() for n in out})
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(node: str) -> None:
        work = [(node, iter(sorted(edges.get(node, ()))))]
        index_of[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[current] = min(lowlink[current], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index_of[current]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                sccs.append(component)

    for node in nodes:
        if node not in index_of:
            strongconnect(node)

    cycles: List[Tuple[str, ...]] = []
    for component in sccs:
        members = sorted(component)
        if len(members) > 1:
            cycles.append(tuple(members))
        elif members[0] in edges.get(members[0], ()):
            cycles.append((members[0],))
    return sorted(cycles)


def _cycle_finding(cycle: Tuple[str, ...],
                   edges: Mapping[str, Mapping[str, Tuple[str, int]]]
                   ) -> Finding:
    witnesses = sorted(
        (edges[a][b], a, b)
        for a in cycle for b in edges.get(a, ())
        if b in cycle and (len(cycle) > 1 or a == b))
    (path, line), _, _ = witnesses[0]
    if len(cycle) == 1:
        message = (f"lock {cycle[0]} (non-reentrant) is acquired while "
                   "already held: guaranteed self-deadlock")
    else:
        order = " -> ".join(cycle + (cycle[0],))
        message = (f"lock-order cycle {order}: threads interleaving these "
                   "regions can deadlock; acquire locks in one global order")
    return Finding("CC001", Severity.ERROR, message, file=path, line=line,
                   detail={"cycle": list(cycle)})


class LockOrderRule(Rule):
    """Catalog entry for CC001 (the check runs package-wide, see
    :func:`analyze_package`)."""

    rule_id = "CC001"
    severity = Severity.ERROR
    description = ("The package-wide lock-acquisition graph is acyclic: "
                   "no two regions acquire the same locks in opposite "
                   "orders (potential deadlock).")
    tags = frozenset({"concurrency", "package"})

    def check(self, context: Any) -> Iterable[Finding]:
        return analyze_lock_graph(list(context))


def analyze_package(
        summaries: Sequence[FileConcurrencySummary]) -> LintReport:
    """Run the cross-file concurrency rules over per-file summaries."""
    report = LintReport()
    try:
        report.extend(LockOrderRule().check(summaries))
    except Exception as exc:  # noqa: BLE001 — isolate, like RuleRegistry.run
        report.add(Finding("CC001", Severity.ERROR,
                           f"rule crashed: {type(exc).__name__}: {exc}",
                           detail={"crash": True}))
    return report.sorted()


# ---------------------------------------------------------------------------
# CC002 — acquire without release on an exception path (per file, CFG)
# ---------------------------------------------------------------------------

def _receiver_text(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        try:
            return ast.unparse(call.func.value)
        except Exception:  # pragma: no cover — unparse is total on 3.9+
            return None
    return None


def _method_calls(statement: ast.stmt, method: str) -> List[ast.Call]:
    return [node for node in flow.walk_headers(statement)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method]


class LockLeakRule(Rule):
    """CC002: every ``.acquire()`` must release on *all* paths out."""

    rule_id = "CC002"
    severity = Severity.ERROR
    description = ("An explicit lock.acquire() must be paired with a "
                   "release() on every path to the function exit, "
                   "including exception paths (use `with lock:` or "
                   "try/finally).")
    tags = frozenset({"concurrency"})

    def check(self, context: Any) -> Iterable[Finding]:
        for function in iter_functions(context.tree):
            yield from self._check_function(context, function)

    def _check_function(self, context: Any,
                        function: flow.FunctionNode) -> Iterable[Finding]:
        lock_lines = {
            node.lineno
            for node in ast.walk(function)
            if isinstance(node, ast.Assign)
            and _lock_factory_name(node.value)}
        cfg = build_cfg(function)
        reaching: Optional[Dict[int, Any]] = None
        for block in cfg:
            for position, statement in enumerate(block.statements):
                for call in _method_calls(statement, "acquire"):
                    receiver = _receiver_text(call)
                    if receiver is None:
                        continue
                    if reaching is None:
                        reaching = \
                            flow.ReachingDefinitions.at_statements(cfg)
                    if not self._is_lock_receiver(call, lock_lines,
                                                  statement, reaching):
                        continue
                    if self._leaks(cfg, block, position, receiver):
                        yield self.finding(
                            f"{receiver}.acquire() can leak: a path "
                            "reaches the function exit without "
                            f"{receiver}.release() (put the release in a "
                            f"finally block, or use `with {receiver}:`)",
                            file=context.path, line=call.lineno)

    @staticmethod
    def _is_lock_receiver(call: ast.Call, lock_lines: Set[int],
                          statement: ast.stmt,
                          reaching: Dict[int, Any]) -> bool:
        target = call.func.value  # type: ignore[union-attr]
        if _self_attr(target) is not None:
            return True  # self.<attr>.acquire() — instance lock by shape
        if isinstance(target, (ast.Attribute,)):
            return True  # module.lock.acquire()
        if isinstance(target, ast.Name):
            # A bare name is a lock when a `name = threading.Lock()`
            # definition reaches this statement (dataflow), or when the
            # module defines it globally (no local def reaches).
            defs = reaching.get(id(statement), frozenset())
            lines = {line for name, line in defs if name == target.id}
            if lines:
                return bool(lines & lock_lines)
            return True  # no local binding: module-level lock name
        return False

    @staticmethod
    def _leaks(cfg: Any, block: Any, position: int, receiver: str) -> bool:
        """Can the exit be reached, post-acquire, without a release?"""
        def releases(statement: ast.stmt) -> bool:
            return any(_receiver_text(call) == receiver
                       for call in _method_calls(statement, "release"))

        seen: Set[Tuple[int, int]] = set()
        # (block, statement index to start scanning at)
        work: List[Tuple[Any, int]] = [(block, position + 1)]
        while work:
            current, start = work.pop()
            if (current.index, start) in seen:
                continue
            seen.add((current.index, start))
            if current is cfg.exit:
                return True
            released = False
            for statement in current.statements[start:]:
                if releases(statement):
                    released = True
                    break
                if may_raise(statement):
                    work.extend((succ, 0) for succ
                                in current.succ([flow.EXCEPTION]))
            if not released:
                work.extend(
                    (succ, 0) for succ in current.succ(
                        [flow.NORMAL, flow.TRUE, flow.FALSE, flow.LOOP]))
        return False


# ---------------------------------------------------------------------------
# CC003 — shared-attribute writes reachable outside any lock region
# ---------------------------------------------------------------------------

class UnlockedSharedWriteRule(Rule):
    """CC003: writes to lock-guarded attributes outside the lock.

    An attribute counts as *shared* when some method writes it inside a
    ``with <lock>:`` region.  Writes to a shared attribute are then
    flagged in every method reachable without the lock: public methods,
    and private methods whose in-class call sites are not all inside a
    lock region (propagated to a fixpoint over the intra-class call
    graph).  ``__init__`` is construction-time and exempt; private
    methods never called within the class are presumed externally
    serialized (CD001 parity).
    """

    rule_id = "CC003"
    severity = Severity.ERROR
    description = ("Attributes written under a class's lock must not "
                   "also be written outside a lock region in any method "
                   "reachable without the lock (intra-class call-graph "
                   "fixpoint).")
    tags = frozenset({"concurrency"})

    def check(self, context: Any) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(context, node)

    def _check_class(self, context: Any,
                     cls: ast.ClassDef) -> Iterable[Finding]:
        lock_attrs = {
            _self_attr(target)
            for method in cls.body
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
            for node in ast.walk(method) if isinstance(node, ast.Assign)
            and _lock_factory_name(node.value)
            for target in node.targets if _self_attr(target)}
        lock_attrs.discard(None)
        if not lock_attrs:
            return

        methods = {m.name: m for m in cls.body
                   if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))}
        writes: Dict[str, List[Tuple[str, int, bool]]] = {}
        calls: Dict[str, List[Tuple[str, bool]]] = {}
        for name, method in methods.items():
            writes[name], calls[name] = self._scan(method, lock_attrs)

        guarded_attrs = {
            attr
            for name, sites in writes.items() if name != "__init__"
            for attr, _, guarded in sites if guarded}
        shared = guarded_attrs - lock_attrs
        if not shared:
            return

        unprotected = {name for name in methods
                       if not name.startswith("_")}
        changed = True
        while changed:
            changed = False
            for name in unprotected.copy():
                for callee, under_lock in calls[name]:
                    if (not under_lock and callee in methods
                            and callee != "__init__"
                            and callee not in unprotected):
                        unprotected.add(callee)
                        changed = True

        for name in sorted(unprotected):
            if name == "__init__":
                continue
            for attr, line, guarded in writes[name]:
                if not guarded and attr in shared:
                    yield self.finding(
                        f"{cls.name}.{name} writes self.{attr} outside "
                        f"the lock, but {cls.name} guards that attribute "
                        f"elsewhere ({', '.join(sorted(lock_attrs))})",
                        file=context.path, line=line)

    def _scan(self, method: flow.FunctionNode, lock_attrs: Set[str]
              ) -> Tuple[List[Tuple[str, int, bool]],
                         List[Tuple[str, bool]]]:
        """Attribute writes and self-method calls, each tagged with
        whether a ``with <lock>:`` region lexically encloses it."""
        writes: List[Tuple[str, int, bool]] = []
        calls: List[Tuple[str, bool]] = []

        def locked_with(node: ast.stmt) -> bool:
            return isinstance(node, (ast.With, ast.AsyncWith)) and any(
                any(_self_attr(sub) in lock_attrs
                    for sub in ast.walk(item.context_expr))
                for item in node.items)

        def walk(node: ast.AST, guarded: bool) -> None:
            for child in ast.iter_child_nodes(node):
                child_guarded = guarded or (
                    isinstance(child, ast.stmt) and locked_with(child))
                if isinstance(child, (ast.Assign, ast.AugAssign)):
                    targets = (child.targets if isinstance(child, ast.Assign)
                               else [child.target])
                    for target in targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            writes.append((attr, child.lineno, guarded))
                if isinstance(child, ast.Call):
                    attr = _self_attr(child.func)
                    if attr is not None:
                        calls.append((attr, guarded))
                if not isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.Lambda, ast.ClassDef)):
                    walk(child, child_guarded)

        walk(method, False)
        return writes, calls


CONCURRENCY_RULES = (LockLeakRule, UnlockedSharedWriteRule)
