"""Parameter fluctuation models.

The framework exists because system parameters "are typically not known at
system design time and/or may fluctuate at run time" (Section 1).  These
processes drive that fluctuation in the simulated substrate: each one
attaches to the :class:`~repro.sim.clock.SimClock` and perturbs a link of a
:class:`~repro.sim.network.SimulatedNetwork` over time.

The three models cover the behaviors the paper's scenarios need:

* :class:`RandomWalkFluctuation` — bounded random walk of a numeric link
  property (reliability, bandwidth); the "bandwidth fluctuations" of §1.
* :class:`DisconnectionProcess` — exponential on/off bursts; the "network
  disconnections during system execution" of §1.
* :class:`StepChange` — a scripted one-shot degradation at a known time;
  used by the end-to-end benches to create a mid-run event the framework
  must react to.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.core.errors import NetworkError
from repro.sim.clock import SimClock
from repro.sim.network import SimulatedNetwork


def _set_link_attribute(network: SimulatedNetwork, link, attribute: str,
                        value) -> None:
    """Mutate a link through the network's unified setters when one exists.

    Routing through the setters (rather than ``setattr`` on the link) keeps
    the fluctuation engine, the fault injector, and manual overrides
    observable through the same change-notification path.
    """
    if attribute == "reliability":
        network.set_reliability(*link.ends, value)
    elif attribute == "bandwidth":
        network.set_bandwidth(*link.ends, value)
    elif attribute == "connected":
        network.set_connected(*link.ends, connected=bool(value))
    else:
        setattr(link, attribute, value)


class FluctuationProcess:
    """Base class: a started/stoppable process bound to one network link."""

    def __init__(self, network: SimulatedNetwork, end_a: str, end_b: str):
        self.network = network
        self.link = network.require_link(end_a, end_b)
        self._task = None

    @property
    def clock(self) -> SimClock:
        return self.network.clock

    def start(self) -> "FluctuationProcess":
        if self._task is not None:
            raise NetworkError("process already started")
        self._task = self._begin()
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _begin(self):
        raise NotImplementedError


class RandomWalkFluctuation(FluctuationProcess):
    """Bounded random walk on a numeric link attribute.

    Every *interval* simulated seconds the attribute moves by a uniform step
    in ``[-step, +step]``, clamped to ``bounds``.

    Args:
        attribute: ``"reliability"`` or ``"bandwidth"`` (or ``"delay"``).
        step: Maximum per-interval change.
        interval: Time between perturbations.
        bounds: Inclusive (low, high) clamp.
        seed: RNG seed for this process (independent of the network's RNG).
    """

    def __init__(self, network: SimulatedNetwork, end_a: str, end_b: str,
                 attribute: str = "reliability", step: float = 0.05,
                 interval: float = 1.0,
                 bounds: Optional[Tuple[float, float]] = None,
                 seed: Optional[int] = None):
        super().__init__(network, end_a, end_b)
        if not hasattr(self.link, attribute):
            raise NetworkError(f"link has no attribute {attribute!r}")
        self.attribute = attribute
        self.step = step
        self.interval = interval
        if bounds is None:
            bounds = (0.0, 1.0) if attribute == "reliability" else (0.0, float("inf"))
        self.bounds = bounds
        self.rng = random.Random(seed)
        self.perturbations = 0

    def _begin(self):
        return self.clock.every(self.interval, self._perturb)

    def _perturb(self) -> None:
        low, high = self.bounds
        value = getattr(self.link, self.attribute)
        value += self.rng.uniform(-self.step, self.step)
        value = max(low, min(high, value))
        _set_link_attribute(self.network, self.link, self.attribute, value)
        self.perturbations += 1


class DisconnectionProcess(FluctuationProcess):
    """Alternating up/down periods with exponentially distributed durations.

    Args:
        mean_uptime: Mean duration of connected periods.
        mean_downtime: Mean duration of disconnected periods.
    """

    def __init__(self, network: SimulatedNetwork, end_a: str, end_b: str,
                 mean_uptime: float = 10.0, mean_downtime: float = 2.0,
                 seed: Optional[int] = None):
        super().__init__(network, end_a, end_b)
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise NetworkError("mean durations must be positive")
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        self.rng = random.Random(seed)
        self.transitions = 0

    def _begin(self):
        return self.clock.schedule(
            self.rng.expovariate(1.0 / self.mean_uptime), self._go_down)

    def _go_down(self) -> None:
        self.network.set_connected(*self.link.ends, connected=False)
        self.transitions += 1
        self._task = self.clock.schedule(
            self.rng.expovariate(1.0 / self.mean_downtime), self._go_up)

    def _go_up(self) -> None:
        self.network.set_connected(*self.link.ends, connected=True)
        self.transitions += 1
        self._task = self.clock.schedule(
            self.rng.expovariate(1.0 / self.mean_uptime), self._go_down)

    def stop(self) -> None:
        super().stop()
        # Leave the link up when the process is torn down.
        if not self.link.connected:
            self.network.set_connected(*self.link.ends, connected=True)


class StepChange(FluctuationProcess):
    """A scripted one-shot change of a link attribute at a fixed time."""

    def __init__(self, network: SimulatedNetwork, end_a: str, end_b: str,
                 at: float, attribute: str = "reliability",
                 value: float = 0.0):
        super().__init__(network, end_a, end_b)
        if not hasattr(self.link, attribute):
            raise NetworkError(f"link has no attribute {attribute!r}")
        self.at = at
        self.attribute = attribute
        self.value = value
        self.applied = False

    def _begin(self):
        return self.clock.schedule_at(self.at, self._apply)

    def _apply(self) -> None:
        _set_link_attribute(self.network, self.link, self.attribute,
                            self.value)
        self.applied = True
