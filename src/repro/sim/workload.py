"""Application workload generation.

Monitors can only observe interactions that actually happen, so the
reproduction needs application traffic.  :class:`InteractionWorkload` turns
the deployment model's logical links — each with a ``frequency`` and an
``evt_size`` — into a concrete schedule of component-to-component events,
either strictly periodic (deterministic) or Poisson (realistic).

The workload is transport-agnostic: it calls an injected ``emit`` callback
``(source_component, target_component, size_kb)`` and is used two ways:

* driving the middleware application (the emit callback hands the event to
  the source component's architecture), which is what the monitoring and
  end-to-end benches exercise; and
* standalone trace generation for algorithm-only experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.model import DeploymentModel
from repro.sim.clock import SimClock

EmitCallback = Callable[[str, str, float], None]


@dataclass(frozen=True)
class InteractionRecord:
    """One generated interaction: at *time*, *source* sends to *target*."""

    time: float
    source: str
    target: str
    size_kb: float


class InteractionWorkload:
    """Generates component interactions matching the model's logical links.

    Each logical link with positive frequency produces events in *both*
    directions at half the link's rate (the model's links are undirected;
    splitting the rate keeps the per-pair total equal to the modeled
    frequency so monitors should re-measure what the model says).

    Args:
        model: Source of the interaction topology and rates.
        clock: Simulation clock to schedule against.
        emit: Callback invoked per interaction.
        poisson: Exponential inter-arrival times when True; strictly
            periodic otherwise.
        seed: RNG seed for Poisson arrivals and direction choice.
        rate_scale: Multiplier applied to every link frequency (lets benches
            raise traffic without editing the model).
    """

    def __init__(self, model: DeploymentModel, clock: SimClock,
                 emit: EmitCallback, poisson: bool = False,
                 seed: Optional[int] = None, rate_scale: float = 1.0):
        self.model = model
        self.clock = clock
        self.emit = emit
        self.poisson = poisson
        self.rng = random.Random(seed)
        self.rate_scale = rate_scale
        self.events_emitted = 0
        self._running = False
        #: (source, target, rate, evt_size, period) per directed stream;
        #: the period is precomputed so the periodic hot path does not
        #: divide once per emitted event.
        self._streams: List[Tuple[str, str, float, float, float]] = []
        for comp_a, comp_b, link in model.interaction_pairs():
            rate = link.frequency * rate_scale
            if rate <= 0.0:
                continue
            half = rate / 2.0
            period = 1.0 / half
            self._streams.append(
                (comp_a, comp_b, half, link.evt_size, period))
            self._streams.append(
                (comp_b, comp_a, half, link.evt_size, period))

    # ------------------------------------------------------------------
    def start(self) -> "InteractionWorkload":
        """Schedule the first arrival of every stream."""
        if self._running:
            return self
        self._running = True
        for index in range(len(self._streams)):
            self._schedule_next(index, first=True)
        return self

    def stop(self) -> None:
        self._running = False

    def _interarrival(self, rate: float, period: float,
                      first: bool) -> float:
        if self.poisson:
            return self.rng.expovariate(rate)
        if first:
            # Desynchronize periodic streams so they do not all fire at t=0.
            return period * self.rng.random()
        return period

    def _schedule_next(self, index: int, first: bool = False) -> None:
        __, __, rate, __, period = self._streams[index]
        self.clock.defer(self._interarrival(rate, period, first),
                         self._fire, index)

    def _fire(self, index: int) -> None:
        if not self._running:
            return
        source, target, rate, size, period = self._streams[index]
        self.emit(source, target, size)
        self.events_emitted += 1
        # Inlined _schedule_next/_interarrival: one emitted event per
        # call, and the periodic case draws nothing from the RNG.
        if self.poisson:
            period = self.rng.expovariate(rate)
        self.clock.defer(period, self._fire, index)


def generate_trace(model: DeploymentModel, duration: float,
                   poisson: bool = False,
                   seed: Optional[int] = None) -> List[InteractionRecord]:
    """Standalone trace of interactions over *duration* simulated seconds.

    Runs a private clock; useful for algorithm-only experiments and for
    validating that the workload's empirical rates match the model.
    """
    clock = SimClock()
    records: List[InteractionRecord] = []

    def record(source: str, target: str, size_kb: float) -> None:
        records.append(InteractionRecord(clock.now, source, target, size_kb))

    workload = InteractionWorkload(model, clock, record,
                                   poisson=poisson, seed=seed)
    workload.start()
    clock.run(duration)
    workload.stop()
    return records


def empirical_frequencies(records: List[InteractionRecord],
                          duration: float) -> dict:
    """Per-undirected-pair observed event rates from a trace."""
    counts: dict = {}
    for record in records:
        key = tuple(sorted((record.source, record.target)))
        counts[key] = counts.get(key, 0) + 1
    return {key: count / duration for key, count in counts.items()}
