"""Discrete-event simulation clock.

Every time-dependent piece of the substrate — network message delivery,
monitoring windows, parameter fluctuation, auction deadlines — runs against
one :class:`SimClock`.  Substituting simulated time for the paper's
wall-clock intervals is what makes the reproduction deterministic: the
monitor's ε-stability detection and the effector's coordination depend only
on the *ordering* of windows and messages, which the clock preserves
exactly.

Events scheduled for the same instant fire in scheduling order (a strict
FIFO tie-break), so runs are reproducible bit-for-bit given the same seeds.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class PeriodicTask:
    """A self-rescheduling callback created by :meth:`SimClock.every`."""

    def __init__(self, clock: "SimClock", interval: float,
                 callback: Callable[..., Any], args: Tuple[Any, ...]):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.clock = clock
        self.interval = interval
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.firings = 0
        self._handle = clock.schedule(interval, self._fire)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.callback(*self.args)
        self.firings += 1
        if not self.cancelled:
            self._handle = self.clock.schedule(self.interval, self._fire)

    def cancel(self) -> None:
        self.cancelled = True
        self._handle.cancel()


class SimClock:
    """A minimal, deterministic discrete-event scheduler."""

    def __init__(self, start: float = 0.0):
        self._now = start
        self._queue: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired (and not cancelled) events."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def processed(self) -> int:
        """Total events fired since construction."""
        return self._processed

    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` *delay* time units from now.

        A zero delay schedules for the current instant, after everything
        already queued for this instant.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = ScheduledEvent(self._now + delay, next(self._seq),
                               callback, tuple(args))
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` at absolute *time*."""
        return self.schedule(time - self._now, callback, *args)

    def every(self, interval: float, callback: Callable[..., Any],
              *args: Any) -> "PeriodicTask":
        """Run ``callback(*args)`` every *interval* units, starting one
        interval from now.  Cancel the returned :class:`PeriodicTask` to
        stop the cycle."""
        return PeriodicTask(self, interval, callback, args)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            return True
        return False

    def run(self, duration: Optional[float] = None,
            max_events: int = 10_000_000) -> int:
        """Process events until the queue drains, *duration* elapses, or
        *max_events* fire (a runaway guard).  Returns events processed."""
        deadline = None if duration is None else self._now + duration
        fired = 0
        while self._queue and fired < max_events:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if deadline is not None and head.time > deadline:
                break
            self.step()
            fired += 1
        if deadline is not None and self._now < deadline:
            self._now = deadline
        return fired

    def run_until(self, time: float, max_events: int = 10_000_000) -> int:
        """Process events with timestamps <= *time*."""
        if time < self._now:
            raise ValueError("run_until target is in the past")
        return self.run(time - self._now, max_events)

    def advance(self, duration: float) -> None:
        """Move time forward without firing anything (idle time)."""
        if duration < 0:
            raise ValueError("cannot advance backwards")
        if self._queue:
            head = min(e.time for e in self._queue if not e.cancelled) \
                if any(not e.cancelled for e in self._queue) else None
            if head is not None and head < self._now + duration:
                raise ValueError(
                    "advance() would skip scheduled events; use run()")
        self._now += duration

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6g}, pending={self.pending})"
