"""Discrete-event simulation clock.

Every time-dependent piece of the substrate — network message delivery,
monitoring windows, parameter fluctuation, auction deadlines — runs against
one :class:`SimClock`.  Substituting simulated time for the paper's
wall-clock intervals is what makes the reproduction deterministic: the
monitor's ε-stability detection and the effector's coordination depend only
on the *ordering* of windows and messages, which the clock preserves
exactly.

Events scheduled for the same instant fire in scheduling order (a strict
FIFO tie-break), so runs are reproducible bit-for-bit given the same seeds.

The scheduler keeps two structures whose merge order is the global
``(time, seq)`` order:

* a binary heap of ``(time, seq, event)`` tuples for future events, so
  sift comparisons stay in C instead of calling ``ScheduledEvent.__lt__``
  per level (the single hottest call site in message-heavy campaigns);
* a FIFO deque for events scheduled *at the current instant* — the
  middleware scaffold turns every local delivery into a zero-delay event,
  so the majority of traffic bypasses the heap entirely.

An event lands in the deque exactly when its computed timestamp equals
``now``, which means its ``seq`` is larger than that of any heap entry
with the same timestamp (those were pushed before time reached it); the
drain loop still compares ``(time, seq)`` pairs across both structures,
so the interleaving is the heap order bit-for-bit, not an approximation.

Cancelled events no longer linger until their timestamp: once enough
cancelled entries accumulate (more than :data:`COMPACT_MIN` and more than
half the heap) the heap is compacted in place, bounding memory under
cancel-heavy retry/timeout workloads.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, Iterable, List, Optional, Tuple

#: Compaction threshold: never compact below this many cancelled entries
#: (tiny heaps aren't worth the heapify), and only when cancelled entries
#: outnumber live ones (amortizes compaction to O(1) per cancel).
COMPACT_MIN = 64

#: Free-list bound for recycled post()/defer() events: large enough to
#: cover the in-flight population of a message storm, small enough that
#: an idle clock is not hoarding memory.
POOL_MAX = 4096


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    Events created through :meth:`SimClock.post`/:meth:`SimClock.defer`
    carry ``pooled=True``: no handle ever escapes to application code,
    so after firing the object is recycled into the clock's free list
    instead of being garbage (message-heavy campaigns allocate millions
    of these, and the alloc/GC churn is measurable).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_clock",
                 "pooled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._clock: Optional["SimClock"] = None
        self.pooled = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        clock = self._clock
        if clock is not None:  # still pending: update live/cancelled books
            clock._note_cancel()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class PeriodicTask:
    """A self-rescheduling callback created by :meth:`SimClock.every`."""

    def __init__(self, clock: "SimClock", interval: float,
                 callback: Callable[..., Any], args: Tuple[Any, ...]):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.clock = clock
        self.interval = interval
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.firings = 0
        self._handle = clock.schedule(interval, self._fire)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.callback(*self.args)
        self.firings += 1
        if not self.cancelled:
            self._handle = self.clock.schedule(self.interval, self._fire)

    def cancel(self) -> None:
        self.cancelled = True
        self._handle.cancel()


class SimClock:
    """A minimal, deterministic discrete-event scheduler."""

    def __init__(self, start: float = 0.0):
        self._now = start
        #: Future events as (time, seq, event) so heap sifts compare
        #: tuples in C; seq is unique, so the event never participates.
        self._heap: List[Tuple[float, int, ScheduledEvent]] = []
        #: Events scheduled for the current instant, in FIFO (seq) order.
        self._ready: Deque[ScheduledEvent] = deque()
        #: Next scheduling sequence number.  A plain int (not
        #: ``itertools.count``): allocation is one attribute store
        #: instead of a builtin call, and it is bumped once per
        #: scheduled event — millions of times per campaign.
        self._seq_n = 0
        self._processed = 0
        self._live = 0            # scheduled, not yet fired or cancelled
        self._cancelled_heap = 0  # cancelled entries still in the heap
        #: Free list of fired post()/defer() events awaiting reuse.
        self._pool: List[ScheduledEvent] = []

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired (and not cancelled) events."""
        return self._live

    @property
    def processed(self) -> int:
        """Total events fired since construction."""
        return self._processed

    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` *delay* time units from now.

        A zero delay schedules for the current instant, after everything
        already queued for this instant.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = self._seq_n
        self._seq_n = seq + 1
        event = ScheduledEvent(time, seq, callback, args)
        event._clock = self
        self._live += 1
        if time == self._now:
            self._ready.append(event)
        else:
            heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_many(
            self,
            items: Iterable[Tuple[float, Callable[..., Any],
                                  Tuple[Any, ...]]],
    ) -> List[ScheduledEvent]:
        """Schedule a batch of ``(delay, callback, args)`` entries.

        Equivalent to calling :meth:`schedule` once per entry, in order
        (handles come back in the same order), but resolves the hot
        locals once and pays a single attribute-lookup set for the whole
        batch.  Entries for the current instant go to the ready deque;
        the rest are pushed onto the heap.
        """
        now = self._now
        heap = self._heap
        ready_append = self._ready.append
        push = heapq.heappush
        seq = self._seq_n
        handles: List[ScheduledEvent] = []
        for delay, callback, args in items:
            if delay < 0:
                self._seq_n = seq
                raise ValueError(
                    f"cannot schedule into the past (delay={delay})")
            time = now + delay
            event = ScheduledEvent(time, seq, callback, args)
            seq += 1
            event._clock = self
            if time == now:
                ready_append(event)
            else:
                push(heap, (time, event.seq, event))
            handles.append(event)
        self._seq_n = seq
        self._live += len(handles)
        return handles

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` at absolute *time*."""
        return self.schedule(time - self._now, callback, *args)

    def post(self, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule` at the current instant.

        No handle is returned (the event cannot be cancelled), which
        lets the clock recycle the event object after it fires.  The
        ``(time, seq)`` position is identical to ``schedule(0.0, ...)``
        — this is the middleware scaffold's dispatch primitive, so it is
        the single most-called entry point in message-heavy campaigns.
        """
        seq = self._seq_n
        self._seq_n = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = self._now
            event.seq = seq
            event.callback = callback
            event.args = args
        else:
            event = ScheduledEvent(self._now, seq, callback, args)
            event.pooled = True
        self._live += 1
        self._ready.append(event)

    def defer(self, delay: float, callback: Callable[..., Any],
              *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: same ``(time, seq)``
        position, no cancellation handle, recycled after firing."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = self._seq_n
        self._seq_n = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
        else:
            event = ScheduledEvent(time, seq, callback, args)
            event.pooled = True
        self._live += 1
        if time == self._now:
            self._ready.append(event)
        else:
            heapq.heappush(self._heap, (time, seq, event))

    def every(self, interval: float, callback: Callable[..., Any],
              *args: Any) -> "PeriodicTask":
        """Run ``callback(*args)`` every *interval* units, starting one
        interval from now.  Cancel the returned :class:`PeriodicTask` to
        stop the cycle."""
        return PeriodicTask(self, interval, callback, args)

    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """A pending event was cancelled: move it from the live count to
        the cancelled book and compact the heap when it is mostly dead."""
        self._live -= 1
        self._cancelled_heap += 1
        if (self._cancelled_heap > COMPACT_MIN
                and self._cancelled_heap * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the heap, in place.

        In place matters: :meth:`run` holds a local reference to the
        heap list, so compaction must keep the object identity.  The
        ready deque is left alone — its entries belong to the current
        instant and are popped imminently anyway (the cancelled book
        only counts heap entries for exactly this reason).
        """
        self._heap[:] = [entry for entry in self._heap
                         if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_heap = 0

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        heap = self._heap
        ready = self._ready
        while True:
            if ready:
                head = ready[0]
                if heap and heap[0] < (head.time, head.seq):
                    event = heapq.heappop(heap)[2]
                else:
                    event = ready.popleft()
            elif heap:
                event = heapq.heappop(heap)[2]
            else:
                return False
            if event.cancelled:
                event._clock = None
                if self._cancelled_heap:
                    self._cancelled_heap -= 1
                continue
            event._clock = None
            self._live -= 1
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            if event.pooled and len(self._pool) < POOL_MAX:
                event.callback = event.args = None
                self._pool.append(event)
            return True

    def run(self, duration: Optional[float] = None,
            max_events: int = 1_000_000_000) -> int:
        """Process events until the queue drains, *duration* elapses, or
        *max_events* fire (a runaway guard).  Returns events processed.

        The guard exists to stop a zero-delay livelock, not to bound
        legitimate work: a cap counted in scheduler events fires at
        different points in *virtual time* for batched vs per-event
        delivery (a coalesced run schedules fewer events for the same
        traffic), so a guard tight enough to bind on real campaigns
        would silently break their byte-equivalence.

        This is the hot loop: same-timestamp runs (zero-delay middleware
        dispatch above all) drain through the ready deque without any
        heap traffic, and pop/fire is inlined rather than going through
        :meth:`step` per event.
        """
        deadline = None if duration is None else self._now + duration
        fired = 0
        heap = self._heap
        ready = self._ready
        pool = self._pool
        pop = heapq.heappop
        while fired < max_events:
            if ready:
                head = ready[0]
                if heap and heap[0] < (head.time, head.seq):
                    time, __, event = heap[0]
                    if deadline is not None and time > deadline:
                        break
                    pop(heap)
                else:
                    if deadline is not None and head.time > deadline:
                        break
                    event = ready.popleft()
            elif heap:
                time = heap[0][0]
                if deadline is not None and time > deadline:
                    break
                event = pop(heap)[2]
            else:
                break
            if event.cancelled:
                event._clock = None
                if self._cancelled_heap:
                    self._cancelled_heap -= 1
                continue
            event._clock = None
            self._live -= 1
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            fired += 1
            if event.pooled and len(pool) < POOL_MAX:
                event.callback = event.args = None
                pool.append(event)
        if deadline is not None and self._now < deadline:
            self._now = deadline
        return fired

    def run_while(self, predicate: Callable[[], Any],
                  max_events: Optional[int] = None) -> int:
        """Process events for as long as ``predicate()`` is truthy.

        The predicate is evaluated before each event fires, so the stop
        point is exactly that of the seed idiom ``while predicate():
        clock.step()`` — but without the per-event method-call and
        local-setup overhead, which dominates when a redeployment window
        processes millions of application events.  No deadline filter is
        applied: like ``step()``, the next event fires regardless of its
        timestamp (the predicate itself usually watches ``now``).

        Unbounded by default, like the loop it replaces.  A bound would
        also break the batched-delivery equivalence: coalesced deliveries
        fire fewer scheduler events for the same traffic, so any cap
        counted in scheduler events truncates the two modes at different
        points in virtual time.
        """
        fired = 0
        heap = self._heap
        ready = self._ready
        pool = self._pool
        pop = heapq.heappop
        while (max_events is None or fired < max_events) and predicate():
            if ready:
                head = ready[0]
                if heap and heap[0] < (head.time, head.seq):
                    event = pop(heap)[2]
                else:
                    event = ready.popleft()
            elif heap:
                event = pop(heap)[2]
            else:
                break
            if event.cancelled:
                event._clock = None
                if self._cancelled_heap:
                    self._cancelled_heap -= 1
                continue
            event._clock = None
            self._live -= 1
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            fired += 1
            if event.pooled and len(pool) < POOL_MAX:
                event.callback = event.args = None
                pool.append(event)
        return fired

    def run_while_pending(self, container: Any, deadline: float) -> int:
        """Process events while *container* is non-empty and now < *deadline*.

        The common shape of :meth:`run_while` — "drain until this work
        queue empties or time runs out" — with the condition inlined:
        the generic form pays a lambda call plus a ``now`` property read
        per event, which is measurable when a redeployment window
        processes millions of events.  Stop point is identical to
        ``run_while(lambda: container and self.now < deadline)``.
        """
        fired = 0
        heap = self._heap
        ready = self._ready
        pool = self._pool
        pop = heapq.heappop
        while container and self._now < deadline:
            if ready:
                head = ready[0]
                if heap and heap[0] < (head.time, head.seq):
                    event = pop(heap)[2]
                else:
                    event = ready.popleft()
            elif heap:
                event = pop(heap)[2]
            else:
                break
            if event.cancelled:
                event._clock = None
                if self._cancelled_heap:
                    self._cancelled_heap -= 1
                continue
            event._clock = None
            self._live -= 1
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            fired += 1
            if event.pooled and len(pool) < POOL_MAX:
                event.callback = event.args = None
                pool.append(event)
        return fired

    def run_until(self, time: float, max_events: int = 1_000_000_000) -> int:
        """Process events with timestamps <= *time*."""
        if time < self._now:
            raise ValueError("run_until target is in the past")
        return self.run(time - self._now, max_events)

    def advance(self, duration: float) -> None:
        """Move time forward without firing anything (idle time)."""
        if duration < 0:
            raise ValueError("cannot advance backwards")
        live = [e.time for e in self._ready if not e.cancelled]
        live += [t for t, __, e in self._heap if not e.cancelled]
        if live and min(live) < self._now + duration:
            raise ValueError(
                "advance() would skip scheduled events; use run()")
        self._now += duration

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6g}, pending={self.pending})"


class LegacySimClock:
    """The pre-batching scheduler, kept verbatim as a reference.

    One heap of :class:`ScheduledEvent` objects, one heap operation per
    event, cancelled entries retained until their timestamp — exactly
    the implementation :class:`SimClock` replaced.  The simulation-core
    benchmark uses it as the baseline, and the determinism property
    tests cross-check that :class:`SimClock` fires the identical
    callback sequence on adversarial schedules.
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self._queue: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def processed(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> ScheduledEvent:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = ScheduledEvent(self._now + delay, next(self._seq),
                               callback, tuple(args))
        heapq.heappush(self._queue, event)
        return event

    def schedule_many(
            self,
            items: Iterable[Tuple[float, Callable[..., Any],
                                  Tuple[Any, ...]]],
    ) -> List[ScheduledEvent]:
        return [self.schedule(delay, callback, *args)
                for delay, callback, args in items]

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> ScheduledEvent:
        return self.schedule(time - self._now, callback, *args)

    def post(self, callback: Callable[..., Any], *args: Any) -> None:
        """Seed-cost equivalent of :meth:`SimClock.post`: a plain
        zero-delay schedule whose handle is dropped (no pooling)."""
        self.schedule(0.0, callback, *args)

    def defer(self, delay: float, callback: Callable[..., Any],
              *args: Any) -> None:
        """Seed-cost equivalent of :meth:`SimClock.defer`."""
        self.schedule(delay, callback, *args)

    def every(self, interval: float, callback: Callable[..., Any],
              *args: Any) -> PeriodicTask:
        return PeriodicTask(self, interval, callback, args)

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            return True
        return False

    def run(self, duration: Optional[float] = None,
            max_events: int = 1_000_000_000) -> int:
        deadline = None if duration is None else self._now + duration
        fired = 0
        while self._queue and fired < max_events:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if deadline is not None and head.time > deadline:
                break
            self.step()
            fired += 1
        if deadline is not None and self._now < deadline:
            self._now = deadline
        return fired

    def run_until(self, time: float, max_events: int = 1_000_000_000) -> int:
        if time < self._now:
            raise ValueError("run_until target is in the past")
        return self.run(time - self._now, max_events)

    def run_while(self, predicate: Callable[[], Any],
                  max_events: Optional[int] = None) -> int:
        """The seed idiom :meth:`SimClock.run_while` replaced: one
        :meth:`step` call per event, predicate checked between steps."""
        fired = 0
        while (max_events is None or fired < max_events) and predicate():
            if not self.step():
                break
            fired += 1
        return fired

    def run_while_pending(self, container: Any, deadline: float) -> int:
        """Seed-cost equivalent of :meth:`SimClock.run_while_pending`:
        the original per-event ``step()`` loop with the condition
        evaluated between steps."""
        fired = 0
        while container and self._now < deadline:
            if not self.step():
                break
            fired += 1
        return fired

    def advance(self, duration: float) -> None:
        if duration < 0:
            raise ValueError("cannot advance backwards")
        live = [e.time for e in self._queue if not e.cancelled]
        if live and min(live) < self._now + duration:
            raise ValueError(
                "advance() would skip scheduled events; use run()")
        self._now += duration

    def __repr__(self) -> str:
        return f"LegacySimClock(now={self._now:.6g}, pending={self.pending})"
