"""Simulated network substrate.

The paper's evaluation runs on real PDAs and laptops whose links suffer
"network disconnections during system execution ... bandwidth fluctuations
and the unreliability of network links" (Section 1).  We reproduce that
environment with an explicit simulation: a :class:`SimulatedNetwork` of
named endpoints joined by :class:`NetworkLink` objects carrying the same
three parameters the deployment model tracks — reliability, bandwidth,
transmission delay — plus an up/down flag.

Message transmission is probabilistic (a Bernoulli trial against the link's
reliability, drawn from an injected RNG for reproducibility) and takes
``delay + size/bandwidth`` simulated seconds, which is exactly the cost the
:class:`~repro.core.objectives.LatencyObjective` charges — so measured
behavior and modeled behavior agree by construction, as they do for the
paper's authors who *defined* their objectives this way.

The network also implements ``ping``, the "common 'pinging' technique" that
Prism-MW's ``NetworkReliabilityMonitor`` uses to estimate link reliability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import NetworkError, UnknownEntityError
from repro.core.model import DeploymentModel
from repro.obs import Observability, get_observability
from repro.sim.clock import SimClock

#: A batch item on the wire: (payload, size_kb).
WireItem = Tuple[Any, float]

_INF = float("inf")


def _pair(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass
class NetworkStats:
    """Cumulative traffic counters, per network and per link."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    kb_sent: float = 0.0
    kb_delivered: float = 0.0

    def observed_reliability(self) -> float:
        """Fraction of sends that were delivered (1.0 when nothing sent)."""
        if self.sent == 0:
            return 1.0
        return self.delivered / self.sent


class NetworkLink:
    """A bidirectional link between two endpoints."""

    def __init__(self, end_a: str, end_b: str, reliability: float = 1.0,
                 bandwidth: float = _INF, delay: float = 0.0,
                 connected: bool = True):
        if not 0.0 <= reliability <= 1.0:
            raise NetworkError(f"reliability must be in [0,1], got {reliability}")
        if bandwidth < 0:
            raise NetworkError(f"bandwidth must be >= 0, got {bandwidth}")
        if delay < 0:
            raise NetworkError(f"delay must be >= 0, got {delay}")
        self.ends = _pair(end_a, end_b)
        self.reliability = reliability
        self.bandwidth = bandwidth
        self.delay = delay
        self.connected = connected
        self.stats = NetworkStats()
        #: Messages currently on the wire (scheduled, not yet delivered
        #: or dropped) — the link's in-flight queue depth.
        self.in_flight = 0
        #: (delivered counter, dropped counter, in-flight gauge) resolved by
        #: the owning network when observability is enabled; None keeps the
        #: transmission hot path free of even no-op instrument calls.
        self.obs_instruments: Optional[Tuple[Any, Any, Any]] = None

    def transmission_time(self, size_kb: float) -> float:
        if self.bandwidth == float("inf"):
            return self.delay
        if self.bandwidth <= 0.0:
            raise NetworkError(f"link {self.ends} has zero bandwidth")
        return self.delay + size_kb / self.bandwidth

    def __repr__(self) -> str:
        state = "up" if self.connected else "DOWN"
        return (f"NetworkLink({self.ends[0]}<->{self.ends[1]}, "
                f"rel={self.reliability:.2f}, {state})")


# A message handler receives (source endpoint, payload, size_kb).
MessageHandler = Callable[[str, Any, float], None]


class SimulatedNetwork:
    """Endpoints + links + probabilistic, clock-driven message delivery.

    Endpoints are registered by name (we use host ids); each may attach one
    receive handler (the middleware's DistributionConnector).  ``send``
    resolves the direct link between the two endpoints — like the paper's
    deployment model, communication is single-hop: host pairs without a
    direct link cannot exchange messages and redeployment between them must
    be mediated (which the Deployer component does at the middleware layer).
    """

    def __init__(self, clock: SimClock, seed: Optional[int] = None,
                 obs: Optional[Observability] = None):
        self.clock = clock
        self.rng = random.Random(seed)
        self._endpoints: Dict[str, Optional[MessageHandler]] = {}
        self._links: Dict[Tuple[str, str], NetworkLink] = {}
        #: name -> sorted neighbor tuple, invalidated on any topology or
        #: connectivity change (sends resolve neighbors per message, so
        #: recomputing per call used to be a measurable hot-path cost).
        self._neighbors_cache: Dict[str, Tuple[str, ...]] = {}
        self.stats = NetworkStats()
        #: Observers called as (event, payload) for partition/heal events.
        self.observers: List[Callable[[str, Dict[str, Any]], None]] = []
        self.obs = obs if obs is not None else get_observability()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_endpoint(self, name: str,
                     handler: Optional[MessageHandler] = None) -> None:
        if name in self._endpoints:
            raise NetworkError(f"endpoint {name!r} already exists")
        self._endpoints[name] = handler

    def attach_handler(self, name: str, handler: MessageHandler) -> None:
        if name not in self._endpoints:
            raise UnknownEntityError("endpoint", name)
        self._endpoints[name] = handler

    def add_link(self, end_a: str, end_b: str, reliability: float = 1.0,
                 bandwidth: float = _INF, delay: float = 0.0,
                 connected: bool = True) -> NetworkLink:
        for end in (end_a, end_b):
            if end not in self._endpoints:
                raise UnknownEntityError("endpoint", end)
        key = _pair(end_a, end_b)
        if key in self._links:
            raise NetworkError(f"link {key} already exists")
        link = NetworkLink(end_a, end_b, reliability, bandwidth, delay,
                           connected)
        if self.obs.enabled:
            name = f"{key[0]}|{key[1]}"
            link.obs_instruments = (
                self.obs.counter("sim.network.delivered", link=name),
                self.obs.counter("sim.network.dropped", link=name),
                self.obs.gauge("sim.network.in_flight", link=name),
            )
        self._links[key] = link
        self._neighbors_cache.clear()
        return link

    def link(self, end_a: str, end_b: str) -> Optional[NetworkLink]:
        return self._links.get(_pair(end_a, end_b))

    def require_link(self, end_a: str, end_b: str) -> NetworkLink:
        link = self.link(end_a, end_b)
        if link is None:
            raise UnknownEntityError("link", f"{end_a}<->{end_b}")
        return link

    @property
    def endpoints(self) -> Tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    @property
    def links(self) -> Tuple[NetworkLink, ...]:
        return tuple(self._links[k] for k in sorted(self._links))

    def neighbors(self, name: str) -> Tuple[str, ...]:
        """Endpoints connected to *name* by a currently-up link."""
        cached = self._neighbors_cache.get(name)
        if cached is not None:
            return cached
        out = []
        for (a, b), link in self._links.items():
            if not link.connected:
                continue
            if a == name:
                out.append(b)
            elif b == name:
                out.append(a)
        result = tuple(sorted(out))
        self._neighbors_cache[name] = result
        return result

    # ------------------------------------------------------------------
    # Link dynamics
    # ------------------------------------------------------------------
    # Every runtime mutation of link state — manual overrides, the
    # fluctuation engine, the fault injector — goes through these three
    # setters: inputs are clamped to their legal range and observers are
    # notified of actual changes, so no two mutation sources can silently
    # diverge on what the link looks like.

    def _notify(self, event: str, payload: Dict[str, Any]) -> None:
        for observer in tuple(self.observers):
            observer(event, payload)

    def set_connected(self, end_a: str, end_b: str, connected: bool) -> None:
        link = self.require_link(end_a, end_b)
        if link.connected != connected:
            link.connected = connected
            self._neighbors_cache.clear()
            self._notify("link_up" if connected else "link_down",
                         {"ends": link.ends})

    def set_reliability(self, end_a: str, end_b: str, value: float) -> None:
        if value != value:  # NaN
            raise NetworkError("reliability must be a number, got NaN")
        link = self.require_link(end_a, end_b)
        value = max(0.0, min(1.0, value))
        if link.reliability != value:
            old = link.reliability
            link.reliability = value
            self._notify("reliability_changed",
                         {"ends": link.ends, "old": old, "new": value})

    def set_bandwidth(self, end_a: str, end_b: str, value: float) -> None:
        if value != value:  # NaN
            raise NetworkError("bandwidth must be a number, got NaN")
        link = self.require_link(end_a, end_b)
        value = max(0.0, value)
        if link.bandwidth != value:
            old = link.bandwidth
            link.bandwidth = value
            self._notify("bandwidth_changed",
                         {"ends": link.ends, "old": old, "new": value})

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, source: str, destination: str, payload: Any,
             size_kb: float = 1.0,
             on_dropped: Optional[Callable[[str, Any], None]] = None,
             reliable: bool = False) -> bool:
        """Attempt to deliver *payload* from *source* to *destination*.

        Returns True when the message was *put on the wire* (a link exists
        and is up); actual delivery is decided by the Bernoulli reliability
        trial and happens after the link's transmission time.  ``on_dropped``
        fires (immediately) when the message is lost in flight.

        ``reliable=True`` models a retransmitting transport (as used for the
        middleware's redeployment control traffic): the loss trial is
        skipped, but a missing or disconnected link still fails the send —
        no transport can cross a partition.
        """
        if source not in self._endpoints:
            raise UnknownEntityError("endpoint", source)
        if destination not in self._endpoints:
            raise UnknownEntityError("endpoint", destination)
        if source == destination:
            # Loopback: deliver at the current instant, reliably.
            self.stats.sent += 1
            self.stats.kb_sent += size_kb
            self._deliver_local(source, destination, payload, size_kb)
            return True
        link = self.link(source, destination)
        self.stats.sent += 1
        self.stats.kb_sent += size_kb
        if link is None or not link.connected:
            self.stats.dropped += 1
            if link is not None:
                link.stats.sent += 1
                link.stats.dropped += 1
                link.stats.kb_sent += size_kb
                if link.obs_instruments is not None:
                    link.obs_instruments[1].inc()
            if on_dropped is not None:
                on_dropped(destination, payload)
            return False
        link.stats.sent += 1
        link.stats.kb_sent += size_kb
        if not reliable and self.rng.random() > link.reliability:
            self.stats.dropped += 1
            link.stats.dropped += 1
            if link.obs_instruments is not None:
                link.obs_instruments[1].inc()
            if on_dropped is not None:
                on_dropped(destination, payload)
            return True  # sent, but lost in flight
        travel = link.transmission_time(size_kb)
        link.in_flight += 1
        if link.obs_instruments is not None:
            link.obs_instruments[2].add(1)
        self.clock.defer(travel, self._deliver, source, destination,
                         payload, size_kb, link)
        return True

    def send_many(self, source: str, destination: str,
                  items: List[WireItem],
                  on_dropped: Optional[Callable[[str, Any], None]] = None,
                  reliable: bool = False) -> List[bool]:
        """Send a batch of ``(payload, size_kb)`` items in order.

        Byte-for-byte equivalent to calling :meth:`send` once per item:
        drop decisions consume the same seeded RNG stream in the same
        order, and every delivery fires at the same (time, FIFO-seq)
        point of the global event order.  The speedup comes from
        resolving endpoints/link/stats once, drawing the Bernoulli
        variates for the whole batch up front when no ``on_dropped``
        callback can interleave, and coalescing consecutive survivors
        with identical travel time into one scheduled delivery event.

        The coalescing is exact: consecutive surviving items occupy
        consecutive scheduler sequence numbers in the serial path (a
        dropped item without a callback allocates nothing), so no other
        event can sort between them.  Any ``on_dropped`` invocation
        closes the open batch first, because the callback may itself
        schedule events that must interleave exactly as they would have
        serially.
        """
        if source not in self._endpoints:
            raise UnknownEntityError("endpoint", source)
        if destination not in self._endpoints:
            raise UnknownEntityError("endpoint", destination)
        items = list(items)
        stats = self.stats
        if source == destination:
            for payload, size_kb in items:
                stats.sent += 1
                stats.kb_sent += size_kb
                self._deliver_local(source, destination, payload, size_kb)
            return [True] * len(items)
        link = self._links.get(_pair(source, destination))
        if link is None:
            results = []
            for payload, size_kb in items:
                stats.sent += 1
                stats.kb_sent += size_kb
                stats.dropped += 1
                if on_dropped is not None:
                    on_dropped(destination, payload)
                results.append(False)
            return results
        lstats = link.stats
        instruments = link.obs_instruments
        rng_random = self.rng.random
        schedule = self.clock.defer
        # Whole-batch Bernoulli pass: safe only when nothing can run
        # between the draws (serially they interleave with on_dropped).
        variates: Optional[List[float]] = None
        if not reliable and on_dropped is None and link.connected:
            variates = [rng_random() for __ in range(len(items))]
        results: List[bool] = []
        group: Optional[List[WireItem]] = None
        group_travel = 0.0
        for index, item in enumerate(items):
            payload, size_kb = item
            stats.sent += 1
            stats.kb_sent += size_kb
            if not link.connected:
                stats.dropped += 1
                lstats.sent += 1
                lstats.dropped += 1
                lstats.kb_sent += size_kb
                if instruments is not None:
                    instruments[1].inc()
                if on_dropped is not None:
                    group = None
                    on_dropped(destination, payload)
                results.append(False)
                continue
            lstats.sent += 1
            lstats.kb_sent += size_kb
            if not reliable:
                variate = (variates[index] if variates is not None
                           else rng_random())
                if variate > link.reliability:
                    stats.dropped += 1
                    lstats.dropped += 1
                    if instruments is not None:
                        instruments[1].inc()
                    if on_dropped is not None:
                        group = None
                        on_dropped(destination, payload)
                    results.append(True)  # sent, but lost in flight
                    continue
            travel = link.transmission_time(size_kb)
            if group is None or travel != group_travel:
                group = [item]
                group_travel = travel
                schedule(travel, self._deliver_batch, source, destination,
                         group, link)
            else:
                group.append(item)
            link.in_flight += 1
            if instruments is not None:
                instruments[2].add(1)
            results.append(True)
        return results

    def _deliver_local(self, source: str, destination: str, payload: Any,
                       size_kb: float) -> None:
        self.stats.delivered += 1
        self.stats.kb_delivered += size_kb
        handler = self._endpoints[destination]
        if handler is not None:
            handler(source, payload, size_kb)

    def _deliver(self, source: str, destination: str, payload: Any,
                 size_kb: float, link: NetworkLink) -> None:
        instruments = link.obs_instruments
        link.in_flight -= 1
        if instruments is not None:
            instruments[2].add(-1)
        # A link that went down while the message was in flight drops it.
        if not link.connected:
            self.stats.dropped += 1
            link.stats.dropped += 1
            if instruments is not None:
                instruments[1].inc()
            return
        self.stats.delivered += 1
        self.stats.kb_delivered += size_kb
        link.stats.delivered += 1
        link.stats.kb_delivered += size_kb
        if instruments is not None:
            instruments[0].inc()
        handler = self._endpoints[destination]
        if handler is not None:
            handler(source, payload, size_kb)

    def _deliver_batch(self, source: str, destination: str,
                       items: List[WireItem], link: NetworkLink) -> None:
        """Deliver a coalesced batch: per-message semantics of
        :meth:`_deliver`, applied in order at one (time, seq) point."""
        instruments = link.obs_instruments
        stats = self.stats
        lstats = link.stats
        link.in_flight -= len(items)
        if instruments is not None:
            instruments[2].add(-len(items))
        handler = self._endpoints[destination]
        for payload, size_kb in items:
            # The link state is checked per message: a delivery callback
            # cannot change it mid-batch today, but the serial path read
            # it per event and this loop keeps that contract.
            if not link.connected:
                stats.dropped += 1
                lstats.dropped += 1
                if instruments is not None:
                    instruments[1].inc()
                continue
            stats.delivered += 1
            stats.kb_delivered += size_kb
            lstats.delivered += 1
            lstats.kb_delivered += size_kb
            if instruments is not None:
                instruments[0].inc()
            if handler is not None:
                handler(source, payload, size_kb)

    def ping(self, source: str, destination: str,
             size_kb: float = 0.01) -> bool:
        """One synchronous reachability probe (success/failure now).

        This is the sampling primitive behind the paper's
        ``NetworkReliabilityMonitor``: repeated pings estimate the link's
        true reliability.  A ping does not consume simulated time (probes
        are tiny) but does update traffic statistics.
        """
        if source == destination:
            return True
        link = self.link(source, destination)
        self.stats.sent += 1
        self.stats.kb_sent += size_kb
        if link is None or not link.connected:
            self.stats.dropped += 1
            return False
        link.stats.sent += 1
        link.stats.kb_sent += size_kb
        if self.rng.random() > link.reliability:
            self.stats.dropped += 1
            link.stats.dropped += 1
            return False
        self.stats.delivered += 1
        self.stats.kb_delivered += size_kb
        link.stats.delivered += 1
        link.stats.kb_delivered += size_kb
        return True

    # ------------------------------------------------------------------
    # Interop with the deployment model
    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model: DeploymentModel, clock: SimClock,
                   seed: Optional[int] = None,
                   obs: Optional[Observability] = None) -> "SimulatedNetwork":
        """Build a network mirroring *model*'s hosts and physical links."""
        network = cls(clock, seed, obs=obs)
        for host in model.host_ids:
            network.add_endpoint(host)
        for link in model.physical_links:
            bandwidth = link.params.get("bandwidth")
            network.add_link(
                *link.hosts,
                reliability=link.params.get("reliability"),
                bandwidth=bandwidth,
                delay=link.params.get("delay"),
                connected=link.params.get("connected"),
            )
        return network

    def apply_to_model(self, model: DeploymentModel) -> None:
        """Write current link truth back into *model* (ground truth sync —
        used by tests to compare monitored estimates against reality)."""
        for link in self.links:
            a, b = link.ends
            if model.physical_link(a, b) is None:
                continue
            model.set_physical_link_param(a, b, "reliability", link.reliability)
            model.set_physical_link_param(a, b, "bandwidth", link.bandwidth)
            model.set_physical_link_param(a, b, "delay", link.delay)
            model.set_physical_link_param(a, b, "connected", link.connected)

    def __repr__(self) -> str:
        return (f"SimulatedNetwork(endpoints={len(self._endpoints)}, "
                f"links={len(self._links)})")
