"""Simulated execution substrate: clock, network, fluctuation, workload.

This package stands in for the paper's physical testbed (PDAs and laptops on
unreliable wireless links).  See DESIGN.md §2 for the substitution argument:
the framework interacts with the platform only through monitors and
effectors, and both operate identically over this substrate.
"""

from repro.sim.clock import (
    LegacySimClock, PeriodicTask, ScheduledEvent, SimClock,
)
from repro.sim.fluctuation import (
    DisconnectionProcess, FluctuationProcess, RandomWalkFluctuation,
    StepChange,
)
from repro.sim.network import NetworkLink, NetworkStats, SimulatedNetwork
from repro.sim.workload import (
    InteractionRecord, InteractionWorkload, empirical_frequencies,
    generate_trace,
)

__all__ = [
    "DisconnectionProcess",
    "FluctuationProcess",
    "InteractionRecord",
    "InteractionWorkload",
    "LegacySimClock",
    "NetworkLink",
    "NetworkStats",
    "PeriodicTask",
    "RandomWalkFluctuation",
    "ScheduledEvent",
    "SimClock",
    "SimulatedNetwork",
    "StepChange",
    "empirical_frequencies",
    "generate_trace",
]
