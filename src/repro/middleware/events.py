"""Prism-MW style events.

"Components in an architecture communicate by exchanging Events, which are
routed by Connectors" (Section 4.2).  An :class:`Event` is a named bag of
parameters plus routing metadata.  Events must survive crossing address
spaces, so payloads are restricted to JSON-serializable values and the
(de)serialization round-trip is part of the public contract — the same
machinery migrates application components between hosts (the paper's
``Serializable`` interface).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.core.errors import SerializationError

#: Event types, after Prism-MW's request/reply taxonomy.
REQUEST = "request"
REPLY = "reply"

#: Reserved name prefix for middleware control traffic (monitoring,
#: redeployment coordination).  Application events must not use it.
ADMIN_PREFIX = "admin."

#: Approximate fixed framing overhead of an event on the wire, in KB.
EVENT_OVERHEAD_KB = 0.05

#: Types the wire-validation fast path can vouch for without invoking
#: the JSON encoder.  ``bool`` is a subclass of ``int`` so it rides
#: along; anything else (tuples, exotic numerics, custom classes) falls
#: back to ``json.dumps`` and therefore keeps its exact accept/reject
#: behavior.
_JSON_SCALARS = (str, int, float)

#: Depth bound for the recursive fast checks: deeper (or circular)
#: payloads fall back to ``json.dumps``, which raises ``ValueError`` on
#: true cycles exactly as before.
_MAX_FAST_DEPTH = 16

#: Next event id.  A module-level int rather than ``itertools.count``
#: (one builtin call saved per event) — and deliberately NOT a class
#: attribute: rebinding a class attribute bumps the type's version tag
#: on every event, invalidating CPython's method caches for the hottest
#: class in the system.
_next_event_id = 1


def _jsonable_fast(value: Any, depth: int = 0) -> bool:
    """True when *value* is certainly JSON-serializable (conservative)."""
    if value is None or type(value) in (str, int, float, bool):
        return True
    if depth >= _MAX_FAST_DEPTH:
        return False
    # Plain loops rather than all(genexpr): this runs once per wire
    # serialization, and the generator frame alloc is measurable there.
    if type(value) is dict:
        for key, val in value.items():
            if type(key) is not str or not _jsonable_fast(val, depth + 1):
                return False
        return True
    if type(value) is list:
        for item in value:
            if not _jsonable_fast(item, depth + 1):
                return False
        return True
    return False


def _plain_str_len(text: str) -> int:
    """``len(json.dumps(text))`` for strings needing no escaping, else -1.

    The encoder quotes the string and escapes ``"``, ``\\``, control
    characters, and (with the default ``ensure_ascii``) anything
    non-ASCII; strings of printable ASCII without quote/backslash encode
    to ``len + 2`` exactly.
    """
    if text.isascii() and text.isprintable() \
            and '"' not in text and "\\" not in text:
        return len(text) + 2
    return -1


def _json_size_fast(value: Any, depth: int = 0) -> int:
    """``len(json.dumps(value))`` computed arithmetically, or -1.

    Exactness matters: this length feeds transmission times and thus the
    deterministic reports, so any case that is not provably identical to
    the encoder's output (escaped strings, exotic numerics, deep nesting)
    returns -1 and the caller runs the real encoder.
    """
    if value is None:
        return 4
    kind = type(value)
    if kind is bool:
        return 4 if value else 5
    if kind is str:
        return _plain_str_len(value)
    if kind is int:
        return len(str(value))
    if kind is float:
        if value != value or value in (float("inf"), float("-inf")):
            return -1  # NaN/Infinity spellings: let the encoder decide
        return len(repr(value))  # json uses float.__repr__
    if depth >= _MAX_FAST_DEPTH:
        return -1
    if kind is dict:
        # '{"k": v, ...}': 2 braces + per-entry key + ': ' + value,
        # joined by ', '.
        total = 2
        first = True
        for key, val in value.items():
            if type(key) is not str:
                return -1
            key_len = _plain_str_len(key)
            if key_len < 0:
                return -1
            val_len = _json_size_fast(val, depth + 1)
            if val_len < 0:
                return -1
            total += key_len + 2 + val_len + (0 if first else 2)
            first = False
        return total
    if kind is list:
        total = 2
        first = True
        for item in value:
            item_len = _json_size_fast(item, depth + 1)
            if item_len < 0:
                return -1
            total += item_len + (0 if first else 2)
            first = False
        return total
    return -1


class Event:
    """One message exchanged between components.

    Attributes:
        name: Event name; ``admin.*`` names are middleware control traffic.
        payload: JSON-serializable parameter dict.
        event_type: :data:`REQUEST` or :data:`REPLY`.
        source: Component id of the sender (set by the sending component).
        target: Component id of the addressee; ``None`` broadcasts to every
            component attached to the routing connector.
        size_kb: Declared wire size.  Defaults to payload-derived estimate;
            application workloads override it to model event volume.
        headers: Middleware routing metadata (current host, hop trail,
            relay flags).  Not part of the application contract.
    """

    __slots__ = ("name", "payload", "event_type", "source", "target",
                 "_size_kb", "_size_cache", "headers", "event_id",
                 "_admin")

    def __init__(self, name: str, payload: Optional[Dict[str, Any]] = None,
                 event_type: str = REQUEST, source: Optional[str] = None,
                 target: Optional[str] = None,
                 size_kb: Optional[float] = None):
        global _next_event_id
        if event_type not in (REQUEST, REPLY):
            raise ValueError(f"event_type must be request/reply, got {event_type!r}")
        self.name = name
        self.payload: Dict[str, Any] = dict(payload) if payload else {}
        self.event_type = event_type
        self.source = source
        self.target = target
        self._size_kb = size_kb
        self._size_cache: Optional[float] = None
        self.headers: Dict[str, Any] = {}
        self.event_id = _next_event_id
        _next_event_id += 1
        # Precomputed: checked per monitor notification and per
        # transmission, i.e. several times per event on the hot path.
        self._admin = name.startswith(ADMIN_PREFIX)

    # ------------------------------------------------------------------
    @property
    def is_admin(self) -> bool:
        return self._admin

    @property
    def size_kb(self) -> float:
        if self._size_kb is not None:
            return self._size_kb
        if self._size_cache is not None:
            return self._size_cache
        body = _json_size_fast(self.payload)
        if body < 0:
            try:
                body = len(json.dumps(self.payload))
            except (TypeError, ValueError):
                body = 256  # conservative estimate for exotic payloads
        size = EVENT_OVERHEAD_KB + body / 1024.0
        self._size_cache = size
        return size

    @size_kb.setter
    def size_kb(self, value: float) -> None:
        self._size_kb = value

    def reply(self, name: Optional[str] = None,
              payload: Optional[Dict[str, Any]] = None) -> "Event":
        """A reply event addressed back at this event's source."""
        return Event(name or self.name, payload, event_type=REPLY,
                     target=self.source)

    def copy(self) -> "Event":
        clone = Event(self.name, dict(self.payload), self.event_type,
                      self.source, self.target, self._size_kb)
        clone.headers = dict(self.headers)
        return clone

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        """Serialize for transmission between address spaces."""
        # Validation fast path: vouch for common primitive payloads
        # without running the encoder; anything unusual (tuples, custom
        # types, deep or cyclic nesting) takes the encoder and keeps its
        # exact accept/reject behavior.
        if not _jsonable_fast(self.payload):
            try:
                json.dumps(self.payload)
            except (TypeError, ValueError) as exc:
                raise SerializationError(
                    f"event {self.name!r} payload is not "
                    f"JSON-serializable: {exc}") from exc
        return {
            "name": self.name,
            "payload": self.payload,
            "event_type": self.event_type,
            "source": self.source,
            "target": self.target,
            "size_kb": self._size_kb,
            "headers": self.headers,
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "Event":
        try:
            event = cls(
                name=wire["name"],
                payload=wire.get("payload") or {},
                event_type=wire.get("event_type", REQUEST),
                source=wire.get("source"),
                target=wire.get("target"),
                size_kb=wire.get("size_kb"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed wire event: {exc}") from exc
        event.headers = dict(wire.get("headers") or {})
        return event

    def __repr__(self) -> str:
        route = f"{self.source or '?'}->{self.target or '*'}"
        return f"Event({self.name!r}, {route}, {self.event_type})"
