"""Prism-MW style events.

"Components in an architecture communicate by exchanging Events, which are
routed by Connectors" (Section 4.2).  An :class:`Event` is a named bag of
parameters plus routing metadata.  Events must survive crossing address
spaces, so payloads are restricted to JSON-serializable values and the
(de)serialization round-trip is part of the public contract — the same
machinery migrates application components between hosts (the paper's
``Serializable`` interface).
"""

from __future__ import annotations

import json
import itertools
from typing import Any, Dict, Optional

from repro.core.errors import SerializationError

#: Event types, after Prism-MW's request/reply taxonomy.
REQUEST = "request"
REPLY = "reply"

#: Reserved name prefix for middleware control traffic (monitoring,
#: redeployment coordination).  Application events must not use it.
ADMIN_PREFIX = "admin."

#: Approximate fixed framing overhead of an event on the wire, in KB.
EVENT_OVERHEAD_KB = 0.05


class Event:
    """One message exchanged between components.

    Attributes:
        name: Event name; ``admin.*`` names are middleware control traffic.
        payload: JSON-serializable parameter dict.
        event_type: :data:`REQUEST` or :data:`REPLY`.
        source: Component id of the sender (set by the sending component).
        target: Component id of the addressee; ``None`` broadcasts to every
            component attached to the routing connector.
        size_kb: Declared wire size.  Defaults to payload-derived estimate;
            application workloads override it to model event volume.
        headers: Middleware routing metadata (current host, hop trail,
            relay flags).  Not part of the application contract.
    """

    _ids = itertools.count(1)

    def __init__(self, name: str, payload: Optional[Dict[str, Any]] = None,
                 event_type: str = REQUEST, source: Optional[str] = None,
                 target: Optional[str] = None,
                 size_kb: Optional[float] = None):
        if event_type not in (REQUEST, REPLY):
            raise ValueError(f"event_type must be request/reply, got {event_type!r}")
        self.name = name
        self.payload: Dict[str, Any] = dict(payload) if payload else {}
        self.event_type = event_type
        self.source = source
        self.target = target
        self._size_kb = size_kb
        self.headers: Dict[str, Any] = {}
        self.event_id = next(Event._ids)

    # ------------------------------------------------------------------
    @property
    def is_admin(self) -> bool:
        return self.name.startswith(ADMIN_PREFIX)

    @property
    def size_kb(self) -> float:
        if self._size_kb is not None:
            return self._size_kb
        try:
            body = len(json.dumps(self.payload))
        except (TypeError, ValueError):
            body = 256  # conservative estimate for exotic payloads
        return EVENT_OVERHEAD_KB + body / 1024.0

    @size_kb.setter
    def size_kb(self, value: float) -> None:
        self._size_kb = value

    def reply(self, name: Optional[str] = None,
              payload: Optional[Dict[str, Any]] = None) -> "Event":
        """A reply event addressed back at this event's source."""
        return Event(name or self.name, payload, event_type=REPLY,
                     target=self.source)

    def copy(self) -> "Event":
        clone = Event(self.name, dict(self.payload), self.event_type,
                      self.source, self.target, self._size_kb)
        clone.headers = dict(self.headers)
        return clone

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        """Serialize for transmission between address spaces."""
        try:
            json.dumps(self.payload)
        except (TypeError, ValueError) as exc:
            raise SerializationError(
                f"event {self.name!r} payload is not JSON-serializable: {exc}"
            ) from exc
        return {
            "name": self.name,
            "payload": self.payload,
            "event_type": self.event_type,
            "source": self.source,
            "target": self.target,
            "size_kb": self._size_kb,
            "headers": self.headers,
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "Event":
        try:
            event = cls(
                name=wire["name"],
                payload=wire.get("payload") or {},
                event_type=wire.get("event_type", REQUEST),
                source=wire.get("source"),
                target=wire.get("target"),
                size_kb=wire.get("size_kb"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed wire event: {exc}") from exc
        event.headers = dict(wire.get("headers") or {})
        return event

    def __repr__(self) -> str:
        route = f"{self.source or '?'}->{self.target or '*'}"
        return f"Event({self.name!r}, {route}, {self.event_type})"
