"""Component serialization for live migration.

Prism-MW's Admin/Deployer components "are able to send and receive from any
device to which they are connected the events that contain application-level
components (sent between address spaces using the Serializable interface)"
(Section 4.2).  In this Python reproduction a component is serialized as

``{"class": <registered name>, "id": <component id>, "state": <dict>,``
``  "size_kb": <migration payload size>}``

where the class name is looked up in a process-wide registry (the moral
equivalent of the JVM's classpath: both sides must know the code; only
identity and state travel).  Components opt in by implementing
``get_state() -> dict`` / ``set_state(dict)``; stateless components inherit
the no-op defaults.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Type

from repro.core.errors import SerializationError

# Registered component classes, keyed by their public name.
_REGISTRY: Dict[str, Type] = {}


def register_component_class(cls: Type, name: str = None) -> Type:
    """Register *cls* for migration; usable as a decorator.

    The constructor must accept the component id as its only required
    argument (extra construction data belongs in the state dict).
    """
    key = name or cls.__name__
    existing = _REGISTRY.get(key)
    if existing is not None and existing is not cls:
        raise SerializationError(
            f"component class name {key!r} already registered to "
            f"{existing.__module__}.{existing.__qualname__}")
    _REGISTRY[key] = cls
    cls._serialization_name = key
    return cls


def registered_class(name: str) -> Type:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SerializationError(
            f"no component class registered as {name!r}; both address "
            "spaces must register migratable classes") from None


def is_registered(cls: Type) -> bool:
    return getattr(cls, "_serialization_name", None) in _REGISTRY


def serialize_component(component: Any) -> Dict[str, Any]:
    """Produce the wire form of *component* (identity + state, not code)."""
    name = getattr(type(component), "_serialization_name", None)
    if name is None or name not in _REGISTRY:
        raise SerializationError(
            f"component class {type(component).__name__} is not registered "
            "for migration; apply @register_component_class")
    state = component.get_state()
    try:
        # Round-trip through JSON: validates serializability and severs all
        # object sharing with the live component, exactly as a real wire
        # transfer would.
        state = json.loads(json.dumps(state))
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"component {component.id!r} state is not JSON-serializable: "
            f"{exc}") from exc
    return {
        "class": name,
        "id": component.id,
        "state": state,
        "size_kb": getattr(component, "migration_size_kb", 1.0),
    }


def deserialize_component(wire: Dict[str, Any]) -> Any:
    """Reconstitute a component from its wire form."""
    try:
        cls = registered_class(wire["class"])
        component = cls(wire["id"])
        component.set_state(wire.get("state") or {})
        component.migration_size_kb = wire.get("size_kb", 1.0)
    except SerializationError:
        raise
    except Exception as exc:  # constructor/state bugs surface as our error
        raise SerializationError(
            f"failed to reconstitute component {wire.get('id')!r}: {exc}"
        ) from exc
    return component


def clear_registry() -> None:
    """Testing hook: forget all registered classes."""
    _REGISTRY.clear()
