"""Meta-level components — Prism-MW's ExtensibleComponent, Admin, Deployer.

"ExtensibleComponent ... contains a reference to Architecture.  This allows
an instance of ExtensibleComponent to access all architectural elements in
its local configuration, acting as a meta-level component that can
automatically effect run-time changes to the system's architecture."
(Section 4.2)

``AdminComponent`` (one per host) gathers local monitoring data and executes
its host's share of a redeployment; ``DeployerComponent`` (one per system,
on the master host) aggregates monitoring reports and coordinates the
redeployment protocol of Section 4.3:

1. the Deployer "sends events to inform AdminComponents of their new local
   configurations, and of the remote locations of software components
   required for performing changes to each local configuration"
   (``admin.new_config``);
2. each Admin diffs its configuration and "issues a series of events to
   remote AdminComponents requesting the components that are to be deployed
   locally" (``admin.request_component``), relayed through the Deployer when
   the two hosts are not directly connected;
3. the owning Admin "detaches the required component(s) from its local
   configuration, serializes them, and sends them as a series of events"
   (``admin.component_transfer``), buffering application traffic for the
   in-flight component;
4. the recipient Admin "reconstitute[s] the migrant components from the
   received events and invoke[s] the appropriate methods on its Architecture
   object to attach the received components" and announces the new location
   (``admin.location_update``), which the Deployer rebroadcasts system-wide.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.core.errors import EffectorError, MigrationError
from repro.middleware.bricks import Architecture, Component, Connector
from repro.middleware.connectors import DistributionConnector
from repro.middleware.events import Event
from repro.middleware.monitors import EvtFrequencyMonitor, NetworkReliabilityMonitor
from repro.middleware.serialization import deserialize_component, serialize_component
from repro.obs import get_observability
from repro.sim.clock import SimClock


def admin_id(host: str) -> str:
    """Canonical component id of the AdminComponent on *host*."""
    return f"admin@{host}"


class ExtensibleComponent(Component):
    """A component holding a reference to its Architecture (meta-level)."""

    @property
    def local_architecture(self) -> Architecture:
        if self.architecture is None:
            raise EffectorError(f"{self.id}: not attached to an architecture")
        return self.architecture


class AdminComponent(ExtensibleComponent):
    """Per-host monitoring and redeployment agent (IAdmin's Admin impl).

    Admins are *not* welded into the application topology; their events
    route through the architecture's distribution connector.
    """

    #: Simulated seconds between transfer retransmissions while the
    #: receiver's acknowledging location update is outstanding.
    RETRANSMIT_INTERVAL = 2.0
    #: Retransmission attempts before an un-acked migrant is restored to
    #: its source host (the single-migration rollback that guarantees a
    #: component is never stranded in limbo by a lost transfer).
    MAX_RETRANSMITS = 5

    def __init__(self, component_id: str, host: str,
                 deployer_id: Optional[str] = None):
        super().__init__(component_id)
        self.host = host
        self.deployer_id = deployer_id
        self.frequency_monitor: Optional[EvtFrequencyMonitor] = None
        self.reliability_monitor: Optional[NetworkReliabilityMonitor] = None
        self._report_task = None
        #: Components we have requested and are waiting to receive.
        self.awaiting: Set[str] = set()
        #: (component, destination host) transfers we have sent out.
        self.transfers_out: List[Tuple[str, str]] = []
        self.transfers_in: List[str] = []
        #: Un-acknowledged outbound transfers: component id -> wire copy,
        #: destination, retransmit count, and the pending timer handle.
        #: The serialized copy is kept until the receiver's location update
        #: (the ack) arrives, so a transfer lost mid-flight can be re-sent
        #: — and receivers treat duplicate transfers idempotently.
        self.transfers_pending: Dict[str, Dict[str, Any]] = {}
        self.retransmissions = 0
        self.restores = 0
        self.reports_sent = 0
        obs = get_observability()
        self._c_retransmissions = obs.counter(
            "middleware.admin.retransmissions")
        self._c_restores = obs.counter("middleware.admin.restores")

    # ------------------------------------------------------------------
    @property
    def connector(self) -> DistributionConnector:
        dist = self.local_architecture.distribution_connector
        if dist is None:
            raise EffectorError(
                f"{self.id}: host {self.host} has no distribution connector")
        return dist  # type: ignore[return-value]

    def _app_connectors(self) -> Tuple[Connector, ...]:
        return tuple(
            c for c in self.local_architecture.connectors
            if not getattr(c, "is_distribution", False)
        )

    def _send_admin(self, target: str, name: str,
                    payload: Dict[str, Any],
                    size_kb: Optional[float] = None) -> None:
        event = Event(name, payload, source=self.id, target=target,
                      size_kb=size_kb)
        self.send(event)

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def install_monitors(self, clock: SimClock, ping_interval: float = 1.0,
                         pings_per_round: int = 5) -> None:
        """Attach frequency and reliability monitors to the local subsystem."""
        self.frequency_monitor = EvtFrequencyMonitor(clock)
        for component in self.local_architecture.components:
            if not isinstance(component, AdminComponent):
                component.attach_monitor(self.frequency_monitor)
        self.reliability_monitor = NetworkReliabilityMonitor(
            self.connector, clock, interval=ping_interval,
            pings_per_round=pings_per_round)
        self.connector.attach_monitor(self.reliability_monitor)
        self.reliability_monitor.start()

    def uninstall_monitors(self) -> None:
        if self.reliability_monitor is not None:
            self.reliability_monitor.stop()
            with contextlib.suppress(ValueError):
                self.connector.detach_monitor(self.reliability_monitor)
            self.reliability_monitor = None
        if self.frequency_monitor is not None:
            for component in self.local_architecture.components:
                if self.frequency_monitor in component.monitors:
                    component.detach_monitor(self.frequency_monitor)
            self.frequency_monitor = None

    def collect_report(self, reset: bool = True) -> Dict[str, Any]:
        """Local deployment description plus monitored data (§3.2: 'the
        AdminComponent sends the description of its local deployment
        architecture and the monitored data')."""
        report: Dict[str, Any] = {
            "host": self.host,
            "configuration": self.local_architecture.describe(),
        }
        if self.frequency_monitor is not None:
            data = self.frequency_monitor.collect()
            # JSON-friendly: tuple keys -> "src|dst" strings.
            report["evt_frequency"] = {
                f"{src}|{dst}": rate
                for (src, dst), rate in data["frequencies"].items()
            }
            report["evt_sizes"] = {
                f"{src}|{dst}": size
                for (src, dst), size in data["avg_sizes"].items()
            }
            if reset:
                self.frequency_monitor.reset()
        if self.reliability_monitor is not None:
            data = self.reliability_monitor.collect()
            report["reliability"] = dict(data["reliabilities"])
            if reset:
                self.reliability_monitor.reset()
        return report

    def start_reporting(self, clock: SimClock, interval: float) -> None:
        """Periodically push monitoring reports to the Deployer."""
        if self.deployer_id is None:
            raise EffectorError(f"{self.id}: no deployer to report to")
        self.stop_reporting()
        self._report_task = clock.every(interval, self.send_report)

    def stop_reporting(self) -> None:
        if self._report_task is not None:
            self._report_task.cancel()
            self._report_task = None

    def send_report(self) -> None:
        if self.deployer_id is None:
            return
        report = self.collect_report()
        self.reports_sent += 1
        self._send_admin(self.deployer_id, "admin.monitoring_report",
                         {"report": report})

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def handle(self, event: Event) -> None:
        if event.name == "admin.new_config":
            self._on_new_config(event)
        elif event.name == "admin.request_component":
            self._on_request_component(event)
        elif event.name == "admin.component_transfer":
            self._on_component_transfer(event)
        elif event.name == "admin.location_update":
            self._on_location_update(event)
        elif event.name == "admin.report_request":
            self.send_report()

    def _on_new_config(self, event: Event) -> None:
        wanted = set(event.payload.get("local") or [])
        sources: Dict[str, str] = dict(event.payload.get("sources") or {})
        present = set(self.local_architecture.component_ids)
        for component_id in sorted(wanted - present):
            source_host = sources.get(component_id)
            if source_host is None or source_host == self.host:
                continue
            self.awaiting.add(component_id)
            self._send_admin(
                admin_id(source_host), "admin.request_component",
                {"component": component_id, "requester_host": self.host})

    def _on_request_component(self, event: Event) -> None:
        component_id = event.payload["component"]
        requester_host = event.payload["requester_host"]
        if not self.local_architecture.has_component(component_id):
            return  # raced with another move; requester will be updated later
        # Destination became unreachable between request and transfer:
        # decline silently.  The component stays attached and running;
        # the requester's pending move times out at the Deployer.
        with contextlib.suppress(MigrationError):
            self.migrate_out(component_id, requester_host)

    def _destination_reachable(self, destination_host: str) -> bool:
        """Can a transfer reach *destination_host* right now (directly or
        through a relay)?"""
        if destination_host == self.host:
            return True
        neighbors = self.connector.network.neighbors(self.host)
        if destination_host in neighbors:
            return True
        return self.connector._pick_relay(destination_host,
                                          neighbors) is not None

    def migrate_out(self, component_id: str, destination_host: str) -> None:
        """Detach, serialize, and ship a local component.

        Reachability is verified *before* detaching: a component is never
        taken out of service for a transfer that cannot be delivered, so a
        partition can fail a redeployment but can never strand a component
        in limbo.
        """
        architecture = self.local_architecture
        component = architecture.component(component_id)
        if isinstance(component, AdminComponent):
            raise MigrationError("admin components cannot migrate")
        if not self._destination_reachable(destination_host):
            raise MigrationError(
                f"host {destination_host!r} is unreachable from "
                f"{self.host!r}; refusing to detach {component_id!r}")
        # Buffer application traffic addressed to the departing component.
        self.connector.begin_buffering(component_id)
        architecture.remove_component(component_id)
        wire = serialize_component(component)
        self.transfers_out.append((component_id, destination_host))
        self.transfers_pending[component_id] = {
            "wire": wire, "destination": destination_host,
            "retransmits": 0, "handle": None,
        }
        self._send_transfer(component_id)

    # -- transfer reliability (ack / retransmit / restore) ---------------
    @property
    def _clock(self) -> SimClock:
        return self.connector.network.clock

    def _send_transfer(self, component_id: str) -> None:
        pending = self.transfers_pending.get(component_id)
        if pending is None:
            return
        wire = pending["wire"]
        self._send_admin(
            admin_id(pending["destination"]), "admin.component_transfer",
            {"component": wire, "source_host": self.host},
            size_kb=wire["size_kb"])
        pending["handle"] = self._clock.schedule(
            self.RETRANSMIT_INTERVAL, self._check_transfer, component_id)

    def _check_transfer(self, component_id: str) -> None:
        pending = self.transfers_pending.get(component_id)
        if pending is None:
            return  # acknowledged in the meantime
        pending["retransmits"] += 1
        if pending["retransmits"] > self.MAX_RETRANSMITS:
            self._restore_local(component_id)
            return
        self.retransmissions += 1
        self._c_retransmissions.inc()
        self._send_transfer(component_id)

    def _restore_local(self, component_id: str) -> None:
        """Give up on an un-acked transfer: reconstitute the migrant here.

        This is the per-migration rollback path — the serialized copy kept
        in :attr:`transfers_pending` goes back into the local architecture,
        buffered traffic is flushed locally, and the restored location is
        announced so every location table (and the Deployer's pending-move
        ledger) reconverges on reality.
        """
        pending = self.transfers_pending.pop(component_id, None)
        if pending is None:
            return
        if pending["handle"] is not None:
            pending["handle"].cancel()
        architecture = self.local_architecture
        if not architecture.has_component(component_id):
            component = deserialize_component(pending["wire"])
            architecture.add_component(component)
            for connector in self._app_connectors():
                connector.weld(component)
            if self.frequency_monitor is not None:
                component.attach_monitor(self.frequency_monitor)
        self.restores += 1
        self._c_restores.inc()
        self.connector.end_buffering(component_id, self.host)
        self._announce_location(component_id, None)

    def cancel_transfers(self) -> int:
        """Abort every outstanding un-acked transfer, restoring the
        migrants locally; returns how many were restored.  Used by the
        effector before rolling back a failed plan."""
        count = 0
        for component_id in sorted(self.transfers_pending):
            self._restore_local(component_id)
            count += 1
        return count

    def _on_component_transfer(self, event: Event) -> None:
        wire = event.payload["component"]
        if self.local_architecture.has_component(wire["id"]):
            # Duplicate transfer (the source retransmitted because our
            # acknowledging location update was lost): discard the copy and
            # re-announce so the source gets its ack after all.
            self.connector.set_location(wire["id"], self.host)
            self._announce_location(wire["id"],
                                    event.payload.get("source_host"))
            return
        component = deserialize_component(wire)
        architecture = self.local_architecture
        architecture.add_component(component)
        # Weld the migrant into the local application topology.
        for connector in self._app_connectors():
            connector.weld(component)
        if self.frequency_monitor is not None:
            component.attach_monitor(self.frequency_monitor)
        self.awaiting.discard(component.id)
        self.transfers_in.append(component.id)
        self.connector.set_location(component.id, self.host)
        self._announce_location(component.id, event.payload.get("source_host"))

    def _announce_location(self, component_id: str,
                           source_host: Optional[str]) -> None:
        """Tell the previous owner (which flushes its buffered events) and
        the deployer (which rebroadcasts system-wide) where the migrant now
        lives."""
        announcement = {"component": component_id, "host": self.host}
        if source_host and source_host != self.host:
            self._send_admin(admin_id(source_host), "admin.location_update",
                             announcement)
        if self.deployer_id is not None \
                and self.deployer_id != admin_id(self.host) \
                and self.deployer_id != admin_id(source_host or ""):
            self._send_admin(self.deployer_id, "admin.location_update",
                             announcement)

    def _on_location_update(self, event: Event) -> None:
        component_id = event.payload["component"]
        new_host = event.payload["host"]
        # The receiver's announcement doubles as the transfer ack: stop
        # retransmitting and drop the kept serialized copy.
        pending = self.transfers_pending.get(component_id)
        if pending is not None and new_host == pending["destination"]:
            if pending["handle"] is not None:
                pending["handle"].cancel()
            del self.transfers_pending[component_id]
        # Duplicate resolution: an *authoritative* update naming another
        # host while we hold the component attached means our copy is the
        # stale one (a restore raced a late delivery) — drop it.  Only the
        # Deployer's word removes live components; a direct peer ack never
        # does, so a stale ack cannot strand the component nowhere.
        if (new_host != self.host
                and self._update_is_authoritative(event)
                and self.architecture is not None
                and self.local_architecture.has_component(component_id)
                and not component_id.startswith(("admin@", "agent@"))):
            self.local_architecture.remove_component(component_id)
        if component_id in self.connector.buffering:
            self.connector.end_buffering(component_id, new_host)
        else:
            self.connector.set_location(component_id, new_host)

    def _update_is_authoritative(self, event: Event) -> bool:
        if isinstance(self, DeployerComponent):
            return True
        return (self.deployer_id is not None
                and event.source == self.deployer_id)


class DeployerComponent(AdminComponent):
    """Master-host agent: aggregates monitoring, coordinates redeployment
    (IAdmin's Deployer impl, "which also provides facilities for interfacing
    with DeSi")."""

    def __init__(self, component_id: str, host: str):
        super().__init__(component_id, host, deployer_id=None)
        #: Latest monitoring report per host.
        self.reports: Dict[str, Dict[str, Any]] = {}
        #: Authoritative component -> host view.
        self.deployment_view: Dict[str, str] = {}
        #: All hosts known to carry an AdminComponent.
        self.known_hosts: Set[str] = set()
        #: Moves announced but not yet confirmed by a location update.
        self.pending_moves: Dict[str, str] = {}
        #: Callback invoked with (host, report) on every monitoring report —
        #: this is the hook DeSi's MiddlewareAdapter registers.
        self.on_report: Optional[Callable[[str, Dict[str, Any]], None]] = None
        #: Callback invoked when a redeployment fully completes.
        self.on_redeployment_complete: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    def register_host(self, host: str) -> None:
        self.known_hosts.add(host)

    def register_deployment(self, view: Mapping[str, str]) -> None:
        self.deployment_view.update(view)

    # ------------------------------------------------------------------
    def enact(self, target: Mapping[str, str]) -> int:
        """Drive the system toward the *target* deployment.

        Returns the number of component moves initiated.  Completion is
        asynchronous; observe :attr:`pending_moves` or
        :attr:`on_redeployment_complete`.
        """
        moves: Dict[str, List[str]] = {}
        sources: Dict[str, str] = {}
        for component_id, target_host in sorted(target.items()):
            current = self.deployment_view.get(component_id)
            if current is None or current == target_host:
                continue
            moves.setdefault(target_host, []).append(component_id)
            sources[component_id] = current
            self.pending_moves[component_id] = target_host
        for target_host in sorted(set(target.values()) | self.known_hosts):
            local = sorted(c for c, h in target.items() if h == target_host)
            if target_host == self.host:
                # Local share executes directly (no self-addressed events).
                self._acquire_locally(local, sources)
                continue
            self._send_admin(
                admin_id(target_host), "admin.new_config",
                {"local": local,
                 "sources": {c: sources[c] for c in local if c in sources}})
        return len(sources)

    def _acquire_locally(self, local: List[str],
                         sources: Mapping[str, str]) -> None:
        present = set(self.local_architecture.component_ids)
        for component_id in local:
            if component_id in present:
                continue
            source_host = sources.get(component_id)
            if source_host is None or source_host == self.host:
                continue
            self.awaiting.add(component_id)
            self._send_admin(
                admin_id(source_host), "admin.request_component",
                {"component": component_id, "requester_host": self.host})

    @property
    def redeployment_complete(self) -> bool:
        return not self.pending_moves

    # ------------------------------------------------------------------
    def handle(self, event: Event) -> None:
        if event.name == "admin.monitoring_report":
            report = event.payload["report"]
            host = report.get("host", "?")
            self.reports[host] = report
            for component_id in report.get("configuration", {}).get(
                    "components", []):
                if not component_id.startswith(("admin@", "agent@")):
                    self.deployment_view[component_id] = host
            if self.on_report is not None:
                self.on_report(host, report)
        elif event.name == "admin.location_update":
            self._on_deployer_location_update(event)
        else:
            super().handle(event)

    def _on_deployer_location_update(self, event: Event) -> None:
        self._register_move(
            event.payload["component"], event.payload["host"],
            origin_admin=event.source, payload=dict(event.payload))
        # Maintain our own connector's table/buffers too.
        super()._on_location_update(event)

    def _announce_location(self, component_id: str,
                           source_host: Optional[str]) -> None:
        """The deployer received a migrant itself: update the global view
        directly, tell the previous owner, and rebroadcast."""
        announcement = {"component": component_id, "host": self.host}
        if source_host and source_host != self.host:
            self._send_admin(admin_id(source_host), "admin.location_update",
                             announcement)
        self._register_move(component_id, self.host,
                            origin_admin=admin_id(source_host or ""),
                            payload=announcement)

    def _register_move(self, component_id: str, new_host: str,
                       origin_admin: Optional[str],
                       payload: Dict[str, Any]) -> None:
        previous = self.deployment_view.get(component_id)
        self.deployment_view[component_id] = new_host
        if self.pending_moves.get(component_id) == new_host:
            del self.pending_moves[component_id]
            if not self.pending_moves and self.on_redeployment_complete:
                self.on_redeployment_complete()
        # Rebroadcast so every host's location table converges.
        for host in sorted(self.known_hosts):
            if host == self.host or host == new_host:
                continue
            if origin_admin == admin_id(host):
                continue
            if previous is not None and host == previous:
                continue  # previous owner was told directly by the receiver
            self._send_admin(admin_id(host), "admin.location_update",
                             dict(payload))

    def snapshot_reports(self) -> Dict[str, Dict[str, Any]]:
        """Copy of the latest per-host monitoring reports (DeSi's view)."""
        return {host: dict(report) for host, report in self.reports.items()}
