"""Assembly of a complete distributed system over the middleware.

Figure 8 of the paper shows the shape this module builds: one Prism-MW
``Architecture`` per host, application components welded to a local
connector, a ``DistributionConnector`` per host tied into the network, an
``AdminComponent`` on every slave host, and the ``DeployerComponent`` on the
master host.

:class:`DistributedSystem` constructs that shape from a
:class:`~repro.core.model.DeploymentModel` and keeps the pieces addressable
for the framework layers above (monitoring, effecting, benches).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.errors import (
    EffectorError, MiddlewareError, MigrationTimeoutError, UnknownEntityError,
)
from repro.core.model import DeploymentModel
from repro.middleware.admin import AdminComponent, DeployerComponent, admin_id
from repro.middleware.bricks import Architecture, Component, Connector
from repro.middleware.connectors import DistributionConnector
from repro.middleware.events import Event
from repro.middleware.scaffold import SimScaffold
from repro.middleware.serialization import register_component_class
from repro.obs import Observability, get_observability, set_observability
from repro.sim.clock import SimClock
from repro.sim.network import SimulatedNetwork


@register_component_class
class AppComponent(Component):
    """Generic migratable application component.

    Sends ``app.msg`` events when the workload driver asks it to, counts
    what it receives, and carries its counters across migrations — the
    state round-trip is asserted by the migration tests.
    """

    def __init__(self, component_id: str):
        super().__init__(component_id)
        self.sent_count = 0
        self.received_count = 0

    def emit_to(self, target: str, size_kb: float) -> None:
        self.sent_count += 1
        self.send(Event("app.msg", {"seq": self.sent_count},
                        target=target, size_kb=size_kb))

    def handle(self, event: Event) -> None:
        if event.name == "app.msg":
            self.received_count += 1

    def get_state(self) -> Dict[str, Any]:
        return {"sent": self.sent_count, "received": self.received_count}

    def set_state(self, state: Dict[str, Any]) -> None:
        self.sent_count = state.get("sent", 0)
        self.received_count = state.get("received", 0)


ComponentFactory = Callable[[str], Component]


class DistributedSystem:
    """A running (simulated) distributed application plus its meta-layer.

    Args:
        model: Deployment model supplying hosts, links, components, and the
            initial deployment (which must be complete).
        clock: Simulation clock shared by every part of the substrate.
        network: Pre-built network; defaults to one mirroring the model.
        master_host: Host carrying the DeployerComponent; defaults to the
            first host id.
        component_factory: Builds the application component for each model
            component id; defaults to :class:`AppComponent`.
        decentralized: Build the Figure-3 shape instead: no master host, no
            DeployerComponent — every host gets a plain AdminComponent and
            events cannot fall back to a deployer relay.
    """

    def __init__(self, model: DeploymentModel, clock: SimClock,
                 network: Optional[SimulatedNetwork] = None,
                 master_host: Optional[str] = None,
                 component_factory: Optional[ComponentFactory] = None,
                 seed: Optional[int] = None,
                 decentralized: bool = False,
                 queue_when_disconnected: bool = False,
                 obs: Optional[Observability] = None):
        model.validate_deployment()
        self.model = model
        self.clock = clock
        self.decentralized = decentralized
        self.queue_when_disconnected = queue_when_disconnected
        self.obs = obs if obs is not None else get_observability()
        if self.obs.enabled:
            self.obs.bind_clock(clock)
        self.network = network if network is not None \
            else SimulatedNetwork.from_model(model, clock, seed=seed,
                                             obs=self.obs)
        if decentralized:
            if master_host is not None:
                raise MiddlewareError(
                    "a decentralized system has no master host")
            self.master_host = None
        else:
            self.master_host = master_host if master_host is not None \
                else model.host_ids[0]
            if self.master_host not in model.host_ids:
                raise UnknownEntityError("host", self.master_host)
        factory = component_factory if component_factory is not None \
            else AppComponent
        self.scaffold = SimScaffold(clock, obs=self.obs)
        self.architectures: Dict[str, Architecture] = {}
        self.admins: Dict[str, AdminComponent] = {}
        self.deployer: DeployerComponent = None  # set in _build
        self.emissions_skipped = 0
        #: component id -> last known host; every hit is re-validated
        #: against the architecture (components migrate), so the cache
        #: can only speed :meth:`locate` up, never make it lie.
        self._locate_cache: Dict[str, str] = {}
        # Admins (and any custom components) resolve their instruments from
        # the process default at construction; scope the injected bundle
        # over the build so injection reaches them too.
        previous = set_observability(self.obs) if self.obs.enabled else None
        try:
            self._build(factory)
        finally:
            if previous is not None:
                set_observability(previous)

    # ------------------------------------------------------------------
    def _build(self, factory: ComponentFactory) -> None:
        deployment = self.model.deployment
        deployer_admin_id = (admin_id(self.master_host)
                             if self.master_host is not None else None)
        for host in self.model.host_ids:
            architecture = Architecture(f"arch@{host}", self.scaffold)
            bus = Connector(f"bus@{host}")
            architecture.add_connector(bus)
            dist = DistributionConnector(
                f"dist@{host}", self.network, host,
                deployer_host=self.master_host,
                queue_when_disconnected=self.queue_when_disconnected,
                obs=self.obs)
            architecture.add_connector(dist)
            if host == self.master_host:
                agent: AdminComponent = DeployerComponent(
                    deployer_admin_id, host)
                self.deployer = agent  # type: ignore[assignment]
            else:
                agent = AdminComponent(admin_id(host), host,
                                       deployer_id=deployer_admin_id)
            architecture.add_component(agent)
            self.architectures[host] = architecture
            self.admins[host] = agent
        if self.deployer is None and not self.decentralized:
            raise MiddlewareError("no deployer was created")
        # Application components go to their deployed hosts.
        for component_id, host in sorted(deployment.items()):
            component = factory(component_id)
            component.migration_size_kb = max(
                self.model.component(component_id).memory, 0.1)
            architecture = self.architectures[host]
            architecture.add_component(component)
            architecture.connector(f"bus@{host}").weld(component)
        # Location tables: every host knows where everything starts, and
        # where every admin lives (admins never move).
        admin_locations = {admin_id(h): h for h in self.model.host_ids}
        for host in self.model.host_ids:
            dist = self.architectures[host].distribution_connector
            dist.update_locations(dict(deployment))
            dist.update_locations(admin_locations)
        if self.deployer is not None:
            self.deployer.register_deployment(deployment)
            for host in self.model.host_ids:
                self.deployer.register_host(host)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def architecture(self, host: str) -> Architecture:
        try:
            return self.architectures[host]
        except KeyError:
            raise UnknownEntityError("host", host) from None

    def admin(self, host: str) -> AdminComponent:
        try:
            return self.admins[host]
        except KeyError:
            raise UnknownEntityError("host", host) from None

    def component(self, component_id: str) -> Component:
        host = self.locate(component_id)
        return self.architectures[host].component(component_id)

    def locate(self, component_id: str) -> str:
        cached = self._locate_cache.get(component_id)
        if cached is not None \
                and self.architectures[cached].has_component(component_id):
            return cached
        for host, architecture in self.architectures.items():
            if architecture.has_component(component_id):
                self._locate_cache[component_id] = host
                return host
        self._locate_cache.pop(component_id, None)
        raise UnknownEntityError("component", component_id)

    def actual_deployment(self) -> Dict[str, str]:
        """Ground-truth component placement by inspecting architectures."""
        placement: Dict[str, str] = {}
        for host, architecture in self.architectures.items():
            for component_id in architecture.component_ids:
                if not component_id.startswith(("admin@", "agent@")):
                    placement[component_id] = host
        return placement

    # ------------------------------------------------------------------
    # Monitoring management
    # ------------------------------------------------------------------
    def install_monitoring(self, ping_interval: float = 1.0,
                           pings_per_round: int = 5,
                           report_interval: Optional[float] = None) -> None:
        """Attach monitors on every host; optionally start periodic
        reporting to the Deployer."""
        for host in self.model.host_ids:
            admin = self.admins[host]
            admin.install_monitors(self.clock, ping_interval, pings_per_round)
            if report_interval is not None and admin.deployer_id is not None:
                admin.start_reporting(self.clock, report_interval)

    def uninstall_monitoring(self) -> None:
        for admin in self.admins.values():
            admin.stop_reporting()
            admin.uninstall_monitors()

    # ------------------------------------------------------------------
    # Application traffic
    # ------------------------------------------------------------------
    def emit(self, source: str, target: str, size_kb: float) -> None:
        """Workload hook: make component *source* send to *target*.

        A component that is mid-migration (detached from its old host, not
        yet reconstituted on the new one) is not executing anywhere, so its
        scheduled sends simply do not happen; they are counted in
        :attr:`emissions_skipped`.
        """
        try:
            host = self.locate(source)
        except UnknownEntityError:
            self.emissions_skipped += 1
            return
        component = self.architectures[host].component(source)
        if not isinstance(component, AppComponent):
            raise MiddlewareError(
                f"component {source!r} is not an AppComponent")
        component.emit_to(target, size_kb)

    # ------------------------------------------------------------------
    # Redeployment
    # ------------------------------------------------------------------
    def redeploy(self, target: Mapping[str, str],
                 max_wait: float = 1000.0) -> Dict[str, Any]:
        """Enact *target* and run the clock until the migration completes.

        Returns effecting statistics (moves, simulated duration, network
        bytes attributable to migration).  Raises
        :class:`~repro.core.errors.EffectorError` when the redeployment does
        not converge within *max_wait* simulated seconds (e.g. a partition
        with no relay path).
        """
        if self.deployer is None:
            raise EffectorError(
                "decentralized systems have no deployer; migrations are "
                "initiated per-host via AdminComponent.migrate_out")
        start_time = self.clock.now
        kb_before = self.network.stats.kb_sent
        initiated = self.deployer.enact(target)
        deadline = start_time + max_wait
        # pending_moves is a plain dict mutated in place by the deployer's
        # ack handlers, so capturing the object keeps the stop condition
        # to two truthiness checks; run_while_pending inlines both the
        # condition and the per-event dispatch the seed paid a step()
        # call (plus attribute chain) for.  The stop point is identical.
        pending = self.deployer.pending_moves
        clock = self.clock
        runner = getattr(clock, "run_while_pending", None)
        if runner is not None:
            runner(pending, deadline)
        else:  # duck-typed clocks (tests): the seed loop
            while pending and clock.now < deadline:
                if not clock.step():
                    break
        duration = self.clock.now - start_time
        if self.deployer.pending_moves:
            raise MigrationTimeoutError(
                f"redeployment did not converge within {max_wait:g} s: "
                f"pending {dict(self.deployer.pending_moves)}",
                pending=self.deployer.pending_moves)
        # Let location-update rebroadcasts settle too.
        self.scaffold.drain()
        actual = self.actual_deployment()
        for component_id, host in target.items():
            if actual.get(component_id) != host:
                raise EffectorError(
                    f"component {component_id!r} ended on "
                    f"{actual.get(component_id)!r}, wanted {host!r}")
        # Reflect the effected deployment in the model.
        for component_id, host in actual.items():
            if self.model.has_component(component_id):
                self.model.deploy(component_id, host)
        return {
            "moves": initiated,
            "sim_duration": duration,
            "kb_transferred": self.network.stats.kb_sent - kb_before,
        }

    def reset_redeployment(self, settle: float = 5.0) -> int:
        """Abandon an in-progress (failed) redeployment.

        Cancels every admin's un-acked transfers — restoring the migrants
        to their source hosts — lets control traffic settle for *settle*
        simulated seconds, then re-syncs the deployer's authoritative view
        and pending-move ledger to ground truth.  Returns the number of
        restored components.  This is the precondition for the effector's
        transactional rollback: after it, :meth:`actual_deployment` is a
        complete mapping again (no component is in limbo).
        """
        restored = 0
        for admin in self.admins.values():
            restored += admin.cancel_transfers()
            admin.awaiting.clear()
        self.scaffold.drain()
        if settle > 0:
            self.clock.run(settle)
            self.scaffold.drain()
        if self.deployer is not None:
            self.deployer.pending_moves.clear()
            self.deployer.register_deployment(self.actual_deployment())
        return restored

    def __repr__(self) -> str:
        return (f"DistributedSystem(hosts={len(self.architectures)}, "
                f"master={self.master_host!r})")
