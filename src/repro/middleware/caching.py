"""Caching and hoarding of data — the other §6 redeployment-complement.

"in the future we plan to extend our framework and tool suite to enhance
redeployment with other strategies (e.g., caching and hoarding of data,
queuing of remote calls, etc.)"

Queuing lives on the :class:`~repro.middleware.connectors.DistributionConnector`
(``queue_when_disconnected``); this module adds the caching half for
request/reply interactions:

* a :class:`DataProviderComponent` answers ``app.request`` events keyed by
  ``payload["key"]`` with ``app.reply`` events carrying the data;
* a :class:`CachedReplyService` on each host *hoards* every reply that
  passes through its distribution connector, and when a request's
  destination becomes unreachable, serves the hoarded copy locally —
  marked ``stale`` so the application can tell live data from cached.

The net effect mirrors Coda-style disconnected operation (the paper's [14]
companion line of work): reads keep succeeding through partitions at the
price of staleness, while writes/queued traffic wait for reconnection.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.middleware.bricks import Architecture, Component
from repro.middleware.connectors import DistributionConnector
from repro.middleware.events import REPLY, Event
from repro.middleware.serialization import register_component_class

REQUEST_EVENT = "app.request"
REPLY_EVENT = "app.reply"


@register_component_class
class DataProviderComponent(Component):
    """Serves keyed data items in reply to ``app.request`` events."""

    def __init__(self, component_id: str):
        super().__init__(component_id)
        self.data: Dict[str, Any] = {}
        self.requests_served = 0

    def put(self, key: str, value: Any) -> None:
        self.data[key] = value

    def handle(self, event: Event) -> None:
        if event.name != REQUEST_EVENT:
            return
        key = event.payload.get("key")
        if key is None or event.source is None:
            return
        self.requests_served += 1
        self.send(Event(
            REPLY_EVENT,
            {"key": key, "data": self.data.get(key),
             "provider": self.id, "stale": False},
            event_type=REPLY, target=event.source))

    def get_state(self) -> Dict[str, Any]:
        return {"data": self.data, "served": self.requests_served}

    def set_state(self, state: Dict[str, Any]) -> None:
        self.data = dict(state.get("data") or {})
        self.requests_served = state.get("served", 0)


class CachedReplyService:
    """Per-host reply hoard + stale-serving fallback.

    Attach one per host; it registers itself both as a monitor on the
    distribution connector (to hoard replies flowing through) and as an
    unreachable-handler (to answer requests during partitions).

    Args:
        architecture: The host's architecture (stale replies are delivered
            through it).
        connector: The host's distribution connector.
        max_entries: LRU capacity of the hoard.
    """

    def __init__(self, architecture: Architecture,
                 connector: DistributionConnector, max_entries: int = 256):
        self.architecture = architecture
        self.connector = connector
        self.max_entries = max_entries
        self._hoard: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        connector.attach_monitor(self)
        connector.unreachable_handlers.append(self._serve_from_hoard)

    # -- hoarding (IMonitor protocol) -----------------------------------------
    def notify(self, brick: Any, event: Event, direction: str) -> None:
        if event.name != REPLY_EVENT:
            return
        key = event.payload.get("key")
        if key is None or event.payload.get("data") is None:
            return
        if event.payload.get("stale"):
            return  # never hoard a cached copy of a cached copy
        self._hoard[key] = dict(event.payload)
        self._hoard.move_to_end(key)
        while len(self._hoard) > self.max_entries:
            self._hoard.popitem(last=False)

    def collect(self) -> Dict[str, Any]:
        return {"kind": "reply_cache", "entries": len(self._hoard),
                "hits": self.hits, "misses": self.misses}

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    # -- stale serving ----------------------------------------------------------
    def _serve_from_hoard(self, destination: str, event: Event) -> bool:
        """Unreachable-destination hook: answer requests from the hoard."""
        if event.name != REQUEST_EVENT:
            return False
        key = event.payload.get("key")
        requester = event.source
        if key is None or requester is None:
            return False
        cached = self._hoard.get(key)
        if cached is None:
            self.misses += 1
            return False
        self.hits += 1
        reply = Event(REPLY_EVENT, {**cached, "stale": True},
                      event_type=REPLY, target=requester)
        if self.architecture.has_component(requester):
            self.architecture.deliver_local(reply)
        else:
            self.architecture.route(reply)
        return True

    def hoarded_keys(self) -> Tuple[str, ...]:
        return tuple(self._hoard)

    def __repr__(self) -> str:
        return (f"CachedReplyService(host={self.connector.host!r}, "
                f"entries={len(self._hoard)})")


def install_reply_caches(system: Any,
                         max_entries: int = 256,
                         ) -> Dict[str, CachedReplyService]:
    """Attach a :class:`CachedReplyService` to every host of a
    :class:`~repro.middleware.runtime.DistributedSystem`."""
    services = {}
    for host, architecture in system.architectures.items():
        services[host] = CachedReplyService(
            architecture, architecture.distribution_connector,
            max_entries=max_entries)
    return services
