"""Cross-address-space routing — Prism-MW's DistributionConnector.

"A distributed application is implemented as a set of interacting
Architecture objects, communicating via DistributionConnectors across
process or machine boundaries." (Section 4.2)

A :class:`DistributionConnector` binds its architecture to one endpoint of
the :class:`~repro.sim.network.SimulatedNetwork`.  It keeps a *location
table* mapping component ids to host addresses — the middleware's knowledge
of the current deployment — and serializes events onto the network when
their target is not local.  The table is maintained by the Admin/Deployer
components as migrations happen.

Routing policy (single-hop network, as in the deployment model):

* target local → deliver locally;
* target's host directly linked → send over that link;
* otherwise → relay via the deployer host, realizing "if devices that need
  to exchange components are not directly connected, the relevant request
  events are sent to the DeployerComponent, which then mediates their
  interaction" (Section 4.3).

Control traffic (``admin.*`` events) rides a retransmitting transport
(``reliable=True``); application events take their chances against the
link's reliability, which is exactly what the availability objective scores.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.errors import MiddlewareError
from repro.middleware.bricks import Connector
from repro.middleware.events import Event
from repro.obs import Observability, get_observability
from repro.sim.network import SimulatedNetwork


class DistributionConnector(Connector):
    """Connector spanning architectures through the simulated network."""

    is_distribution = True

    def __init__(self, connector_id: str, network: SimulatedNetwork,
                 host: str, deployer_host: Optional[str] = None,
                 queue_when_disconnected: bool = False,
                 offline_queue_limit: int = 1000,
                 obs: Optional[Observability] = None):
        super().__init__(connector_id)
        obs = obs if obs is not None else get_observability()
        self._c_sent = obs.counter("middleware.connector.sent_remote")
        self._c_received = obs.counter(
            "middleware.connector.received_remote")
        self._c_relayed = obs.counter("middleware.connector.relayed")
        self._c_flushed = obs.counter(
            "middleware.connector.offline_flushed")
        self._c_undeliverable = obs.counter(
            "middleware.connector.undeliverable")
        self._g_offline = obs.gauge("middleware.connector.offline_queue")
        self.network = network
        self.host = host
        self.deployer_host = deployer_host
        #: Section 6 future work, implemented: "queuing of remote calls".
        #: When enabled, events that cannot currently reach their
        #: destination are held in an outbox and retransmitted when a link
        #: comes (back) up, instead of being dropped as undeliverable.
        self.queue_when_disconnected = queue_when_disconnected
        self.offline_queue_limit = offline_queue_limit
        #: Ship adjacent same-destination events as one framed batch when
        #: flushing (migration release, offline-queue retry).  Kill switch
        #: for the determinism property tests, which compare both modes.
        self.coalesce = True
        #: (destination, event) pairs awaiting connectivity.
        self.offline_queue: list = []
        self.offline_flushed = 0
        #: Callables consulted (in order) when a destination is unreachable;
        #: the first to return True takes ownership of the event.  This is
        #: the hook the §6 caching/hoarding service plugs into.
        self.unreachable_handlers: list = []
        #: Per-destination sequence counters stamped on loss-subject
        #: (application) events so receivers can infer losses from gaps.
        self._seq_out: Dict[str, int] = {}
        if queue_when_disconnected:
            network.observers.append(self._on_network_event)
        #: component id -> host address; the connector's deployment view.
        self.locations: Dict[str, str] = {}
        #: Events held back for components currently migrating away from
        #: this host (Section 3.1, Effector: "buffering, hoarding, or
        #: relaying of the exchanged events during component redeployment").
        self.buffering: Dict[str, list] = {}
        #: Events that could not be routed off-host.
        self.undeliverable: list = []
        self.sent_remote = 0
        self.received_remote = 0
        self.relayed = 0
        network.attach_handler(host, self._on_network_receive)

    # ------------------------------------------------------------------
    # Location table
    # ------------------------------------------------------------------
    def set_location(self, component_id: str, host: str) -> None:
        self.locations[component_id] = host

    def forget_location(self, component_id: str) -> None:
        self.locations.pop(component_id, None)

    def update_locations(self, mapping: Dict[str, str]) -> None:
        self.locations.update(mapping)

    def lookup(self, component_id: str) -> Optional[str]:
        if (self.architecture is not None
                and self.architecture.has_component(component_id)):
            return self.host
        return self.locations.get(component_id)

    # ------------------------------------------------------------------
    # Migration buffering
    # ------------------------------------------------------------------
    def begin_buffering(self, component_id: str) -> None:
        """Hold events for *component_id* until its new location is known."""
        self.buffering.setdefault(component_id, [])

    def end_buffering(self, component_id: str, new_host: str) -> None:
        """Release buffered events toward the component's new home."""
        held = self.buffering.pop(component_id, [])
        self.set_location(component_id, new_host)
        if new_host == self.host:
            for event in held:
                self.architecture.deliver_local(event)
        elif held:
            self._transmit_many(new_host, held)

    def _maybe_buffer(self, event: Event) -> bool:
        if event.target is not None and event.target in self.buffering:
            self.buffering[event.target].append(event)
            return True
        return False

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------
    def handle(self, event: Event) -> None:
        """Route an event that reached the distribution connector."""
        if event.target is None:
            raise MiddlewareError(
                "distribution connector cannot broadcast untargeted events")
        if (self.architecture is not None
                and self.architecture.has_component(event.target)):
            self.architecture.deliver_local(event)
            return
        if self._maybe_buffer(event):
            return
        self._send_remote(event)

    def _send_remote(self, event: Event) -> None:
        destination = self.lookup(event.target)
        if destination is None or destination == self.host:
            # Unknown location (or stale self-reference): fall back to the
            # deployer host, which has the authoritative view.
            destination = self.deployer_host
        if destination is None or destination == self.host:
            self.undeliverable.append(event)
            self._c_undeliverable.inc()
            return
        self._transmit(destination, event)

    #: Maximum relay hops before an event is dropped (routing-loop guard).
    MAX_RELAY_HOPS = 8

    def _transmit(self, destination: str, event: Event) -> None:
        """Put *event* on the wire toward *destination*, relaying if the
        direct link is absent or down.

        Relay preference order: the deployer host (the paper's mediated
        path, §4.3), then any mutual neighbor of us and the destination
        (deterministically the lexicographically first).  Each relay hop
        decrements a TTL so partitioned or miswired systems dead-letter
        instead of looping.
        """
        my_neighbors = self.network.neighbors(self.host)
        if destination not in my_neighbors:
            relay = self._pick_relay(destination, my_neighbors)
            if relay is None:
                self._fail_or_queue(destination, event)
                return
            ttl = event.headers.get("ttl", self.MAX_RELAY_HOPS)
            if ttl <= 0:
                self.undeliverable.append(event)
                self._c_undeliverable.inc()
                return
            event.headers["ttl"] = ttl - 1
            event.headers["relay_to"] = destination
            destination = relay
        event.headers.setdefault("origin_host", self.host)
        if not event.is_admin and "seq" not in event.headers:
            # Sequence application events per direct destination: the
            # receiving monitor infers losses from sequence gaps (an
            # unbiased passive reliability estimate; see
            # NetworkReliabilityMonitor.notify).
            seq = self._seq_out.get(destination, 0) + 1
            self._seq_out[destination] = seq
            event.headers["seq"] = seq
            event.headers["seq_link"] = self.host
        wire = event.to_wire()
        self.sent_remote += 1
        self._c_sent.inc()
        self.network.send(self.host, destination, wire,
                          size_kb=event.size_kb,
                          reliable=event.is_admin)

    def _transmit_many(self, destination: str, events: list) -> None:
        """Transmit an adjacent run of events toward one destination,
        coalescing the direct-link case into framed network batches.

        Exactly equivalent to calling :meth:`_transmit` per event in
        order: headers (origin, per-destination seq) are stamped per
        event before its wire frame joins the batch, loss trials consume
        the seeded RNG stream in the same order inside
        :meth:`~repro.sim.network.SimulatedNetwork.send_many`, and runs
        are broken wherever the transport differs (admin events ride the
        reliable transport, application events do not).  Relay and
        unreachable cases fall back to the per-event path — only the
        direct-neighbor fast path is coalesced, and within one simulated
        instant the neighbor set cannot change under us (nothing in the
        batched path runs user callbacks).
        """
        if not self.coalesce or len(events) < 2 \
                or destination not in self.network.neighbors(self.host):
            for event in events:
                self._transmit(destination, event)
            return
        send_many = self.network.send_many
        run: list = []          # (wire, size_kb) frames for one transport
        run_reliable = False
        for event in events:
            event.headers.setdefault("origin_host", self.host)
            if not event.is_admin and "seq" not in event.headers:
                seq = self._seq_out.get(destination, 0) + 1
                self._seq_out[destination] = seq
                event.headers["seq"] = seq
                event.headers["seq_link"] = self.host
            reliable = event.is_admin
            if run and reliable != run_reliable:
                send_many(self.host, destination, run,
                          reliable=run_reliable)
                run = []
            run_reliable = reliable
            run.append((event.to_wire(), event.size_kb))
            self.sent_remote += 1
            self._c_sent.inc()
        if run:
            send_many(self.host, destination, run, reliable=run_reliable)

    def _fail_or_queue(self, destination: str, event: Event) -> None:
        """Destination unreachable right now: let a registered handler take
        the event (e.g. a cached-reply service), else queue (if enabled),
        else fail."""
        for handler in self.unreachable_handlers:
            if handler(destination, event):
                return
        if self.queue_when_disconnected \
                and len(self.offline_queue) < self.offline_queue_limit:
            self.offline_queue.append((destination, event))
            self._g_offline.set(len(self.offline_queue))
        else:
            self.undeliverable.append(event)
            self._c_undeliverable.inc()

    def _on_network_event(self, name: str, payload: Any) -> None:
        """A link came up: retry everything waiting for connectivity.

        Adjacent queue entries bound for the same now-reachable direct
        neighbor flush as one coalesced run (they cannot re-queue, so
        they all count as flushed); everything else takes the per-event
        path with its requeue/undeliverable accounting.
        """
        if name != "link_up" or not self.offline_queue:
            return
        pending = self.offline_queue
        self.offline_queue = []
        index = 0
        total = len(pending)
        while index < total:
            destination, event = pending[index]
            if self.coalesce \
                    and destination in self.network.neighbors(self.host):
                run = [event]
                index += 1
                while index < total and pending[index][0] == destination:
                    run.append(pending[index][1])
                    index += 1
                self._transmit_many(destination, run)
                self.offline_flushed += len(run)
                self._c_flushed.inc(len(run))
                continue
            before = len(self.offline_queue) + len(self.undeliverable)
            self._transmit(destination, event)
            after = len(self.offline_queue) + len(self.undeliverable)
            if after == before:
                self.offline_flushed += 1
                self._c_flushed.inc()
            index += 1
        self._g_offline.set(len(self.offline_queue))

    def _pick_relay(self, destination: str,
                    my_neighbors: Tuple[str, ...]) -> Optional[str]:
        deployer = self.deployer_host
        if deployer is not None and deployer != self.host \
                and deployer != destination and deployer in my_neighbors:
            return deployer
        mutual = sorted(set(my_neighbors)
                        & set(self.network.neighbors(destination)))
        return mutual[0] if mutual else None

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    def _on_network_receive(self, source: str, payload: Any,
                            size_kb: float) -> None:
        event = Event.from_wire(payload)
        self.received_remote += 1
        self._c_received.inc()
        event.headers["arrived_from"] = source
        # Network arrivals bypass the scaffold, so probe the monitors here
        # (reliability piggyback, reply hoarding) before routing.
        self.notify_monitors(event, "deliver")
        relay_to = event.headers.pop("relay_to", None)
        if relay_to is not None and relay_to != self.host:
            # We are the mediator: pass it along toward the true target.
            self.relayed += 1
            self._c_relayed.inc()
            self._transmit(relay_to, event)
            return
        if (self.architecture is not None and event.target is not None
                and self.architecture.has_component(event.target)):
            self.architecture.deliver_local(event)
            return
        if self._maybe_buffer(event):
            return
        # Target is not here.  If we know where it lives now (it may have
        # migrated), forward; otherwise dead-letter it.
        if event.target is not None:
            known = self.locations.get(event.target)
            if known is not None and known != self.host \
                    and event.headers.get("forwarded") is None:
                event.headers["forwarded"] = self.host
                self._transmit(known, event)
                return
        self.undeliverable.append(event)
        self._c_undeliverable.inc()

    # ------------------------------------------------------------------
    def neighbors(self) -> Tuple[str, ...]:
        """Hosts currently reachable over a direct, up link."""
        return self.network.neighbors(self.host)

    def __repr__(self) -> str:
        return (f"DistributionConnector({self.id!r}, host={self.host!r}, "
                f"known={len(self.locations)})")
