"""Prism-MW reimplementation: the paper's implementation platform.

Class model after Figure 5: :class:`Brick` and its subclasses
(:class:`Architecture`, :class:`Component`, :class:`Connector`), events
routed by connectors and dispatched by pluggable :class:`Scaffold`
implementations, :class:`DistributionConnector` spanning address spaces,
``IMonitor`` probes (:class:`EvtFrequencyMonitor`,
:class:`NetworkReliabilityMonitor`), and the meta-level
:class:`ExtensibleComponent` / :class:`AdminComponent` /
:class:`DeployerComponent` supporting monitoring and live redeployment.

:class:`DistributedSystem` assembles the whole Figure-8 shape from a
deployment model.
"""

from repro.middleware.admin import (
    AdminComponent, DeployerComponent, ExtensibleComponent, admin_id,
)
from repro.middleware.bricks import (
    Architecture, Brick, CallbackComponent, Component, Connector,
)
from repro.middleware.caching import (
    CachedReplyService, DataProviderComponent, install_reply_caches,
)
from repro.middleware.connectors import DistributionConnector
from repro.middleware.events import ADMIN_PREFIX, REPLY, REQUEST, Event
from repro.middleware.monitors import (
    EvtFrequencyMonitor, IMonitor, NetworkReliabilityMonitor,
)
from repro.middleware.runtime import (
    AppComponent, ComponentFactory, DistributedSystem,
)
from repro.middleware.scaffold import (
    ImmediateScaffold, Scaffold, SimScaffold, ThreadPoolScaffold,
)
from repro.middleware.serialization import (
    deserialize_component, register_component_class, serialize_component,
)

__all__ = [
    "ADMIN_PREFIX",
    "AdminComponent",
    "AppComponent",
    "Architecture",
    "Brick",
    "CachedReplyService",
    "CallbackComponent",
    "Component",
    "DataProviderComponent",
    "install_reply_caches",
    "ComponentFactory",
    "Connector",
    "DeployerComponent",
    "DistributedSystem",
    "DistributionConnector",
    "Event",
    "EvtFrequencyMonitor",
    "ExtensibleComponent",
    "IMonitor",
    "ImmediateScaffold",
    "NetworkReliabilityMonitor",
    "REPLY",
    "REQUEST",
    "Scaffold",
    "SimScaffold",
    "ThreadPoolScaffold",
    "admin_id",
    "deserialize_component",
    "register_component_class",
    "serialize_component",
]
