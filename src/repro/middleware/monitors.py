"""Platform-dependent monitors — Prism-MW's IMonitor implementations.

"For example, the EvtFrequencyMonitor records the frequencies of different
events the associated Brick sends, while NetworkReliabilityMonitor records
the reliability of connectivity between its associated DistributionConnector
and other, remote DistributionConnectors using a common 'pinging'
technique." (Section 4.3)

These are the *platform-dependent halves* of the framework's Monitor
component (Section 3.1): they hook into the implementation platform (brick
dispatch and the simulated network) and produce raw samples.  The
platform-independent half — windowing, ε-stability detection, writing into
the deployment model — lives in :mod:`repro.core.monitoring`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Optional, Tuple

from repro.middleware.connectors import DistributionConnector
from repro.middleware.events import Event
from repro.sim.clock import SimClock


class IMonitor(ABC):
    """Probe attached to a Brick via the scaffold's self-awareness hook."""

    @abstractmethod
    def notify(self, brick: Any, event: Event, direction: str) -> None:
        """Called on every event the brick sends ("send") or receives
        ("deliver")."""

    @abstractmethod
    def collect(self) -> Dict[str, Any]:
        """Return accumulated raw monitoring data."""

    @abstractmethod
    def reset(self) -> None:
        """Clear accumulated data (start of a new monitoring window)."""

    def attached(self, brick: Any) -> None:
        """Hook invoked when the monitor is attached to a brick."""


class EvtFrequencyMonitor(IMonitor):
    """Counts application events per (source, target) component pair.

    Only ``send`` notifications are counted (counting both directions of a
    dispatch would double every interaction), and middleware control traffic
    (``admin.*``) is excluded — the model's logical-link frequencies describe
    the *application*.
    """

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock
        #: (source, target) -> ``[event count, summed size_kb]``.  One
        #: accumulator dict — notify() runs once per application send, so
        #: a single lookup replaces parallel counts/sizes bookkeeping.
        self._acc: Dict[Tuple[str, str], list] = {}
        self.window_started = clock.now if clock is not None else 0.0
        self.total_events = 0

    @property
    def counts(self) -> Dict[Tuple[str, str], int]:
        return {key: acc[0] for key, acc in self._acc.items()}

    @property
    def sizes(self) -> Dict[Tuple[str, str], float]:
        return {key: acc[1] for key, acc in self._acc.items()}

    def notify(self, brick: Any, event: Event, direction: str) -> None:
        if direction != "send" or event.is_admin:
            return
        source = event.source
        target = event.target
        if source is None or target is None:
            return
        acc = self._acc.get((source, target))
        if acc is None:
            self._acc[(source, target)] = [1, event.size_kb]
        else:
            acc[0] += 1
            acc[1] += event.size_kb
        self.total_events += 1

    def collect(self) -> Dict[str, Any]:
        now = self.clock.now if self.clock is not None else None
        duration = (None if now is None
                    else max(now - self.window_started, 0.0))
        counts: Dict[Tuple[str, str], int] = {}
        frequencies: Dict[Tuple[str, str], float] = {}
        avg_sizes: Dict[Tuple[str, str], float] = {}
        for key, (count, size_sum) in self._acc.items():
            counts[key] = count
            if duration:
                frequencies[key] = count / duration
            avg_sizes[key] = size_sum / count
        return {
            "kind": "evt_frequency",
            "window_start": self.window_started,
            "window_end": now,
            "counts": counts,
            "frequencies": frequencies,
            "avg_sizes": avg_sizes,
        }

    def reset(self) -> None:
        self._acc.clear()
        self.total_events = 0
        if self.clock is not None:
            self.window_started = self.clock.now


class NetworkReliabilityMonitor(IMonitor):
    """Estimates link reliability by periodically pinging peer hosts.

    Attached to a :class:`DistributionConnector`; every ``interval``
    simulated seconds it sends ``pings_per_round`` probes to each host with
    which its host shares a physical link (up or down — a down link simply
    fails all probes, measuring reliability 0).
    """

    def __init__(self, connector: DistributionConnector, clock: SimClock,
                 interval: float = 1.0, pings_per_round: int = 10):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if pings_per_round < 1:
            raise ValueError("pings_per_round must be >= 1")
        self.connector = connector
        self.clock = clock
        self.interval = interval
        self.pings_per_round = pings_per_round
        self.successes: Dict[str, int] = {}
        self.attempts: Dict[str, int] = {}
        #: Last piggyback sequence number seen per directly-linked peer.
        self._last_seq: Dict[str, int] = {}
        self.rounds = 0
        self._task = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "NetworkReliabilityMonitor":
        if self._task is None:
            self._task = self.clock.every(self.interval, self.probe)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _peers(self) -> Tuple[str, ...]:
        host = self.connector.host
        peers = set()
        for link in self.connector.network.links:
            if host in link.ends:
                other = link.ends[0] if link.ends[1] == host else link.ends[1]
                peers.add(other)
        return tuple(sorted(peers))

    def probe(self) -> None:
        """One round of pings to every linked peer."""
        host = self.connector.host
        for peer in self._peers():
            for __ in range(self.pings_per_round):
                ok = self.connector.network.ping(host, peer)
                self.attempts[peer] = self.attempts.get(peer, 0) + 1
                if ok:
                    self.successes[peer] = self.successes.get(peer, 0) + 1
        self.rounds += 1

    # -- IMonitor -------------------------------------------------------------
    def notify(self, brick: Any, event: Event, direction: str) -> None:
        """Passive piggyback via sequence gaps — an *unbiased* estimator.

        Counting arrivals alone would be survivorship bias (lost events
        never show up to be counted).  Instead the sender stamps
        loss-subject application events with a per-link sequence number;
        the gap between consecutive arrivals reveals exactly how many were
        lost in between.  Only first-hop samples are used (``seq_link`` ==
        the host the event physically arrived from); relayed legs are
        covered by active pings.  Control traffic is unstamped — it rides a
        retransmitting transport and carries no loss information.
        """
        if direction != "deliver":
            return
        headers = event.headers
        seq = headers.get("seq")
        # Control traffic is never stamped, so checking the stamp first
        # lets the per-delivery hot path skip the is_admin lookup for
        # every unstamped event; the admin check stays for exactness.
        if seq is None or event.is_admin:
            return
        seq_link = headers.get("seq_link")
        if seq_link is None or seq_link != headers.get("arrived_from"):
            return
        last = self._last_seq.get(seq_link)
        self._last_seq[seq_link] = seq
        if last is None or seq <= last:
            return  # first observation (or reordering): no interval info
        gap = seq - last  # this arrival plus (gap - 1) losses before it
        self.attempts[seq_link] = self.attempts.get(seq_link, 0) + gap
        self.successes[seq_link] = self.successes.get(seq_link, 0) + 1

    def collect(self) -> Dict[str, Any]:
        reliabilities = {
            peer: self.successes.get(peer, 0) / attempts
            for peer, attempts in self.attempts.items() if attempts > 0
        }
        return {
            "kind": "network_reliability",
            "rounds": self.rounds,
            "attempts": dict(self.attempts),
            "reliabilities": reliabilities,
        }

    def reset(self) -> None:
        self.successes.clear()
        self.attempts.clear()
        self.rounds = 0
