"""Event scheduling and dispatch — Prism-MW's Scaffold.

"Prism-MW associates the IScaffold interface with every Brick.  Scaffolds
are used to schedule and dispatch events using a pool of threads in a
decoupled manner.  IScaffold also directly aids architectural self-awareness
by allowing the run-time probing of a Brick's behavior, via different
implementations of the IMonitor interface." (Section 4.2)

Three implementations cover the reproduction's needs:

* :class:`SimScaffold` — schedules each dispatch as a zero-delay event on
  the simulation clock.  This is the default: it decouples send from
  delivery exactly like a dispatch queue does, while remaining fully
  deterministic.
* :class:`ImmediateScaffold` — synchronous direct invocation; the simplest
  possible scaffold, used by unit tests that do not involve time.
* :class:`ThreadPoolScaffold` — a real worker pool matching the paper's
  description literally; retained to demonstrate that bricks are
  scheduling-policy agnostic (exercised by a dedicated test, not used by the
  deterministic benches).

Monitor probing happens here: every dispatch notifies the target brick's
attached :class:`~repro.middleware.monitors.IMonitor` instances before the
brick handles the event, so monitoring is transparent to application code.
"""

from __future__ import annotations

import queue
import threading
from abc import ABC, abstractmethod
from typing import Any, Optional

from repro.middleware.events import Event
from repro.obs import Observability, get_observability
from repro.sim.clock import SimClock


class Scaffold(ABC):
    """Scheduling policy for event delivery to bricks."""

    @abstractmethod
    def dispatch(self, brick: Any, event: Event) -> None:
        """Schedule ``brick.handle(event)`` according to the policy."""

    def _invoke(self, brick: Any, event: Event) -> None:
        # Inlined notify_monitors: this runs once per delivered event,
        # and most bricks carry no monitors at all.
        monitors = brick.monitors
        if monitors:
            for monitor in monitors:
                monitor.notify(brick, event, "deliver")
        brick.handle(event)

    def drain(self) -> None:
        """Block/step until all queued dispatches have run (no-op when the
        policy has no private queue)."""


class ImmediateScaffold(Scaffold):
    """Deliver synchronously in the caller's stack frame."""

    def dispatch(self, brick: Any, event: Event) -> None:
        self._invoke(brick, event)


class SimScaffold(Scaffold):
    """Deliver via the simulation clock (zero-delay scheduled event).

    Decoupled like a thread pool — the sender's stack unwinds before the
    receiver runs — but deterministic: deliveries happen in dispatch order
    when the clock is stepped.
    """

    def __init__(self, clock: SimClock,
                 obs: Optional[Observability] = None):
        self.clock = clock
        self.dispatched = 0
        obs = obs if obs is not None else get_observability()
        # Resolved once: when observability is disabled the dispatch hot
        # path is the lean two-statement version (no no-op instrument
        # calls at all); queue-depth tracking (an extra callback hop per
        # delivery) is wired only when on.  ``clock.post`` is the
        # handle-free, pooled scheduling primitive — dispatches are
        # never cancelled, so the clock recycles their event objects.
        self._c_dispatched = obs.counter("middleware.scaffold.dispatched")
        self._g_queue = obs.gauge("middleware.scaffold.queue_depth")
        self._deliver = self._observed_invoke if obs.enabled else self._invoke
        if not obs.enabled:
            self.dispatch = self._lean_dispatch

    def dispatch(self, brick: Any, event: Event) -> None:
        self.dispatched += 1
        self._c_dispatched.inc()
        self._g_queue.add(1)
        self.clock.post(self._deliver, brick, event)

    def _lean_dispatch(self, brick: Any, event: Event) -> None:
        self.dispatched += 1
        self.clock.post(self._deliver, brick, event)

    def _observed_invoke(self, brick: Any, event: Event) -> None:
        self._g_queue.add(-1)
        self._invoke(brick, event)

    def drain(self) -> None:
        """Run the clock at the current instant until quiescent."""
        self.clock.run(0.0)


class ThreadPoolScaffold(Scaffold):
    """Deliver on a pool of worker threads (the paper's literal design).

    Handlers of distinct bricks may run concurrently; a per-brick lock keeps
    each brick's handler single-threaded, mirroring Prism-MW's per-brick
    serialization of event handling.
    """

    _SENTINEL = object()

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._queue: "queue.Queue" = queue.Queue()
        self._threads = []
        self._locks: dict = {}
        self._locks_guard = threading.Lock()
        self._shutdown = False
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker, name=f"scaffold-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _brick_lock(self, brick: Any) -> threading.Lock:
        with self._locks_guard:
            lock = self._locks.get(id(brick))
            if lock is None:
                lock = threading.Lock()
                self._locks[id(brick)] = lock
            return lock

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is self._SENTINEL:
                    return
                brick, event = item
                with self._brick_lock(brick):
                    self._invoke(brick, event)
            finally:
                self._queue.task_done()

    def dispatch(self, brick: Any, event: Event) -> None:
        if self._shutdown:
            raise RuntimeError("scaffold has been shut down")
        self._queue.put((brick, event))

    def drain(self) -> None:
        self._queue.join()

    def shutdown(self) -> None:
        with self._locks_guard:
            self._shutdown = True
        for __ in self._threads:
            self._queue.put(self._SENTINEL)
        for thread in self._threads:
            thread.join(timeout=5.0)
