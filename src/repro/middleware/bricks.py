"""Architectural building blocks — Prism-MW's Brick class family.

"Brick is an abstract class that encapsulates common features of its
subclasses (Architecture, Component, and Connector).  The Architecture class
records the configuration of its components and connectors, and provides
facilities for their addition, removal, and reconnection, possibly at system
run-time.  A distributed application is implemented as a set of interacting
Architecture objects ... Components in an architecture communicate by
exchanging Events, which are routed by Connectors." (Section 4.2)

One :class:`Architecture` corresponds to one address space (one simulated
host).  Cross-architecture traffic flows exclusively through a
:class:`~repro.middleware.connectors.DistributionConnector`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.errors import DuplicateEntityError, MiddlewareError, UnknownEntityError
from repro.middleware.events import Event
from repro.middleware.scaffold import ImmediateScaffold, Scaffold


class Brick:
    """Common base of Component, Connector, and Architecture.

    A brick has an identity, a scaffold (assigned when it joins an
    architecture) and a set of attached monitors probing its behavior.

    The class family carries ``__slots__``: bricks and events are the
    bulk of hot-path allocations in message-heavy campaigns, and fixed
    slots shave both per-instance memory and attribute-lookup time.
    Subclasses that declare no ``__slots__`` of their own (application
    components, the admin/deployer family) transparently regain a
    ``__dict__`` and are unaffected.
    """

    __slots__ = ("id", "scaffold", "monitors", "architecture")

    def __init__(self, brick_id: str):
        if not brick_id:
            raise MiddlewareError("brick id must be non-empty")
        self.id = brick_id
        self.scaffold: Scaffold = ImmediateScaffold()
        self.monitors: List[Any] = []
        self.architecture: Optional["Architecture"] = None

    # -- monitoring (IScaffold's self-awareness hook) -----------------------
    def attach_monitor(self, monitor: Any) -> None:
        self.monitors.append(monitor)
        started = getattr(monitor, "attached", None)
        if callable(started):
            started(self)

    def detach_monitor(self, monitor: Any) -> None:
        self.monitors.remove(monitor)

    def notify_monitors(self, event: Event, direction: str) -> None:
        for monitor in self.monitors:
            monitor.notify(self, event, direction)

    # -- behavior -------------------------------------------------------------
    def handle(self, event: Event) -> None:  # pragma: no cover - abstract-ish
        """React to a delivered event; default drops it."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.id!r})"


class Component(Brick):
    """An application-level component.

    Subclasses override :meth:`handle`.  Sending goes through every
    connector the component is welded to; the architecture's connectors
    take care of local vs. remote routing.

    Components that migrate between hosts implement
    ``get_state``/``set_state`` and are registered with
    :func:`repro.middleware.serialization.register_component_class`.
    ``migration_size_kb`` models how much data a migration transfers.
    """

    __slots__ = ("migration_size_kb",)

    def __init__(self, component_id: str):
        super().__init__(component_id)
        self.migration_size_kb: float = 1.0

    # -- communication --------------------------------------------------------
    def send(self, event: Event) -> None:
        """Emit *event* into the architecture via welded connectors."""
        if self.architecture is None:
            raise MiddlewareError(
                f"component {self.id!r} is not part of an architecture")
        if event.source is None:
            event.source = self.id
        # Inlined notify_monitors: one call per emitted event.
        monitors = self.monitors
        if monitors:
            for monitor in monitors:
                monitor.notify(self, event, "send")
        self.architecture.route_from(self, event)

    # -- migration state ----------------------------------------------------
    def get_state(self) -> Dict[str, Any]:
        """Serializable state for migration; stateless by default."""
        return {}

    def set_state(self, state: Dict[str, Any]) -> None:
        """Restore state after migration; no-op by default."""


class CallbackComponent(Component):
    """Convenience component delegating to a callable (tests, examples)."""

    __slots__ = ("on_event", "received")

    def __init__(self, component_id: str,
                 on_event: Optional[Callable[["CallbackComponent", Event], None]] = None):
        super().__init__(component_id)
        self.on_event = on_event
        self.received: List[Event] = []

    def handle(self, event: Event) -> None:
        self.received.append(event)
        if self.on_event is not None:
            self.on_event(self, event)


class Connector(Brick):
    """Routes events between the components welded to it.

    Targeted events go to the named component if it is welded here; when the
    target is not welded (e.g. it lives on another host) the connector hands
    the event back to the architecture, which forwards it through the
    distribution connector if one exists.  Untargeted events broadcast to
    every welded component except the sender.
    """

    __slots__ = ("welded",)

    def __init__(self, connector_id: str):
        super().__init__(connector_id)
        self.welded: Dict[str, Brick] = {}

    def weld(self, brick: Brick) -> None:
        if brick.id in self.welded:
            raise DuplicateEntityError("weld", f"{brick.id}@{self.id}")
        self.welded[brick.id] = brick
        arch = self.architecture
        if arch is not None:
            arch._route_cache.clear()

    def unweld(self, brick_id: str) -> None:
        if brick_id not in self.welded:
            raise UnknownEntityError("weld", f"{brick_id}@{self.id}")
        del self.welded[brick_id]
        arch = self.architecture
        if arch is not None:
            arch._route_cache.clear()

    def handle(self, event: Event) -> None:
        if event.target is not None:
            local = self.welded.get(event.target)
            if local is not None:
                self.scaffold.dispatch(local, event)
            elif self.architecture is not None:
                self.architecture.forward_remote(event, origin=self)
            return
        for brick_id, brick in sorted(self.welded.items()):
            if brick_id != event.source:
                self.scaffold.dispatch(brick, event)


class Architecture(Brick):
    """One address space's configuration of components and connectors.

    Records configuration, supports run-time addition/removal/reconnection,
    and owns the scaffold every member brick dispatches through.
    """

    __slots__ = ("_components", "_connectors", "dead_letters",
                 "_distribution", "_route_cache")

    def __init__(self, architecture_id: str,
                 scaffold: Optional[Scaffold] = None):
        super().__init__(architecture_id)
        self.scaffold = scaffold if scaffold is not None else ImmediateScaffold()
        self._components: Dict[str, Component] = {}
        self._connectors: Dict[str, Connector] = {}
        #: Events that could not be routed anywhere (diagnosis aid).
        self.dead_letters: List[Event] = []
        #: The distribution connector, if one has been added.
        self._distribution: Optional[Connector] = None
        #: sender id -> connectors welded to it, in connector-insertion
        #: order (the scan order of the uncached loop).  Cleared by any
        #: weld/unweld and any connector addition/removal.
        self._route_cache: Dict[str, Tuple[Connector, ...]] = {}

    # -- configuration -------------------------------------------------------
    def add_component(self, component: Component) -> Component:
        if component.id in self._components or component.id in self._connectors:
            raise DuplicateEntityError("brick", component.id)
        component.architecture = self
        component.scaffold = self.scaffold
        self._components[component.id] = component
        return component

    def add_connector(self, connector: Connector) -> Connector:
        if connector.id in self._components or connector.id in self._connectors:
            raise DuplicateEntityError("brick", connector.id)
        connector.architecture = self
        connector.scaffold = self.scaffold
        self._connectors[connector.id] = connector
        self._route_cache.clear()
        # Duck-typed: the DistributionConnector subclass marks itself.
        if getattr(connector, "is_distribution", False):
            if self._distribution is not None:
                raise MiddlewareError(
                    f"architecture {self.id!r} already has a distribution "
                    "connector")
            self._distribution = connector
        return connector

    def remove_component(self, component_id: str) -> Component:
        """Detach a component from all connectors and drop it.

        This is the first half of a migration: the returned component is
        then serialized and shipped.
        """
        component = self.component(component_id)
        for connector in self._connectors.values():
            if component_id in connector.welded:
                connector.unweld(component_id)
        component.architecture = None
        del self._components[component_id]
        return component

    def remove_connector(self, connector_id: str) -> Connector:
        connector = self.connector(connector_id)
        if connector is self._distribution:
            self._distribution = None
        connector.architecture = None
        del self._connectors[connector_id]
        self._route_cache.clear()
        return connector

    def weld(self, component_id: str, connector_id: str) -> None:
        self.connector(connector_id).weld(self.component(component_id))

    def unweld(self, component_id: str, connector_id: str) -> None:
        self.connector(connector_id).unweld(component_id)

    # -- lookup ----------------------------------------------------------------
    def component(self, component_id: str) -> Component:
        try:
            return self._components[component_id]
        except KeyError:
            raise UnknownEntityError("component", component_id) from None

    def connector(self, connector_id: str) -> Connector:
        try:
            return self._connectors[connector_id]
        except KeyError:
            raise UnknownEntityError("connector", connector_id) from None

    def has_component(self, component_id: str) -> bool:
        return component_id in self._components

    @property
    def components(self) -> Tuple[Component, ...]:
        return tuple(self._components[c] for c in sorted(self._components))

    @property
    def connectors(self) -> Tuple[Connector, ...]:
        return tuple(self._connectors[c] for c in sorted(self._connectors))

    @property
    def component_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._components))

    @property
    def distribution_connector(self) -> Optional[Connector]:
        return self._distribution

    # -- routing ----------------------------------------------------------------
    def route_from(self, sender: Component, event: Event) -> None:
        """Route an event just emitted by a local component."""
        sender_id = sender.id
        connectors = self._route_cache.get(sender_id)
        if connectors is None:
            connectors = tuple(
                connector for connector in self._connectors.values()
                if sender_id in connector.welded)
            self._route_cache[sender_id] = connectors
        if connectors:
            dispatch = self.scaffold.dispatch
            for connector in connectors:
                dispatch(connector, event)
        else:
            # Unwelded sender: fall back to direct local delivery or the
            # distribution connector, so meta-components (Admins) that are
            # deliberately not welded into the application topology can
            # still communicate.
            self.route(event)

    def route(self, event: Event) -> None:
        """Route an event originating at the architecture level."""
        if event.target is not None and event.target in self._components:
            self.scaffold.dispatch(self._components[event.target], event)
            return
        if self._distribution is not None:
            self.scaffold.dispatch(self._distribution, event)
            return
        self.dead_letters.append(event)

    def forward_remote(self, event: Event, origin: Optional[Connector] = None,
                       ) -> None:
        """A connector could not deliver *event* locally; try off-host."""
        if self._distribution is not None and self._distribution is not origin:
            self.scaffold.dispatch(self._distribution, event)
        else:
            self.dead_letters.append(event)

    def deliver_local(self, event: Event) -> None:
        """Deliver an event known to target a local component."""
        component = self.component(event.target)
        self.scaffold.dispatch(component, event)

    def handle(self, event: Event) -> None:
        """Events sent *to* the architecture are routed like local sends."""
        self.route(event)

    def describe(self) -> Dict[str, Any]:
        """Structural snapshot (used by Admin's configuration reports)."""
        return {
            "architecture": self.id,
            "components": list(self.component_ids),
            "connectors": sorted(self._connectors),
            "welds": sorted(
                (component_id, connector.id)
                for connector in self._connectors.values()
                for component_id in connector.welded
            ),
        }
