"""Structured span tracing over simulated time.

A :class:`Span` records one named region of the improvement loop — an
analyzer cycle, an effector redeployment, a monitoring interval — with a
start/end taken from an injected time source (in practice
``lambda: clock.now``, bound via
:meth:`~repro.obs.Observability.bind_clock`).  Spans nest: entering a
span while another is open makes it a child, so one Analyzer improvement
cycle exports as a tree::

    framework.window
    ├── monitoring.interval
    └── analyzer.cycle
        ├── analyzer.portfolio
        └── effector.effect

Because durations are sim-time, traces are deterministic: the same seed
produces a byte-identical capture on any machine.  Wall-clock profiling
stays where it already lives (``elapsed`` fields on reports, benchmark
harnesses); the tracer answers *where the simulated system spent its
time*, not where the host CPU did.

The open-span stack is thread-local: each thread grows its own tree and
finished roots are appended to a shared, lock-protected list.  In
practice only the orchestrating thread opens spans — worker threads in
the portfolio runner are measured by counters instead, which merge
cheaply and never interleave.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


def _zero_time() -> float:
    return 0.0


def sanitize_value(value: Any) -> Any:
    """Coerce an attribute value to a JSON-exact type.

    Tuples become lists and everything non-primitive becomes ``str`` *at
    record time*, so an exported-then-imported span tree compares equal
    to the original (the round-trip property test relies on this).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [sanitize_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): sanitize_value(v) for k, v in value.items()}
    return str(value)


@dataclass
class Span:
    """One named, timed region with attributes and child spans."""

    name: str
    start: float = 0.0
    end: float = 0.0
    attributes: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; values are sanitized to JSON-exact types."""
        for key, value in attrs.items():
            self.attributes[key] = sanitize_value(value)
        return self

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (f"Span({self.name!r} [{self.start:g}, {self.end:g}] "
                f"children={len(self.children)})")


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info: Any) -> bool:
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Builds span trees against an injectable time source."""

    enabled = True

    def __init__(self,
                 time_source: Optional[Callable[[], float]] = None) -> None:
        self._time = time_source or _zero_time
        self._local = threading.local()
        self._lock = threading.Lock()
        #: Completed-or-open root spans in start order.
        self.roots: List[Span] = []

    def bind(self, time_source: Callable[[], float]) -> None:
        """Swap the time source (typically ``lambda: clock.now``)."""
        with self._lock:
            self._time = time_source

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        span.start = span.end = self._time()
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate a corrupted stack (a span leaked across an exception
        # boundary) rather than poisoning every later measurement.
        while stack:
            top = stack.pop()
            top.end = self._time()
            if top is span:
                break

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a child span of whatever span is currently active."""
        span = Span(name)
        if attrs:
            span.set(**attrs)
        return _SpanContext(self, span)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def clear(self) -> None:
        with self._lock:
            self.roots = []
            self._local = threading.local()

    def walk(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()


class _NullSpan:
    """Shared inert span yielded when tracing is disabled."""

    __slots__ = ()
    name = ""
    start = 0.0
    end = 0.0
    duration = 0.0
    attributes: Dict[str, Any] = {}
    children: List[Span] = []

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def walk(self) -> Iterator["_NullSpan"]:
        return iter(())


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: Any) -> bool:
        return False


NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Tracer stand-in when observability is disabled.

    ``span()`` hands back one shared, reusable context manager — no
    allocation, no time-source call — so disabled span sites cost two
    no-op method calls (``__enter__``/``__exit__``).
    """

    enabled = False
    roots: Tuple[Span, ...] = ()

    def bind(self, time_source: Callable[[], float]) -> None:
        pass

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def current(self) -> None:
        return None

    def clear(self) -> None:
        pass

    def walk(self) -> Iterator[Span]:
        return iter(())


NULL_TRACER = NullTracer()
