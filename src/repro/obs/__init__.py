"""repro.obs — the framework's unified observability layer.

The paper's framework continuously monitors a *running deployment*;
this package gives the reproduction the same power over *itself*.  One
:class:`Observability` object bundles:

* a :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  fixed-bucket histograms fed by every layer (middleware dispatch, link
  deliveries, monitoring windows, engine memo hits, effector
  migrations, fault actions);
* a :class:`~repro.obs.trace.Tracer` — sim-time span trees over the
  monitor→model→algorithm→effector loop;
* :class:`~repro.obs.capture.Capture` — JSON-lines export/import, text
  rendering, and diffing (surfaced as ``python -m repro obs``).

Observability is **disabled by default**: the process-wide default is a
null object whose instruments are shared no-ops, and the microbenchmark
in ``benchmarks/test_bench_obs.py`` pins the disabled overhead below 2%
on the evaluation hot path.  Enable it either by injection::

    obs = Observability()
    system = DistributedSystem(model, clock, obs=obs)

or process-wide for code you don't construct yourself::

    with observe(Observability()) as obs:
        run_campaign(plan, scenario="crisis")
    obs.capture().save("trace.jsonl")

Instrumented constructors resolve ``obs=None`` to the process default
via :func:`get_observability`, so both styles reach every subsystem.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from .capture import Capture
from .metrics import (
    DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry,
    NULL_METRICS, NullMetrics,
)
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Observability", "MetricsRegistry", "NullMetrics", "NULL_METRICS",
    "Counter", "Gauge", "Histogram", "DEFAULT_BUCKETS",
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "Capture",
    "get_observability", "set_observability", "observe",
]


class Observability:
    """Bundle of a metrics registry and a tracer, on or off as a unit."""

    __slots__ = ("metrics", "tracer")

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 time_source: Optional[Callable[[], float]] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(time_source)

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled or self.tracer.enabled

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared null bundle (also the process-wide default)."""
        return NULL_OBS

    # -- delegation ------------------------------------------------------
    def counter(self, name: str, **labels: Any):
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: Any):
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, **labels: Any):
        return self.metrics.histogram(name, buckets=buckets, **labels)

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    # ------------------------------------------------------------------
    def bind_clock(self, clock: Any) -> "Observability":
        """Point the tracer's time source at *clock*'s sim time."""
        self.tracer.bind(lambda: clock.now)
        return self

    def capture(self, label: str = "") -> Capture:
        """Freeze the current metrics and finished spans into a capture."""
        return Capture.from_obs(self, label)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"Observability({state}, instruments={len(self.metrics)}, "
                f"roots={len(self.tracer.roots)})")


#: The shared disabled bundle.  Instrumented code paths resolve to this
#: when no observability was injected, making instrumentation free by
#: default.
NULL_OBS = Observability(metrics=NULL_METRICS, tracer=NULL_TRACER)

_default: Observability = NULL_OBS


def get_observability() -> Observability:
    """The process-wide default (a null bundle unless one was set)."""
    return _default


def set_observability(obs: Optional[Observability]) -> Observability:
    """Install *obs* as the process default; returns the previous one.

    Passing ``None`` restores the disabled default.
    """
    global _default
    previous = _default
    _default = obs if obs is not None else NULL_OBS
    return previous


@contextmanager
def observe(obs: Optional[Observability] = None) -> Iterator[Observability]:
    """Scope a process-default observability to a ``with`` block."""
    installed = obs if obs is not None else Observability()
    previous = set_observability(installed)
    try:
        yield installed
    finally:
        set_observability(previous)
