"""Capture files: JSON-lines export/import and text rendering.

A *capture* is the frozen contents of one
:class:`~repro.obs.Observability` — every metric instrument and every
completed span tree — serialized one JSON object per line::

    {"type": "meta", "version": 1, "label": "crisis seed=7"}
    {"type": "counter", "name": "middleware.scaffold.dispatched", ...}
    {"type": "gauge", "name": "sim.network.in_flight", ...}
    {"type": "histogram", "name": "effector.kb_moved", ...}
    {"type": "span", "id": 0, "parent": null, "name": "framework.window",
     "start": 30.0, "end": 30.0, "attrs": {...}}

Span ids are assigned depth-first at export time; ``parent`` refers to
an earlier id, so a stream can be rebuilt into the exact original trees
in one pass.  Floats survive the trip exactly (Python's ``json`` emits
``repr``-precision), which is what lets the round-trip property test
demand equality, not approximation.

The same class renders captures for humans (a flamegraph-style span
summary plus a metrics table) and diffs two captures metric-by-metric —
the ``python -m repro obs`` verbs are thin wrappers over these methods.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ReproError
from .metrics import MetricsRegistry
from .trace import Span

FORMAT_VERSION = 1


def _span_to_lines(span: Span, parent: Optional[int],
                   lines: List[Dict[str, Any]]) -> None:
    my_id = len(lines)  # depth-first ids; lines holds only span dicts
    lines.append({
        "type": "span", "id": my_id, "parent": parent, "name": span.name,
        "start": span.start, "end": span.end, "attrs": span.attributes,
    })
    for child in span.children:
        _span_to_lines(child, my_id, lines)


class Capture:
    """An exported observability snapshot: metrics + span trees."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 spans: Optional[List[Span]] = None, label: str = ""):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Span] = list(spans or [])
        self.label = label

    @classmethod
    def from_obs(cls, obs: Any, label: str = "") -> "Capture":
        """Freeze an :class:`~repro.obs.Observability` into a capture."""
        metrics = MetricsRegistry()
        if obs.metrics.enabled:
            metrics.merge(obs.metrics)
        return cls(metrics, list(obs.tracer.roots), label)

    # -- serialization ---------------------------------------------------
    def to_lines(self) -> List[Dict[str, Any]]:
        lines: List[Dict[str, Any]] = [
            {"type": "meta", "version": FORMAT_VERSION, "label": self.label},
        ]
        lines.extend(self.metrics.to_lines())
        span_lines: List[Dict[str, Any]] = []
        for root in self.spans:
            _span_to_lines(root, None, span_lines)
        lines.extend(span_lines)
        return lines

    def dumps(self) -> str:
        return "\n".join(
            json.dumps(line, sort_keys=True) for line in self.to_lines()
        ) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())

    @classmethod
    def loads(cls, text: str) -> "Capture":
        capture = cls()
        by_id: Dict[int, Span] = {}
        for lineno, raw in enumerate(text.splitlines(), start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                line = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"capture line {lineno}: invalid JSON ({exc})") from exc
            kind = line.get("type")
            if kind == "meta":
                version = line.get("version")
                if version != FORMAT_VERSION:
                    raise ReproError(
                        f"capture version {version!r} not supported "
                        f"(expected {FORMAT_VERSION})")
                capture.label = line.get("label", "")
            elif kind in ("counter", "gauge", "histogram"):
                capture.metrics.load_line(line)
            elif kind == "span":
                span = Span(line["name"], start=line["start"],
                            end=line["end"],
                            attributes=dict(line.get("attrs", {})))
                by_id[line["id"]] = span
                parent = line.get("parent")
                if parent is None:
                    capture.spans.append(span)
                else:
                    try:
                        by_id[parent].children.append(span)
                    except KeyError:
                        raise ReproError(
                            f"capture line {lineno}: span parent {parent} "
                            f"not seen yet") from None
            else:
                raise ReproError(
                    f"capture line {lineno}: unknown type {kind!r}")
        return capture

    @classmethod
    def load(cls, path: str) -> "Capture":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read())

    # -- analysis --------------------------------------------------------
    def subsystems(self) -> List[str]:
        """Sorted first-dotted-segment names seen in metrics and spans."""
        seen = {inst.name.split(".", 1)[0] for inst in self.metrics}
        for root in self.spans:
            for span in root.walk():
                seen.add(span.name.split(".", 1)[0])
        return sorted(seen)

    def span_rollup(self) -> Dict[Tuple[str, ...], Tuple[int, float]]:
        """Aggregate spans by path: ``{path: (count, total duration)}``."""
        rollup: Dict[Tuple[str, ...], Tuple[int, float]] = {}

        def visit(span: Span, prefix: Tuple[str, ...]) -> None:
            path = prefix + (span.name,)
            count, total = rollup.get(path, (0, 0.0))
            rollup[path] = (count + 1, total + span.duration)
            for child in span.children:
                visit(child, path)

        for root in self.spans:
            visit(root, ())
        return rollup

    # -- rendering -------------------------------------------------------
    def render(self, show_spans: bool = True, show_metrics: bool = True,
               **_opts: Any) -> str:
        out: List[str] = [f"capture: {self.label or '(unlabelled)'}"]
        if show_spans:
            out.append("")
            out.extend(self._render_spans())
        if show_metrics:
            out.append("")
            out.extend(self._render_metrics())
        return "\n".join(out)

    def _render_spans(self) -> List[str]:
        rollup = self.span_rollup()
        if not rollup:
            return ["spans: (none recorded)"]
        out = ["spans (sim-time, aggregated by path):"]
        # Depth-first order falls out of sorting the path tuples because
        # every child path extends its parent's tuple.
        paths = sorted(rollup)
        width = max(2 * (len(p) - 1) + len(p[-1]) for p in paths)
        for path in paths:
            count, total = rollup[path]
            indent = "  " * (len(path) - 1)
            label = f"{indent}{path[-1]}".ljust(width)
            parent = path[:-1]
            share = ""
            if parent in rollup and rollup[parent][1] > 0:
                share = f"  {100 * total / rollup[parent][1]:5.1f}%"
            out.append(f"  {label}  x{count:<4d} total {total:10.4f}s"
                       f"{share}")
        return out

    def _render_metrics(self) -> List[str]:
        instruments = list(self.metrics)
        if not instruments:
            return ["metrics: (none recorded)"]
        out = ["metrics:"]
        rows = []
        for inst in instruments:
            labels = ",".join(f"{k}={v}" for k, v in inst.labels)
            if inst.kind == "counter":
                detail = f"{inst.value:g}"
            elif inst.kind == "gauge":
                detail = f"{inst.value:g} (high {inst.high:g})"
            else:
                detail = (f"n={inst.count} sum={inst.sum:g}"
                          + (f" min={inst.min:g} max={inst.max:g}"
                             if inst.count else ""))
            rows.append((inst.kind, inst.name, labels, detail))
        widths = [max(len(row[i]) for row in rows) for i in range(3)]
        for kind, name, labels, detail in rows:
            out.append(f"  {kind.ljust(widths[0])}  {name.ljust(widths[1])}"
                       f"  {labels.ljust(widths[2])}  {detail}")
        return out

    # -- diffing ---------------------------------------------------------
    def diff(self, other: "Capture") -> str:
        """Metric-by-metric and span-rollup comparison, text formatted."""
        out = [f"diff: {self.label or 'a'} -> {other.label or 'b'}", ""]
        out.extend(self._diff_metrics(other))
        out.append("")
        out.extend(self._diff_spans(other))
        return "\n".join(out)

    def _metric_values(self) -> Dict[Tuple[str, str], float]:
        values: Dict[Tuple[str, str], float] = {}
        for inst in self.metrics:
            labels = ",".join(f"{k}={v}" for k, v in inst.labels)
            key = (inst.name, labels)
            values[key] = inst.sum if inst.kind == "histogram" else inst.value
        return values

    def _diff_metrics(self, other: "Capture") -> List[str]:
        mine, theirs = self._metric_values(), other._metric_values()
        keys = sorted(set(mine) | set(theirs))
        changed = [(k, mine.get(k, 0.0), theirs.get(k, 0.0))
                   for k in keys if mine.get(k, 0.0) != theirs.get(k, 0.0)]
        if not changed:
            return ["metrics: identical"]
        out = [f"metrics ({len(changed)} changed of {len(keys)}):"]
        width = max(len(name) + bool(labels) + len(labels)
                    for (name, labels), _, _ in changed)
        for (name, labels), a, b in changed:
            shown = f"{name}{{{labels}}}" if labels else name
            out.append(f"  {shown.ljust(width)}  {a:g} -> {b:g} "
                       f"({b - a:+g})")
        return out

    def _diff_spans(self, other: "Capture") -> List[str]:
        mine, theirs = self.span_rollup(), other.span_rollup()
        keys = sorted(set(mine) | set(theirs))
        if not keys:
            return ["spans: (none in either capture)"]
        changed = []
        for key in keys:
            a_count, a_total = mine.get(key, (0, 0.0))
            b_count, b_total = theirs.get(key, (0, 0.0))
            if (a_count, a_total) != (b_count, b_total):
                changed.append((key, a_count, a_total, b_count, b_total))
        if not changed:
            return ["spans: identical"]
        out = [f"spans ({len(changed)} changed of {len(keys)} paths):"]
        for key, a_count, a_total, b_count, b_total in changed:
            path = "/".join(key)
            out.append(f"  {path}  x{a_count} {a_total:.4f}s -> "
                       f"x{b_count} {b_total:.4f}s")
        return out
