"""Metric instruments and the registry that owns them.

Three instrument kinds cover every measurement the framework takes of
itself:

* :class:`Counter` — monotonically increasing totals (events dispatched,
  messages dropped, migrations attempted);
* :class:`Gauge` — point-in-time levels with a high-water mark (scaffold
  queue depth, messages in flight on a link);
* :class:`Histogram` — distributions over **fixed** bucket boundaries
  (migration sim-durations, kilobytes moved).  Boundaries are declared at
  creation and never adapt, so two captures of the same run are always
  bucket-compatible and merging is a plain element-wise sum.

Nothing here reads the wall clock: values are whatever the instrumented
code reports, and any timestamps come from the simulation's
:class:`~repro.sim.clock.SimClock`.  That keeps captures byte-identical
across machines for the same seed — the same determinism contract the
rest of the reproduction honours.

Every instrument also has a null twin (:data:`NULL_METRICS` hands them
out) whose mutators are empty methods, so instrumented hot paths cost a
single no-op call when observability is off.  The
``benchmarks/test_bench_obs.py`` microbenchmark pins that cost.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ReproError

#: Default histogram bucket boundaries.  Spans decades: sim-times and
#: kilobyte counts in the scenarios shipped with the repo both fall
#: comfortably inside, and anything larger lands in the overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)

LabelKey = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Mapping[str, Any]) -> LabelKey:
    """Canonicalize labels: string values, sorted keys, hashable."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name}: cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}{dict(self.labels)}={self.value:g})"


class Gauge:
    """A point-in-time level plus its high-water mark."""

    __slots__ = ("name", "labels", "value", "high")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.high = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high:
            self.high = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def __repr__(self) -> str:
        return (f"Gauge({self.name}{dict(self.labels)}="
                f"{self.value:g} high={self.high:g})")


class Histogram:
    """A distribution over fixed bucket boundaries.

    ``counts[i]`` counts observations ``<= boundaries[i]``; the final
    slot is the overflow bucket.  Fixed boundaries make histograms from
    different processes (or campaign workers) mergeable by summation.
    """

    __slots__ = ("name", "labels", "boundaries", "counts",
                 "sum", "count", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey,
                 boundaries: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ReproError(
                f"histogram {name}: boundaries must be strictly increasing")
        self.name = name
        self.labels = labels
        self.boundaries = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def __repr__(self) -> str:
        return (f"Histogram({self.name}{dict(self.labels)} "
                f"n={self.count} sum={self.sum:g})")


class _NullCounter:
    """Shared do-nothing counter; one instance serves every call site."""

    __slots__ = ()
    kind = "counter"
    name = ""
    labels: LabelKey = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    name = ""
    labels: LabelKey = ()
    value = 0.0
    high = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    name = ""
    labels: LabelKey = ()
    boundaries = DEFAULT_BUCKETS
    counts: List[int] = []
    sum = 0.0
    count = 0
    min = None
    max = None

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()

Instrument = Any  # Counter | Gauge | Histogram (or their null twins)


class MetricsRegistry:
    """Owns every instrument, keyed by ``(name, frozen labels)``.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated calls
    with the same name and labels return the same instrument, so call
    sites may either resolve once at construction (hot paths) or inline
    at the point of use (cold paths).
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Instrument] = {}

    # -- instrument factories -------------------------------------------
    def _get(self, cls, name: str, labels: Mapping[str, Any],
             **kwargs: Any) -> Instrument:
        key = (name, _freeze_labels(labels))
        found = self._instruments.get(key)
        if found is None:
            found = self._instruments[key] = cls(name, key[1], **kwargs)
        elif not isinstance(found, cls):
            raise ReproError(
                f"metric {name!r} already registered as {found.kind}")
        return found

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        found = self._get(Histogram, name, labels, boundaries=buckets)
        if found.boundaries != tuple(float(b) for b in buckets):
            raise ReproError(
                f"histogram {name!r} re-registered with different buckets")
        return found

    # -- introspection ---------------------------------------------------
    def __iter__(self) -> Iterator[Instrument]:
        """Instruments in deterministic (name, labels) order."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str, **labels: Any) -> Optional[Instrument]:
        return self._instruments.get((name, _freeze_labels(labels)))

    def value(self, name: str, **labels: Any) -> float:
        """Convenience: current value of a counter/gauge (0 if absent)."""
        found = self.get(name, **labels)
        return 0.0 if found is None else found.value

    # -- serialization ---------------------------------------------------
    def to_lines(self) -> List[Dict[str, Any]]:
        """One JSON-safe dict per instrument, deterministically ordered."""
        lines: List[Dict[str, Any]] = []
        for inst in self:
            line: Dict[str, Any] = {
                "type": inst.kind,
                "name": inst.name,
                "labels": dict(inst.labels),
            }
            if inst.kind == "counter":
                line["value"] = inst.value
            elif inst.kind == "gauge":
                line["value"] = inst.value
                line["high"] = inst.high
            else:
                line.update(buckets=list(inst.boundaries),
                            counts=list(inst.counts), sum=inst.sum,
                            count=inst.count, min=inst.min, max=inst.max)
            lines.append(line)
        return lines

    def load_line(self, line: Mapping[str, Any]) -> Instrument:
        """Recreate one instrument from a :meth:`to_lines` dict."""
        kind = line["type"]
        labels = dict(line.get("labels", {}))
        if kind == "counter":
            inst = self.counter(line["name"], **labels)
            inst.value = float(line["value"])
        elif kind == "gauge":
            inst = self.gauge(line["name"], **labels)
            inst.value = float(line["value"])
            inst.high = float(line["high"])
        elif kind == "histogram":
            inst = self.histogram(line["name"],
                                  buckets=line["buckets"], **labels)
            inst.counts = [int(c) for c in line["counts"]]
            inst.sum = float(line["sum"])
            inst.count = int(line["count"])
            inst.min = None if line["min"] is None else float(line["min"])
            inst.max = None if line["max"] is None else float(line["max"])
        else:
            raise ReproError(f"unknown metric line type {kind!r}")
        return inst

    # -- merging ---------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s instruments into this registry.

        Counters and histogram buckets add; gauges keep the maximum of
        the two levels (the only aggregate that stays meaningful when
        parallel campaign workers each report their own queue depths).
        """
        for inst in other:
            labels = dict(inst.labels)
            if inst.kind == "counter":
                self.counter(inst.name, **labels).inc(inst.value)
            elif inst.kind == "gauge":
                mine = self.gauge(inst.name, **labels)
                mine.value = max(mine.value, inst.value)
                mine.high = max(mine.high, inst.high)
            else:
                mine = self.histogram(inst.name,
                                      buckets=inst.boundaries, **labels)
                mine.counts = [a + b
                               for a, b in zip(mine.counts, inst.counts)]
                mine.sum += inst.sum
                mine.count += inst.count
                for attr in ("min", "max"):
                    theirs = getattr(inst, attr)
                    if theirs is None:
                        continue
                    mine_v = getattr(mine, attr)
                    pick = (min if attr == "min" else max)
                    setattr(mine, attr,
                            theirs if mine_v is None else pick(mine_v,
                                                               theirs))


class NullMetrics:
    """Registry stand-in when observability is disabled.

    Hands out shared null instruments whose mutators are empty methods —
    the entire per-call cost of disabled instrumentation is one bound
    no-op call, pinned <2% on the E1c benchmark path by
    ``benchmarks/test_bench_obs.py``.
    """

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def __iter__(self) -> Iterator[Instrument]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def get(self, name: str, **labels: Any) -> None:
        return None

    def value(self, name: str, **labels: Any) -> float:
        return 0.0

    def to_lines(self) -> List[Dict[str, Any]]:
        return []

    def merge(self, other: "MetricsRegistry") -> None:
        pass


NULL_METRICS = NullMetrics()
