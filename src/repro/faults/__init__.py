"""repro.faults: deterministic fault-injection campaigns.

Declarative :class:`FaultPlan` s (JSON / xADL-adjacent XML), a
clock-scheduled :class:`FaultInjector`, model-derived campaign
generators, and the :class:`ResilienceReport` harness that scores how a
live system — and its hardened, self-healing redeployment path — copes.
"""

from repro.faults.campaigns import (
    CAMPAIGNS, generate_campaign, host_traffic, random_churn,
    rolling_partitions, targeted_attack, worst_host,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultAction, FaultPlan, KINDS, load_plan, save_plan,
)
from repro.faults.report import (
    CampaignSuiteReport, ResilienceReport, SCENARIOS, run_campaign,
)

__all__ = [
    "CAMPAIGNS",
    "CampaignSuiteReport",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "KINDS",
    "ResilienceReport",
    "SCENARIOS",
    "generate_campaign",
    "host_traffic",
    "load_plan",
    "random_churn",
    "rolling_partitions",
    "run_campaign",
    "save_plan",
    "targeted_attack",
    "worst_host",
]
