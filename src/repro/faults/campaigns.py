"""Campaign generators: model-derived :class:`FaultPlan` factories.

Three canonical stressors for the paper's evaluation scenarios, all pure
functions of (model, parameters, seed) so a campaign regenerates
identically anywhere:

* :func:`random_churn` — seeded random link churn: flaps, loss bursts,
  and transient host crashes spread over the campaign, the "fluctuating
  wireless field" regime of Section 5;
* :func:`rolling_partitions` — deterministic rolling network splits,
  isolating one host group after another, the disconnection scenario the
  redeployment algorithms exist to survive;
* :func:`targeted_attack` — derives the *worst* host from the model (the
  one carrying the most interaction traffic, frequency x event size of
  every logical link touching its deployed components) and takes it down
  for most of the campaign — the adversarial upper bound on availability
  loss.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import FaultPlanError
from repro.core.model import DeploymentModel
from repro.faults.plan import FaultAction, FaultPlan


def _link_targets(model: DeploymentModel) -> Tuple[Tuple[str, str], ...]:
    return tuple(tuple(sorted(link.hosts))
                 for link in model.physical_links)


def host_traffic(model: DeploymentModel) -> Dict[str, float]:
    """Interaction traffic carried by each host: the sum of
    ``frequency * evt_size`` over logical links whose endpoints are
    deployed on it (links internal to a host count once)."""
    deployment = model.deployment.as_dict()
    traffic = {host: 0.0 for host in model.host_ids}
    for comp_a, comp_b, link in model.interaction_pairs():
        volume = (link.frequency or 0.0) * (link.evt_size or 0.0)
        hosts = {deployment.get(comp_a), deployment.get(comp_b)}
        for host in hosts:
            if host in traffic:
                traffic[host] += volume
    return traffic


def worst_host(model: DeploymentModel,
               exclude: Iterable[str] = ()) -> str:
    """The host whose loss removes the most interaction traffic."""
    traffic = host_traffic(model)
    excluded = set(exclude)
    candidates = [h for h in model.host_ids if h not in excluded]
    if not candidates:
        raise FaultPlanError("no candidate hosts left after exclusions")
    # Ties break on host id so the choice is deterministic.
    return max(candidates, key=lambda h: (traffic[h], h))


def random_churn(model: DeploymentModel, duration: float, seed: int,
                 events: int = 12,
                 crash_fraction: float = 0.25,
                 exclude_hosts: Iterable[str] = ()) -> FaultPlan:
    """Seeded random churn: link flaps, loss bursts, and short host
    crashes scattered across the campaign.

    Args:
        events: Total number of fault events to generate.
        crash_fraction: Share of events that are host crashes (the rest
            split between flaps and loss bursts).
        exclude_hosts: Hosts never crashed (e.g. the master).
    """
    rng = random.Random(seed)
    links = _link_targets(model)
    if not links:
        raise FaultPlanError("model has no physical links to churn")
    excluded = set(exclude_hosts)
    crashable = [h for h in model.host_ids if h not in excluded]
    actions: List[FaultAction] = []
    for _ in range(events):
        time = round(rng.uniform(0.0, duration * 0.8), 3)
        roll = rng.random()
        if roll < crash_fraction and crashable:
            host = rng.choice(crashable)
            outage = round(rng.uniform(duration * 0.05, duration * 0.15), 3)
            actions.append(FaultAction(time, "host_crash", (host,),
                                       {"duration": outage}))
        elif roll < crash_fraction + (1.0 - crash_fraction) / 2.0:
            link = rng.choice(links)
            period = round(rng.uniform(1.0, 4.0), 3)
            count = rng.randint(2, 5)
            actions.append(FaultAction(time, "flap", link,
                                       {"period": period, "count": count}))
        else:
            link = rng.choice(links)
            value = round(rng.uniform(0.0, 0.3), 3)
            burst = round(rng.uniform(duration * 0.05, duration * 0.2), 3)
            actions.append(FaultAction(time, "loss_burst", link,
                                       {"value": value, "duration": burst}))
    return FaultPlan(name=f"random-churn-s{seed}", duration=duration,
                     actions=actions)


def rolling_partitions(model: DeploymentModel, duration: float,
                       group_size: int = 1,
                       hold: Optional[float] = None,
                       gap: Optional[float] = None,
                       exclude_hosts: Iterable[str] = ()) -> FaultPlan:
    """Partition one host group after another across the campaign.

    Groups of *group_size* hosts (in host-id order, skipping
    *exclude_hosts*) are isolated in sequence; each partition holds for
    *hold* seconds and the next begins *gap* seconds after the previous
    heals.  Defaults spread the rolling cut evenly over *duration*.
    """
    hosts = [h for h in model.host_ids if h not in set(exclude_hosts)]
    if group_size < 1:
        raise FaultPlanError("group_size must be >= 1")
    groups = [tuple(hosts[i:i + group_size])
              for i in range(0, len(hosts), group_size)]
    # Isolating *every* host is just a full outage; drop a trailing group
    # that would leave nothing on the other side of the cut.
    groups = [g for g in groups if len(g) < len(model.host_ids)]
    if not groups:
        raise FaultPlanError("no host groups to partition")
    slot = duration / len(groups)
    if hold is None:
        hold = slot * 0.6
    if gap is None:
        gap = slot - hold
    if hold <= 0 or hold + max(gap, 0.0) > slot + 1e-9:
        raise FaultPlanError(
            f"hold {hold:g} + gap {gap:g} does not fit the "
            f"{slot:g} s slot per group")
    actions = [FaultAction(round(i * slot, 6), "partition", group,
                           {"duration": round(hold, 6)})
               for i, group in enumerate(groups)]
    return FaultPlan(name=f"rolling-partitions-g{group_size}",
                     duration=duration, actions=actions)


def targeted_attack(model: DeploymentModel, duration: float,
                    strikes: int = 2,
                    exclude_hosts: Sequence[str] = (),
                    victim: Optional[str] = None) -> FaultPlan:
    """Crash the highest-traffic host repeatedly for most of the campaign.

    The victim is derived from the model via :func:`worst_host` unless
    given explicitly.  *strikes* crashes are spread over the campaign,
    each holding the victim down for ~60% of its slot — long enough that
    only redeployment (not patience) recovers the lost availability.
    """
    if strikes < 1:
        raise FaultPlanError("strikes must be >= 1")
    target = victim if victim is not None \
        else worst_host(model, exclude=exclude_hosts)
    if not model.has_host(target):
        raise FaultPlanError(f"unknown victim host {target!r}")
    slot = duration / strikes
    actions = [FaultAction(round(i * slot + slot * 0.1, 6), "host_crash",
                           (target,), {"duration": round(slot * 0.6, 6)})
               for i in range(strikes)]
    return FaultPlan(name=f"targeted-attack-{target}", duration=duration,
                     actions=actions)


#: Registry for the CLI's ``faults generate`` verb.
CAMPAIGNS = {
    "random-churn": random_churn,
    "rolling-partitions": rolling_partitions,
    "targeted-attack": targeted_attack,
}


def generate_campaign(name: str, model: DeploymentModel, duration: float,
                      seed: int = 0, **kwargs) -> FaultPlan:
    """Build the named campaign for *model* (CLI entry point).

    Only :func:`random_churn` is stochastic; the seed is ignored by the
    deterministic generators.
    """
    try:
        factory = CAMPAIGNS[name]
    except KeyError:
        raise FaultPlanError(
            f"unknown campaign {name!r}; expected one of "
            f"{', '.join(sorted(CAMPAIGNS))}") from None
    if factory is random_churn:
        return factory(model, duration, seed, **kwargs)
    return factory(model, duration, **kwargs)
