"""Resilience scoring: run a fault campaign against a live system.

:func:`run_campaign` is the end-to-end harness behind
``python -m repro faults run``: it builds a scenario system, arms a
:class:`~repro.faults.injector.FaultInjector` with the given plan,
drives the interaction workload (and, unless disabled, the closed
improvement loop with its hardened effector), and distills the run into
a :class:`ResilienceReport`:

* **delivered availability** — the ground-truth fraction of application
  events that arrived, against the **model-predicted** availability of
  the final deployment over the final link parameters (the paper's
  central number, Section 4's availability function);
* **migration health** — redeployments attempted/succeeded, total
  effector retries and rollbacks, middleware-level retransmissions and
  source-side restores;
* **mean time to recover** — the average injected-outage duration
  actually experienced (auto-heals, heals, restarts), plus the average
  simulated duration of successful redeployments.

Reports are deterministic: the same (plan, seed) renders byte-identical
JSON (wall-clock timing is excluded unless asked for), which the
reproducibility test asserts and the CI smoke job archives.
"""

from __future__ import annotations

import gc
import json
import pickle
import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core import AvailabilityObjective
from repro.core.errors import FaultPlanError
from repro.core.framework import CentralizedFramework
from repro.core.report import ReportBase, deprecated_alias
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.middleware.runtime import AppComponent, DistributedSystem
from repro.obs import MetricsRegistry, Observability, get_observability
from repro.obs.trace import NULL_TRACER
from repro.scenarios import (
    CrisisConfig, build_client_server, build_crisis_scenario,
    build_sensor_field,
)
from repro.sim import InteractionWorkload, SimClock

#: Scenario builders usable by the harness and the CLI's ``faults`` verb.
#: Each returns an object with ``model``/``constraints`` (and optionally
#: ``user_input`` and a master-host attribute such as ``hq``).
SCENARIOS: Dict[str, Callable[[Optional[int]], Any]] = {
    "crisis": lambda seed: build_crisis_scenario(CrisisConfig(seed=seed)),
    "sensorfield": lambda seed: build_sensor_field(seed=seed),
    "clientserver": lambda seed: build_client_server(seed=seed),
}

#: Pause the cyclic garbage collector while a campaign's clock runs.
#: The hot path churns millions of short-lived *acyclic* objects (events,
#: wire dicts, heap entries) that reference counting reclaims by itself;
#: all the generational collector does during a run is repeatedly rescan
#: the growing live set, which costs ~10% of campaign wall time at high
#: message rates.  Cycles created during a run (there are a handful, in
#: long-lived topology objects) are collected as usual once the campaign
#: finishes and the collector resumes.
PAUSE_GC_DURING_CAMPAIGNS = True


@dataclass
class ResilienceReport(ReportBase):
    """What a fault campaign did to the system, and how it coped."""

    plan_name: str
    scenario: str
    seed: int
    duration: float
    improvement_loop: bool
    # Availability.
    events_sent: int
    events_received: int
    emissions_skipped: int
    delivered_availability: float
    modeled_availability: float
    # Fault pressure.
    faults_injected: int
    faults_by_kind: Dict[str, int]
    outages: int
    mean_outage_duration: float
    # Migration health.
    migrations_attempted: int
    migrations_succeeded: int
    migration_success_rate: float
    effector_retries: int
    rollbacks: int
    retransmissions: int
    restores: int
    mean_recovery_time: float
    # Wall-clock cost (timing; excluded from canonical renders).
    wall_seconds: float = 0.0
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def availability_gap(self) -> float:
        """Delivered minus modeled: negative when reality underperforms
        the model's prediction."""
        return self.delivered_availability - self.modeled_availability

    def to_dict(self, include_timing: bool = False,
                **opts: Any) -> Dict[str, Any]:
        out = {
            "plan": self.plan_name,
            "scenario": self.scenario,
            "seed": self.seed,
            "duration": self.duration,
            "improvement_loop": self.improvement_loop,
            "availability": {
                "events_sent": self.events_sent,
                "events_received": self.events_received,
                "emissions_skipped": self.emissions_skipped,
                "delivered": round(self.delivered_availability, 9),
                "modeled": round(self.modeled_availability, 9),
                "gap": round(self.availability_gap, 9),
            },
            "faults": {
                "injected": self.faults_injected,
                "by_kind": dict(sorted(self.faults_by_kind.items())),
                "outages": self.outages,
                "mean_outage_duration": round(self.mean_outage_duration, 9),
            },
            "migrations": {
                "attempted": self.migrations_attempted,
                "succeeded": self.migrations_succeeded,
                "success_rate": round(self.migration_success_rate, 9),
                "effector_retries": self.effector_retries,
                "rollbacks": self.rollbacks,
                "retransmissions": self.retransmissions,
                "restores": self.restores,
                "mean_recovery_time": round(self.mean_recovery_time, 9),
            },
        }
        if self.detail:
            out["detail"] = self.detail
        if include_timing:
            out["timing"] = {"wall_seconds": self.wall_seconds}
        return out

    def render(self, include_timing: bool = False, indent: int = 2,
               **opts: Any) -> str:
        """Canonical JSON; byte-identical across runs of the same
        (plan, seed) when timing is excluded (the default)."""
        return json.dumps(self.to_dict(include_timing=include_timing),
                          indent=indent, sort_keys=True)

    def summary_line(self) -> str:
        return (f"{self.plan_name} on {self.scenario} (seed {self.seed}): "
                f"delivered {self.delivered_availability:.3f} vs modeled "
                f"{self.modeled_availability:.3f}; "
                f"{self.migrations_succeeded}/{self.migrations_attempted} "
                f"migrations, {self.effector_retries} retries, "
                f"{self.rollbacks} rollbacks")

    as_dict = deprecated_alias("to_dict", "as_dict")
    summary = deprecated_alias("summary_line", "summary")


@dataclass
class CampaignSuiteReport(ReportBase):
    """Outcomes of a (plans x seeds) fault-campaign suite.

    Runs appear in job order (plans in the order given, seeds in the
    order given within each plan), regardless of how many workers
    executed them — serial and parallel suites of the same inputs render
    byte-identically.
    """

    scenario: str
    runs: List[ResilienceReport] = field(default_factory=list)

    def run(self, plan_name: str, seed: int) -> ResilienceReport:
        """The run for (plan, seed); raises ``KeyError`` when absent."""
        for report in self.runs:
            if report.plan_name == plan_name and report.seed == seed:
                return report
        raise KeyError((plan_name, seed))

    @property
    def mean_delivered_availability(self) -> float:
        if not self.runs:
            return 1.0
        return (sum(r.delivered_availability for r in self.runs)
                / len(self.runs))

    @property
    def worst_delivered_availability(self) -> float:
        if not self.runs:
            return 1.0
        return min(r.delivered_availability for r in self.runs)

    def aggregate(self) -> Dict[str, Any]:
        """Suite-level totals and means over every run."""
        runs = self.runs
        return {
            "campaigns": len(runs),
            "events_sent": sum(r.events_sent for r in runs),
            "events_received": sum(r.events_received for r in runs),
            "emissions_skipped": sum(r.emissions_skipped for r in runs),
            "mean_delivered": round(self.mean_delivered_availability, 9),
            "worst_delivered": round(self.worst_delivered_availability, 9),
            "mean_modeled": round(
                (sum(r.modeled_availability for r in runs) / len(runs))
                if runs else 1.0, 9),
            "faults_injected": sum(r.faults_injected for r in runs),
            "migrations_attempted": sum(r.migrations_attempted
                                        for r in runs),
            "migrations_succeeded": sum(r.migrations_succeeded
                                        for r in runs),
            "effector_retries": sum(r.effector_retries for r in runs),
            "rollbacks": sum(r.rollbacks for r in runs),
            "retransmissions": sum(r.retransmissions for r in runs),
            "restores": sum(r.restores for r in runs),
        }

    def to_dict(self, include_timing: bool = False,
                **opts: Any) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "aggregate": self.aggregate(),
            "runs": [r.to_dict(include_timing=include_timing)
                     for r in self.runs],
        }

    def render(self, include_timing: bool = False, indent: int = 2,
               **opts: Any) -> str:
        """Canonical JSON; byte-identical for the same (plans, seeds)
        whether the suite ran serially or across worker processes."""
        return json.dumps(self.to_dict(include_timing=include_timing),
                          indent=indent, sort_keys=True)

    def summary_line(self) -> str:
        plans = sorted({r.plan_name for r in self.runs})
        seeds = sorted({r.seed for r in self.runs})
        return (f"suite on {self.scenario}: {len(self.runs)} campaigns "
                f"({len(plans)} plans x {len(seeds)} seeds), mean "
                f"delivered {self.mean_delivered_availability:.3f}, worst "
                f"{self.worst_delivered_availability:.3f}")


def _delivery_counts(system: DistributedSystem) -> Dict[str, int]:
    sent = received = 0
    for architecture in system.architectures.values():
        for component in architecture.components:
            if isinstance(component, AppComponent):
                sent += component.sent_count
                received += component.received_count
    return {"sent": sent, "received": received}


def run_campaign(plan: Union[FaultPlan, Sequence[FaultPlan]],
                 seed: int = 0, scenario: str = "crisis",
                 duration: Optional[float] = None, improve: bool = True,
                 monitor_interval: float = 2.0,
                 cycles_per_analysis: int = 2,
                 system_factory: Optional[
                     Callable[[SimClock, int], DistributedSystem]] = None,
                 planner: bool = False,
                 effector_options: Optional[Dict[str, Any]] = None,
                 obs: Optional[Observability] = None,
                 clock_factory: Optional[Callable[[], SimClock]] = None,
                 rate_scale: float = 1.0,
                 seeds: Optional[Sequence[int]] = None,
                 workers: Optional[int] = None,
                 ) -> Union[ResilienceReport, "CampaignSuiteReport"]:
    """Execute *plan* against a freshly built scenario system.

    Args:
        plan: The fault campaign (validated against the scenario model
            before arming).  A sequence of plans runs a suite (see
            *seeds*/*workers*).
        seed: Master seed: network loss trials, workload phases, analyzer
            and effector jitter all derive from it, so the report is a
            pure function of (plan, seed).
        scenario: One of :data:`SCENARIOS` (ignored with
            *system_factory*).
        duration: Simulated seconds to run; defaults to the plan's.
        improve: Run the closed improvement loop (monitoring, analysis,
            redeployment).  With ``False`` the system only endures —
            the baseline for the with/without-redeployment experiment.
        system_factory: Optional ``(clock, seed) -> DistributedSystem``
            override for custom topologies (tests use tiny ones).
        planner: Run redeployments through :mod:`repro.plan` wave
            scheduling (barrier rollback + re-planning) instead of the
            naive all-at-once effector path; the planner-vs-naive contrast
            under the same fault plan and seed is the headline experiment
            of ``docs/PLANNING.md``.
        effector_options: Extra :class:`MiddlewareEffector` keyword
            arguments (timeouts, retry budget, backoff shape), applied
            identically to both enactment strategies so comparisons stay
            fair.
        obs: Observability bundle instrumenting the run.  Defaults to the
            process-wide bundle (a no-op unless one was installed); pass an
            enabled bundle to capture per-subsystem metrics and spans for
            ``python -m repro obs report``.
        clock_factory: Builds the simulation clock for each run; defaults
            to :class:`~repro.sim.clock.SimClock`.  Benchmarks pass
            :class:`~repro.sim.clock.LegacySimClock` here to measure the
            pre-batching scheduler against identical campaigns.
        rate_scale: Multiplier applied to every interaction frequency of
            the workload (``InteractionWorkload(rate_scale=...)``) — lets
            benchmarks raise message pressure without editing the model.
            Part of the determinism key: reports are pure functions of
            (plan, seed, rate_scale).
        seeds: Run the plan(s) once per seed and return a
            :class:`CampaignSuiteReport` instead of a single report.
        workers: Process-pool fan-out for suites.  ``None``/1 runs every
            (plan, seed) job serially in-process; ``N > 1`` maps the same
            jobs over ``N`` worker processes.  Both modes execute the
            identical module-level job function per campaign, so for the
            same inputs the suite renders byte-identically — campaigns
            are pure functions of (plan, seed), and worker-side metrics
            ship home as lines merged into *obs* just as in
            :class:`repro.desi.batch.ExperimentRunner`.  Factories
            (*system_factory*, *clock_factory*) must be picklable in
            workers mode.

    Passing a plan sequence, *seeds*, or *workers* selects suite mode
    (the return value is a :class:`CampaignSuiteReport`); otherwise the
    classic single :class:`ResilienceReport` comes back.
    """
    if workers is not None and workers < 1:
        raise FaultPlanError("workers must be >= 1")
    if isinstance(plan, FaultPlan):
        plans: List[FaultPlan] = [plan]
        suite = seeds is not None or workers is not None
    else:
        plans = list(plan)
        if not plans:
            raise FaultPlanError("need at least one fault plan")
        suite = True
    if not suite:
        return _run_single_campaign(
            plans[0], seed, scenario, duration, improve, monitor_interval,
            cycles_per_analysis, system_factory, planner, effector_options,
            obs, clock_factory, rate_scale)
    seed_list = [seed] if seeds is None else [int(s) for s in seeds]
    if not seed_list:
        raise FaultPlanError("seeds must be non-empty")
    return _run_suite(plans, seed_list, workers, scenario, duration,
                      improve, monitor_interval, cycles_per_analysis,
                      system_factory, planner, effector_options, obs,
                      clock_factory, rate_scale)


def _run_single_campaign(
        plan: FaultPlan, seed: int, scenario: str,
        duration: Optional[float], improve: bool, monitor_interval: float,
        cycles_per_analysis: int,
        system_factory: Optional[Callable[[SimClock, int],
                                          DistributedSystem]],
        planner: bool, effector_options: Optional[Dict[str, Any]],
        obs: Optional[Observability],
        clock_factory: Optional[Callable[[], SimClock]],
        rate_scale: float = 1.0,
        ) -> ResilienceReport:
    """One campaign, exactly as :func:`run_campaign` always ran it."""
    started_wall = _time.perf_counter()
    run_for = plan.duration if duration is None else float(duration)
    clock = clock_factory() if clock_factory is not None else SimClock()
    obs = obs if obs is not None else get_observability()
    if obs.enabled:
        obs.bind_clock(clock)
    framework: Optional[CentralizedFramework] = None
    objective = AvailabilityObjective()
    if system_factory is not None:
        system = system_factory(clock, seed)
        scenario_name = "custom"
        model = system.model
    else:
        try:
            built = SCENARIOS[scenario](seed)
        except KeyError:
            raise FaultPlanError(
                f"unknown scenario {scenario!r}; expected one of "
                f"{', '.join(sorted(SCENARIOS))}") from None
        scenario_name = scenario
        model = built.model
        master = getattr(built, "hq", None)
        system = DistributedSystem(model, clock, master_host=master,
                                   seed=seed, obs=obs)
        if improve:
            framework = CentralizedFramework(
                system, objective, built.constraints,
                user_input=getattr(built, "user_input", None),
                monitor_interval=monitor_interval, seed=seed,
                planner=planner, effector_options=effector_options,
                obs=obs)
    if improve and framework is None and system_factory is not None \
            and system.deployer is not None:
        framework = CentralizedFramework(
            system, objective, monitor_interval=monitor_interval,
            seed=seed, planner=planner,
            effector_options=effector_options, obs=obs)

    injector = FaultInjector(system.network, plan, model=model, obs=obs)
    injector.arm()
    workload = InteractionWorkload(model, clock, system.emit,
                                   seed=seed + 1,
                                   rate_scale=rate_scale).start()
    if framework is not None:
        framework.start(cycles_per_analysis=cycles_per_analysis)

    resume_gc = PAUSE_GC_DURING_CAMPAIGNS and gc.isenabled()
    if resume_gc:
        gc.disable()
    try:
        clock.run(run_for)
    finally:
        if resume_gc:
            gc.enable()

    workload.stop()
    if framework is not None:
        framework.stop()
    injector.disarm()

    counts = _delivery_counts(system)
    delivered = (counts["received"] / counts["sent"]
                 if counts["sent"] else 1.0)
    system.network.apply_to_model(model)
    final_deployment = system.actual_deployment()
    modeled = objective.evaluate(model, final_deployment)
    # Post-campaign sanity: whatever the faults did, the system must end
    # statically valid — every component on exactly one live host.
    from repro.lint.model_rules import verify_deployment
    post_lint = verify_deployment(model, final_deployment)

    faults_by_kind: Dict[str, int] = {}
    for entry in injector.log:
        faults_by_kind[entry["kind"]] = \
            faults_by_kind.get(entry["kind"], 0) + 1
    outage_durations = [end - start
                        for __, __, start, end in injector.outages]
    outage_durations += [clock.now - start
                         for __, __, start in injector.open_outages()]
    mean_outage = (sum(outage_durations) / len(outage_durations)
                   if outage_durations else 0.0)

    history = framework.effector.history if framework is not None else []
    attempted = len(history)
    succeeded = sum(1 for r in history if r.succeeded)
    recovery_times = [r.sim_duration for r in history
                      if r.succeeded and r.moves_executed]
    retransmissions = sum(a.retransmissions for a in system.admins.values())
    restores = sum(a.restores for a in system.admins.values())

    wall = _time.perf_counter() - started_wall
    detail: Dict[str, Any] = {"post_lint_errors": len(post_lint.errors)}
    if planner:
        detail["planner"] = {
            "barrier_rollbacks": sum(
                r.detail.get("barrier_rollbacks", 0) for r in history),
            "replans": sum(r.detail.get("replans", 0) for r in history),
            "waves_completed": sum(
                r.detail.get("waves_completed", 0) for r in history),
        }
    return ResilienceReport(
        plan_name=plan.name,
        scenario=scenario_name,
        seed=seed,
        duration=run_for,
        improvement_loop=framework is not None,
        events_sent=counts["sent"],
        events_received=counts["received"],
        emissions_skipped=system.emissions_skipped,
        delivered_availability=delivered,
        modeled_availability=modeled,
        faults_injected=injector.actions_applied,
        faults_by_kind=faults_by_kind,
        outages=len(outage_durations),
        mean_outage_duration=mean_outage,
        migrations_attempted=attempted,
        migrations_succeeded=succeeded,
        migration_success_rate=(succeeded / attempted if attempted else 1.0),
        effector_retries=sum(r.retries for r in history),
        rollbacks=sum(1 for r in history if r.rolled_back),
        retransmissions=retransmissions,
        restores=restores,
        mean_recovery_time=(sum(recovery_times) / len(recovery_times)
                            if recovery_times else 0.0),
        wall_seconds=wall,
        detail=detail,
    )


def _campaign_job(job: Tuple) -> Tuple[ResilienceReport, Optional[list]]:
    """One (plan, seed) campaign; module-level so process pools can
    pickle it.  Serial suites run this very function inline, so the two
    modes cannot diverge.  When the suite is observed the job records
    into a private registry and returns its metric lines for parent-side
    merging — registries never cross the process boundary."""
    (plan, job_seed, scenario, duration, improve, monitor_interval,
     cycles_per_analysis, system_factory, planner, effector_options,
     clock_factory, rate_scale, observed) = job
    registry = MetricsRegistry() if observed else None
    job_obs = (Observability(metrics=registry, tracer=NULL_TRACER)
               if registry is not None else Observability.disabled())
    report = _run_single_campaign(
        plan, job_seed, scenario, duration, improve, monitor_interval,
        cycles_per_analysis, system_factory, planner, effector_options,
        job_obs, clock_factory, rate_scale)
    return report, (registry.to_lines() if registry is not None else None)


def _check_picklable(plans: Sequence[FaultPlan], **named: Any) -> None:
    """Reject unpicklable suite inputs before spawning any worker."""
    named = dict(named, plans=tuple(plans))
    for name in sorted(named):
        try:
            pickle.dumps(named[name])
        except Exception as exc:
            raise FaultPlanError(
                f"workers mode requires picklable campaign inputs, but "
                f"{name!r} cannot be pickled ({exc}); use module-level "
                "functions or functools.partial instead of lambdas or "
                "closures") from exc


def _run_suite(plans: List[FaultPlan], seeds: List[int],
               workers: Optional[int], scenario: str,
               duration: Optional[float], improve: bool,
               monitor_interval: float, cycles_per_analysis: int,
               system_factory: Optional[Callable[[SimClock, int],
                                                 DistributedSystem]],
               planner: bool, effector_options: Optional[Dict[str, Any]],
               obs: Optional[Observability],
               clock_factory: Optional[Callable[[], SimClock]],
               rate_scale: float = 1.0,
               ) -> CampaignSuiteReport:
    """Fan (plans x seeds) out over a process pool (or run serially)."""
    obs = obs if obs is not None else get_observability()
    observed = obs.metrics.enabled
    jobs = [
        (plan, job_seed, scenario, duration, improve, monitor_interval,
         cycles_per_analysis, system_factory, planner, effector_options,
         clock_factory, rate_scale, observed)
        for plan in plans for job_seed in seeds
    ]
    with obs.span("faults.suite", plans=len(plans), seeds=len(seeds),
                  workers=workers or 1):
        if workers is not None and workers > 1:
            _check_picklable(plans, system_factory=system_factory,
                             clock_factory=clock_factory,
                             effector_options=effector_options)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(_campaign_job, jobs))
        else:
            outcomes = [_campaign_job(job) for job in jobs]
        suite = CampaignSuiteReport(
            scenario="custom" if system_factory is not None else scenario)
        for report, metric_lines in outcomes:
            suite.runs.append(report)
            if not obs.enabled:
                continue
            if metric_lines:
                shipped = MetricsRegistry()
                for line in metric_lines:
                    shipped.load_line(line)
                obs.metrics.merge(shipped)
            with obs.span("faults.campaign", plan=report.plan_name,
                          seed=report.seed) as span:
                span.set(delivered=report.delivered_availability,
                         faults=report.faults_injected,
                         migrations=report.migrations_succeeded)
    return suite
