"""Declarative fault-injection plans.

The paper's premise is that "network disconnections during system
execution", bandwidth fluctuation, and unreliable links are the *normal*
operating regime (Section 1) — yet a reproduction that can only wait for
:mod:`repro.sim.fluctuation` to roll bad dice cannot script the paper's
failure scenarios on demand, let alone reproduce them bit-for-bit.  A
:class:`FaultPlan` fixes that: an ordered list of timed
:class:`FaultAction` s (host crash/restart, link partition/heal,
reliability/bandwidth degradation, link flapping, correlated loss bursts)
that :class:`~repro.faults.injector.FaultInjector` schedules on the
:class:`~repro.sim.clock.SimClock`, so a campaign is a pure function of
(plan, seed).

Plans are data, not code: they round-trip through JSON and through an
xADL-adjacent XML form (``<faultPlan>``), can be produced by the campaign
generators of :mod:`repro.faults.campaigns`, and are statically verified by
the ``FP001``–``FP004`` lint rules before anything is armed.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.errors import FaultPlanError
from repro.core.model import DeploymentModel

#: Action kinds targeting a single host.
HOST_KINDS = frozenset({"host_crash", "host_restart"})
#: Action kinds targeting one link (a pair of endpoints).
LINK_KINDS = frozenset({"link_down", "link_up", "set_reliability",
                        "set_bandwidth", "flap", "loss_burst"})
#: Action kinds targeting a host group (one side of a cut).
GROUP_KINDS = frozenset({"partition", "heal"})
KINDS = HOST_KINDS | LINK_KINDS | GROUP_KINDS

#: Parameter names with a duration/period meaning (must be non-negative).
_TIMELIKE_PARAMS = ("duration", "period")


def _freeze(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    out = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        out.append((key, value))
    return tuple(out)


@dataclass(frozen=True)
class FaultAction:
    """One timed fault: *kind* applied to *target* at simulated *time*.

    ``target`` is ``(host,)`` for host kinds, ``(end_a, end_b)`` for link
    kinds, and the host group (one side of the cut) for ``partition`` /
    ``heal``.  ``params`` carries kind-specific knobs:

    * ``set_reliability`` / ``set_bandwidth`` — ``value``;
    * ``loss_burst`` — ``value`` (degraded reliability) and ``duration``;
    * ``flap`` — ``period`` (one full down+up cycle) and ``count``;
    * ``partition`` — optional ``duration`` (auto-heal after it elapses);
    * ``host_crash`` — optional ``duration`` (auto-restart).
    """

    time: float
    kind: str
    target: Tuple[str, ...] = ()
    params: Tuple[Tuple[str, Any], ...] = ()

    def __init__(self, time: float, kind: str,
                 target: Sequence[str] = (),
                 params: Optional[Mapping[str, Any]] = None,
                 **kwargs: Any):
        object.__setattr__(self, "time", float(time))
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "target", tuple(target))
        merged = dict(params or {})
        merged.update(kwargs)
        object.__setattr__(self, "params", _freeze(merged))

    @property
    def param_map(self) -> Dict[str, Any]:
        return dict(self.params)

    def param(self, name: str, default: Any = None) -> Any:
        return self.param_map.get(name, default)

    @property
    def end_time(self) -> float:
        """When the action's *effect* ends (start time for instant kinds)."""
        extent = 0.0
        params = self.param_map
        duration = params.get("duration")
        if duration is not None:
            extent = max(extent, float(duration))
        if self.kind == "flap":
            extent = max(extent, float(params.get("period", 1.0))
                         * int(params.get("count", 1)))
        return self.time + extent

    def problems(self) -> Tuple[str, ...]:
        """Structural problems with this action alone (no model needed)."""
        out = []
        if self.kind not in KINDS:
            out.append(f"unknown action kind {self.kind!r}")
            return tuple(out)
        if self.time < 0:
            out.append(f"negative action time {self.time:g}")
        if self.kind in HOST_KINDS and len(self.target) != 1:
            out.append(f"{self.kind} needs exactly one target host, "
                       f"got {list(self.target)!r}")
        if self.kind in LINK_KINDS and len(self.target) != 2:
            out.append(f"{self.kind} needs a (host, host) link target, "
                       f"got {list(self.target)!r}")
        if self.kind in GROUP_KINDS and not self.target:
            out.append(f"{self.kind} needs a non-empty host group")
        params = self.param_map
        for name in _TIMELIKE_PARAMS:
            value = params.get(name)
            if value is not None and float(value) < 0:
                out.append(f"negative {name} {float(value):g}")
        if self.kind in ("set_reliability", "set_bandwidth", "loss_burst") \
                and "value" not in params:
            out.append(f"{self.kind} requires a 'value' parameter")
        if self.kind == "loss_burst" and "duration" not in params:
            out.append("loss_burst requires a 'duration' parameter")
        if self.kind == "flap":
            if float(params.get("period", 1.0)) <= 0:
                out.append("flap period must be positive")
            if int(params.get("count", 1)) < 1:
                out.append("flap count must be >= 1")
        return tuple(out)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"time": self.time, "kind": self.kind,
                               "target": list(self.target)}
        if self.params:
            out["params"] = {k: (list(v) if isinstance(v, tuple) else v)
                             for k, v in self.params}
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultAction":
        try:
            return cls(time=data["time"], kind=data["kind"],
                       target=data.get("target") or (),
                       params=data.get("params") or {})
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault action {data!r}: {exc}") \
                from exc


@dataclass(frozen=True)
class FaultPlan:
    """A named, bounded campaign of fault actions.

    Construction is lenient (so the lint rules can report *every* problem
    of a loaded plan at once); :meth:`validate` is the strict gate the
    injector runs before arming.
    """

    name: str
    duration: float
    actions: Tuple[FaultAction, ...] = field(default_factory=tuple)

    def __init__(self, name: str, duration: float,
                 actions: Iterable[FaultAction] = ()):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "duration", float(duration))
        object.__setattr__(self, "actions", tuple(
            sorted(actions, key=lambda a: (a.time, a.kind, a.target))))

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    @property
    def is_empty(self) -> bool:
        return not self.actions

    def problems(self, model: Optional[DeploymentModel] = None,
                 ) -> Tuple[str, ...]:
        """Every structural problem in the plan (and, given *model*,
        every dangling host/link reference)."""
        out = []
        if self.duration < 0:
            out.append(f"negative campaign duration {self.duration:g}")
        for action in self.actions:
            prefix = f"t={action.time:g} {action.kind}: "
            out.extend(prefix + p for p in action.problems())
            if action.time > self.duration:
                out.append(prefix + "scheduled after the campaign end "
                           f"({self.duration:g})")
            if model is not None:
                out.extend(prefix + p
                           for p in reference_problems(action, model))
        return tuple(out)

    def validate(self, model: Optional[DeploymentModel] = None) -> None:
        """Raise :class:`FaultPlanError` listing every problem found."""
        problems = self.problems(model)
        if problems:
            shown = "; ".join(problems[:5])
            more = len(problems) - 5
            if more > 0:
                shown += f"; ... and {more} more"
            raise FaultPlanError(
                f"fault plan {self.name!r} is invalid: {shown}")

    # -- serialization ----------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "duration": self.duration,
                "actions": [a.as_dict() for a in self.actions]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        try:
            name = data["name"]
            duration = data["duration"]
        except KeyError as exc:
            raise FaultPlanError(
                f"fault plan is missing required key {exc.args[0]!r}") \
                from exc
        actions = [FaultAction.from_dict(item)
                   for item in data.get("actions") or ()]
        return cls(name=name, duration=duration, actions=actions)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") \
                from exc
        if not isinstance(data, Mapping):
            raise FaultPlanError("fault plan JSON must be an object")
        return cls.from_dict(data)

    # -- xADL-adjacent XML ------------------------------------------------
    def to_xml(self) -> str:
        root = ET.Element("faultPlan",
                          {"name": self.name,
                           "duration": repr(self.duration)})
        for action in self.actions:
            attrs = {"time": repr(action.time), "kind": action.kind,
                     "target": ",".join(action.target)}
            for key, value in action.params:
                if isinstance(value, tuple):
                    value = ",".join(str(v) for v in value)
                attrs[key] = str(value)
            ET.SubElement(root, "action", attrs)
        ET.indent(root)
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "FaultPlan":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise FaultPlanError(f"fault plan is not well-formed XML: {exc}") \
                from exc
        if root.tag != "faultPlan":
            raise FaultPlanError(
                f"expected a <faultPlan> root, got <{root.tag}>")
        if "name" not in root.attrib or "duration" not in root.attrib:
            raise FaultPlanError(
                "<faultPlan> requires 'name' and 'duration' attributes")
        actions = []
        for element in root:
            if element.tag != "action":
                continue
            attrs = dict(element.attrib)
            try:
                time = float(attrs.pop("time"))
                kind = attrs.pop("kind")
            except KeyError as exc:
                raise FaultPlanError(
                    f"<action> is missing attribute {exc.args[0]!r}") \
                    from exc
            target = tuple(t for t in attrs.pop("target", "").split(",") if t)
            params: Dict[str, Any] = {}
            for key, raw in attrs.items():
                params[key] = _parse_xml_value(key, raw)
            actions.append(FaultAction(time=time, kind=kind, target=target,
                                       params=params))
        try:
            duration = float(root.attrib["duration"])
        except ValueError as exc:
            raise FaultPlanError(f"bad campaign duration: {exc}") from exc
        return cls(name=root.attrib["name"], duration=duration,
                   actions=actions)


def _parse_xml_value(key: str, raw: str) -> Any:
    if key == "count":
        try:
            return int(raw)
        except ValueError as exc:
            raise FaultPlanError(f"bad integer for {key!r}: {raw!r}") from exc
    try:
        return float(raw)
    except ValueError:
        return raw


def reference_problems(action: FaultAction,
                       model: DeploymentModel) -> Tuple[str, ...]:
    """Dangling host/link references of *action* against *model*."""
    out = []
    if action.kind in HOST_KINDS or action.kind in GROUP_KINDS:
        for host in action.target:
            if not model.has_host(host):
                out.append(f"unknown host {host!r}")
    elif action.kind in LINK_KINDS and len(action.target) == 2:
        a, b = action.target
        for host in (a, b):
            if not model.has_host(host):
                out.append(f"unknown host {host!r}")
        if (model.has_host(a) and model.has_host(b)
                and model.physical_link(a, b) is None):
            out.append(f"no physical link {a!r}<->{b!r} in the model")
    return tuple(out)


def load_plan(path: str) -> FaultPlan:
    """Load a plan from a ``.json`` or ``.xml`` file (by extension, with a
    content sniff fallback)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    lower = path.lower()
    if lower.endswith(".xml"):
        return FaultPlan.from_xml(text)
    if lower.endswith(".json"):
        return FaultPlan.from_json(text)
    stripped = text.lstrip()
    if stripped.startswith("<"):
        return FaultPlan.from_xml(text)
    return FaultPlan.from_json(text)


def save_plan(plan: FaultPlan, path: str) -> None:
    """Write *plan* as JSON or XML depending on the file extension."""
    document = plan.to_xml() if path.lower().endswith(".xml") \
        else plan.to_json()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document + "\n")
