"""Deterministic execution of fault plans on the simulated network.

The :class:`FaultInjector` turns a validated
:class:`~repro.faults.plan.FaultPlan` into scheduled callbacks on the
network's :class:`~repro.sim.clock.SimClock`.  It owns **no randomness**:
every action fires at its declared simulated time and mutates links only
through the network's notifying setters (:meth:`set_connected`,
:meth:`set_reliability`, :meth:`set_bandwidth`), so the middleware's
offline-queue and monitoring machinery observes injected faults exactly
like organic ones, and the same (plan, network seed) pair replays
bit-for-bit.

Host crashes are modeled as severing every link that touches the host —
the paper's system model only sees a host through its links, so a crashed
host and a fully unreachable host are indistinguishable to every other
node.  The injector remembers each link's pre-fault connectivity and
restores precisely that on ``host_restart`` / ``heal``, which keeps
crash/partition effects strictly scoped: a link that was already down
stays down after recovery.

Nothing here touches the network's send path, so an unarmed (or absent)
injector costs nothing — the zero-overhead guarantee is structural, and
the guard test in ``tests/faults/test_overhead.py`` holds it.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.core.errors import FaultPlanError
from repro.core.model import DeploymentModel
from repro.faults.plan import FaultAction, FaultPlan
from repro.obs import Observability, get_observability
from repro.sim.network import SimulatedNetwork


class FaultInjector:
    """Schedules a :class:`FaultPlan`'s actions on a live network.

    Args:
        network: The network to inject into.
        plan: The campaign to execute.
        model: Optional deployment model; when given, :meth:`arm` also
            validates every host/link reference in the plan against it.
    """

    def __init__(self, network: SimulatedNetwork, plan: FaultPlan,
                 model: Optional[DeploymentModel] = None,
                 obs: Optional[Observability] = None):
        self.obs = obs if obs is not None else get_observability()
        self.network = network
        self.plan = plan
        self.model = model
        self.armed = False
        #: Applied injections: dicts with time/kind/target/detail.
        self.log: List[Dict[str, Any]] = []
        #: Completed outage intervals (kind, target, start, end).
        self.outages: List[Tuple[str, Tuple[str, ...], float, float]] = []
        self.actions_applied = 0
        self._handles: List[Any] = []
        # Saved link states, keyed by crash host / partition group.
        self._crashed: Dict[str, Dict[Tuple[str, str], bool]] = {}
        self._partitions: Dict[FrozenSet[str],
                               Dict[Tuple[str, str], bool]] = {}
        self._outage_starts: Dict[Tuple[str, Tuple[str, ...]], float] = {}

    @property
    def clock(self):
        return self.network.clock

    # ------------------------------------------------------------------
    def arm(self) -> int:
        """Validate the plan, then schedule every action.  Returns the
        number of scheduled callbacks."""
        if self.armed:
            raise FaultPlanError(
                f"injector for plan {self.plan.name!r} is already armed")
        self.plan.validate(self.model)
        for endpoint in self._referenced_endpoints():
            if endpoint not in self.network.endpoints:
                raise FaultPlanError(
                    f"plan {self.plan.name!r} references endpoint "
                    f"{endpoint!r} absent from the network")
        now = self.clock.now
        self._handles.extend(self.clock.schedule_many(
            [(action.time - now, self._fire,
              (action.kind, action.target, action.param_map))
             for action in self.plan.actions]))
        self.armed = True
        return len(self._handles)

    def disarm(self) -> int:
        """Cancel every not-yet-fired action.  Returns how many were
        cancelled."""
        cancelled = 0
        for handle in self._handles:
            if not handle.cancelled:
                handle.cancel()
                cancelled += 1
        self._handles.clear()
        self.armed = False
        return cancelled

    def _referenced_endpoints(self) -> Tuple[str, ...]:
        seen = []
        for action in self.plan.actions:
            for endpoint in action.target:
                if endpoint not in seen:
                    seen.append(endpoint)
        return tuple(seen)

    # ------------------------------------------------------------------
    def _schedule(self, time: float, kind: str, target: Tuple[str, ...],
                  params: Dict[str, Any]) -> None:
        handle = self.clock.schedule_at(
            time, self._fire, kind, target, params)
        self._handles.append(handle)

    def _fire(self, kind: str, target: Tuple[str, ...],
              params: Dict[str, Any]) -> None:
        detail = getattr(self, f"_do_{kind}")(target, params)
        self.actions_applied += 1
        self.obs.counter("faults.actions", kind=kind).inc()
        self.log.append({"time": self.clock.now, "kind": kind,
                         "target": list(target), "detail": detail})

    # -- outage bookkeeping --------------------------------------------
    def _outage_begin(self, kind: str, target: Tuple[str, ...]) -> None:
        self._outage_starts.setdefault((kind, target), self.clock.now)

    def _outage_end(self, kind: str, target: Tuple[str, ...]) -> None:
        start = self._outage_starts.pop((kind, target), None)
        if start is not None:
            self.outages.append((kind, target, start, self.clock.now))

    def open_outages(self) -> Tuple[Tuple[str, Tuple[str, ...], float], ...]:
        """Outages injected but never healed (still open at campaign end)."""
        return tuple((kind, target, start) for (kind, target), start
                     in sorted(self._outage_starts.items()))

    # -- action implementations ----------------------------------------
    def _links_touching(self, host: str):
        return [link for link in self.network.links if host in link.ends]

    def _do_host_crash(self, target: Tuple[str, ...],
                       params: Dict[str, Any]) -> Dict[str, Any]:
        host, = target
        if host in self._crashed:  # duplicate crash: no-op, keep first save
            return {"severed": 0, "duplicate": True}
        saved: Dict[Tuple[str, str], bool] = {}
        for link in self._links_touching(host):
            saved[link.ends] = link.connected
            self.network.set_connected(*link.ends, False)
        self._crashed[host] = saved
        self._outage_begin("host_crash", target)
        duration = params.get("duration")
        if duration is not None:
            self._schedule(self.clock.now + float(duration),
                           "host_restart", target, {})
        return {"severed": sum(saved.values())}

    def _do_host_restart(self, target: Tuple[str, ...],
                         params: Dict[str, Any]) -> Dict[str, Any]:
        host, = target
        saved = self._crashed.pop(host, None)
        if saved is None:
            return {"restored": 0, "not_crashed": True}
        restored = 0
        for ends, was_connected in saved.items():
            if was_connected:
                self.network.set_connected(*ends, True)
                restored += 1
        self._outage_end("host_crash", target)
        return {"restored": restored}

    def _do_link_down(self, target: Tuple[str, ...],
                      params: Dict[str, Any]) -> Dict[str, Any]:
        self.network.set_connected(*target, False)
        self._outage_begin("link_down", target)
        return {}

    def _do_link_up(self, target: Tuple[str, ...],
                    params: Dict[str, Any]) -> Dict[str, Any]:
        self.network.set_connected(*target, True)
        self._outage_end("link_down", target)
        return {}

    def _do_set_reliability(self, target: Tuple[str, ...],
                            params: Dict[str, Any]) -> Dict[str, Any]:
        old = self.network.require_link(*target).reliability
        self.network.set_reliability(*target, float(params["value"]))
        return {"old": old,
                "new": self.network.require_link(*target).reliability}

    def _do_set_bandwidth(self, target: Tuple[str, ...],
                          params: Dict[str, Any]) -> Dict[str, Any]:
        old = self.network.require_link(*target).bandwidth
        self.network.set_bandwidth(*target, float(params["value"]))
        return {"old": old,
                "new": self.network.require_link(*target).bandwidth}

    def _do_loss_burst(self, target: Tuple[str, ...],
                       params: Dict[str, Any]) -> Dict[str, Any]:
        link = self.network.require_link(*target)
        previous = link.reliability
        self.network.set_reliability(*target, float(params["value"]))
        self._schedule(self.clock.now + float(params["duration"]),
                       "set_reliability", target, {"value": previous})
        return {"old": previous, "new": link.reliability,
                "until": self.clock.now + float(params["duration"])}

    def _do_flap(self, target: Tuple[str, ...],
                 params: Dict[str, Any]) -> Dict[str, Any]:
        period = float(params.get("period", 1.0))
        count = int(params.get("count", 1))
        # One cycle = down at t, up at t + period/2; first down fires now.
        self._schedule(self.clock.now, "link_down", target, {})
        self._schedule(self.clock.now + period / 2.0, "link_up", target, {})
        for cycle in range(1, count):
            base = self.clock.now + cycle * period
            self._schedule(base, "link_down", target, {})
            self._schedule(base + period / 2.0, "link_up", target, {})
        return {"period": period, "count": count}

    def _do_partition(self, target: Tuple[str, ...],
                      params: Dict[str, Any]) -> Dict[str, Any]:
        group = frozenset(target)
        if group in self._partitions:
            return {"severed": 0, "duplicate": True}
        saved: Dict[Tuple[str, str], bool] = {}
        for link in self.network.links:
            a, b = link.ends
            if (a in group) != (b in group):  # crosses the cut
                saved[link.ends] = link.connected
                self.network.set_connected(a, b, False)
        self._partitions[group] = saved
        self._outage_begin("partition", tuple(sorted(group)))
        duration = params.get("duration")
        if duration is not None:
            self._schedule(self.clock.now + float(duration),
                           "heal", target, {})
        return {"severed": sum(saved.values())}

    def _do_heal(self, target: Tuple[str, ...],
                 params: Dict[str, Any]) -> Dict[str, Any]:
        group = frozenset(target)
        saved = self._partitions.pop(group, None)
        if saved is None:
            return {"restored": 0, "not_partitioned": True}
        restored = 0
        for ends, was_connected in saved.items():
            if was_connected:
                self.network.set_connected(*ends, True)
                restored += 1
        self._outage_end("partition", tuple(sorted(group)))
        return {"restored": restored}
