"""repro — reproduction of "A Framework for Ensuring and Improving
Dependability in Highly Distributed Systems" (Malek, Beckman, Mikic-Rakic,
Medvidovic; DSN 2004).

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the deployment improvement framework: model,
  objectives, constraints, monitoring interpretation, analyzer, effector,
  and the centralized framework loop.
* :mod:`repro.algorithms` — Exact / Stochastic / Avala / DecAp plus
  baselines (I5 BIP, Coign min-cut) and extensions (hill-climb, annealing,
  genetic).
* :mod:`repro.middleware` — the Prism-MW substrate: bricks, events,
  connectors, scaffolds, monitors, Admin/Deployer migration machinery.
* :mod:`repro.sim` — the simulated execution environment: clock, network,
  fluctuation, workload.
* :mod:`repro.desi` — the DeSi exploration environment: reactive model,
  generator, modifier, algorithm container, views, xADL, middleware
  adapter.
* :mod:`repro.decentralized` — awareness, knowledge synchronization,
  auctions, voting, and the decentralized framework instantiation.
* :mod:`repro.scenarios` — the paper's crisis-response scenario and
  companions.

Quickstart::

    from repro.core import AvailabilityObjective, ConstraintSet, MemoryConstraint
    from repro.algorithms import AvalaAlgorithm
    from repro.desi import Generator, GeneratorConfig

    model = Generator(GeneratorConfig(hosts=6, components=20), seed=1).generate()
    objective = AvailabilityObjective()
    result = AvalaAlgorithm(objective, ConstraintSet([MemoryConstraint()])).run(model)
    print(result.summary_line())
"""

__version__ = "1.0.0"

from repro.core import (
    AvailabilityObjective, ConstraintSet, Deployment, DeploymentModel,
    LatencyObjective, MemoryConstraint,
)
from repro.core.framework import CentralizedFramework
from repro.core.report import Report
from repro.decentralized import DecentralizedFramework
from repro.obs import Observability, observe

__all__ = [
    "AvailabilityObjective",
    "CentralizedFramework",
    "ConstraintSet",
    "DecentralizedFramework",
    "Deployment",
    "DeploymentModel",
    "LatencyObjective",
    "MemoryConstraint",
    "Observability",
    "Report",
    "observe",
    "__version__",
]
