"""The paper's motivating scenario (Section 1): crisis response deployment.

"A computer at 'Headquarters' gathers information from the field and
displays the current status ... The headquarters computer is networked to a
set of PDAs used by 'Commanders' in the field.  The commander PDAs are
connected directly to each other and to a large number of 'troop' PDAs."

:func:`build_crisis_scenario` produces that topology with representative
parameters: a well-provisioned HQ machine, mid-size commander PDAs, and
memory-poor troop PDAs on flaky links.  The application components follow
the scenario's data flows: per-troop trackers report to their commander's
coordinator, coordinators exchange situation data with each other and feed
the HQ's status display and map/weather services.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.constraints import (
    ConstraintSet, LocationConstraint, MemoryConstraint,
)
from repro.core.errors import ModelError
from repro.core.model import DeploymentModel
from repro.core.user_input import UserInput


@dataclass
class CrisisConfig:
    """Shape of the crisis-response deployment."""

    commanders: int = 2
    troops_per_commander: int = 3
    #: Reliability range of HQ<->commander links (fairly good).
    hq_link_reliability: Tuple[float, float] = (0.85, 0.99)
    #: Reliability range of commander<->troop links (flaky radios).
    field_link_reliability: Tuple[float, float] = (0.40, 0.90)
    hq_memory: float = 1000.0
    commander_memory: float = 80.0
    troop_memory: float = 25.0
    seed: Optional[int] = None


@dataclass
class CrisisScenario:
    """The built scenario: model + architect input + constraint set."""

    model: DeploymentModel
    user_input: UserInput
    constraints: ConstraintSet
    hq: str
    commanders: Tuple[str, ...]
    troops: Tuple[str, ...]


def build_crisis_scenario(config: Optional[CrisisConfig] = None,
                          ) -> CrisisScenario:
    """Construct the Section-1 scenario as a ready-to-run model."""
    config = config if config is not None else CrisisConfig()
    if config.commanders < 1:
        raise ModelError("need at least one commander")
    rng = random.Random(config.seed)
    model = DeploymentModel(name="crisis-response")

    hq = "hq"
    model.add_host(hq, memory=config.hq_memory)
    commanders: List[str] = []
    troops: List[str] = []
    for index in range(config.commanders):
        commander = f"cmd{index}"
        commanders.append(commander)
        model.add_host(commander, memory=config.commander_memory)
        model.connect_hosts(
            hq, commander,
            reliability=rng.uniform(*config.hq_link_reliability),
            bandwidth=rng.uniform(200, 500), delay=rng.uniform(0.005, 0.02))
    # Commanders are "connected directly to each other".
    for i, cmd_a in enumerate(commanders):
        for cmd_b in commanders[i + 1:]:
            model.connect_hosts(
                cmd_a, cmd_b,
                reliability=rng.uniform(*config.field_link_reliability),
                bandwidth=rng.uniform(50, 200),
                delay=rng.uniform(0.01, 0.05))
    for index in range(config.commanders * config.troops_per_commander):
        commander = commanders[index // config.troops_per_commander]
        troop = f"troop{index}"
        troops.append(troop)
        model.add_host(troop, memory=config.troop_memory)
        model.connect_hosts(
            commander, troop,
            reliability=rng.uniform(*config.field_link_reliability),
            bandwidth=rng.uniform(20, 100), delay=rng.uniform(0.02, 0.1))

    # -- application components -------------------------------------------
    # HQ services.
    model.add_component("status_display", memory=60.0)
    model.add_component("map_service", memory=120.0)
    model.add_component("weather_feed", memory=40.0)
    model.connect_components("status_display", "map_service",
                             frequency=4.0, evt_size=8.0)
    model.connect_components("status_display", "weather_feed",
                             frequency=1.0, evt_size=2.0)
    # Per-commander coordination.
    for index, commander in enumerate(commanders):
        coordinator = f"coordinator{index}"
        model.add_component(coordinator, memory=20.0)
        model.connect_components(coordinator, "status_display",
                                 frequency=rng.uniform(2.0, 5.0),
                                 evt_size=3.0)
        model.connect_components(coordinator, "map_service",
                                 frequency=rng.uniform(0.5, 2.0),
                                 evt_size=6.0)
        model.deploy(coordinator, commander)
    for i in range(len(commanders)):
        for j in range(i + 1, len(commanders)):
            model.connect_components(f"coordinator{i}", f"coordinator{j}",
                                     frequency=rng.uniform(1.0, 3.0),
                                     evt_size=2.0)
    # Per-troop trackers.
    for index, troop in enumerate(troops):
        tracker = f"tracker{index}"
        commander_index = index // config.troops_per_commander
        model.add_component(tracker, memory=8.0)
        model.connect_components(tracker, f"coordinator{commander_index}",
                                 frequency=rng.uniform(3.0, 8.0),
                                 evt_size=1.0)
        model.deploy(tracker, troop)
    model.deploy("status_display", hq)
    model.deploy("map_service", hq)
    model.deploy("weather_feed", hq)

    # -- architect input (Section 3.1, User Input) ---------------------------
    user_input = UserInput()
    # The display is physically attached to the HQ screen.
    user_input.restrict_location("status_display", allowed=[hq])
    # Coordinators must stay in the field (HQ would defeat their purpose).
    for index in range(len(commanders)):
        user_input.restrict_location(f"coordinator{index}", forbidden=[hq])
    # Hard-to-monitor parameter supplied by the architect: link security.
    for commander in commanders:
        user_input.set_physical_link(hq, commander, security=0.9)
    constraints = ConstraintSet([MemoryConstraint()])
    for constraint in user_input.constraints:
        constraints.add(constraint)
    user_input.apply(model)

    return CrisisScenario(model=model, user_input=user_input,
                          constraints=constraints, hq=hq,
                          commanders=tuple(commanders),
                          troops=tuple(troops))
