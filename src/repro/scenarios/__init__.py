"""Ready-made application scenarios for examples, tests, and benches."""

from repro.scenarios.clientserver import ClientServerScenario, build_client_server
from repro.scenarios.crisis import (
    CrisisConfig, CrisisScenario, build_crisis_scenario,
)
from repro.scenarios.sensorfield import SensorFieldScenario, build_sensor_field

__all__ = [
    "ClientServerScenario",
    "CrisisConfig",
    "CrisisScenario",
    "SensorFieldScenario",
    "build_client_server",
    "build_crisis_scenario",
    "build_sensor_field",
]
