"""A decentralized sensor-field scenario.

The decentralized instantiation (Sections 3.2, 5.2) is motivated by systems
with "limited system-wide knowledge and the absence of a single point of
control".  This builder produces such a system: a grid of battery-powered
sensor nodes, each linked only to its grid neighbors (so awareness derived
from connectivity is genuinely partial), running sampler/aggregator/sink
components whose chattiness rewards clustering.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.constraints import ConstraintSet, MemoryConstraint
from repro.core.errors import ModelError
from repro.core.model import DeploymentModel


@dataclass
class SensorFieldScenario:
    model: DeploymentModel
    constraints: ConstraintSet
    rows: int
    cols: int

    def node(self, row: int, col: int) -> str:
        return f"n{row}_{col}"


def build_sensor_field(rows: int = 3, cols: int = 3,
                       aggregators: int = 3,
                       seed: Optional[int] = None) -> SensorFieldScenario:
    """A rows x cols grid of nodes with neighbor-only links.

    Each node hosts one sampler component; ``aggregators`` aggregator
    components (initially scattered) each consume several samplers, and one
    sink consumes the aggregators.  Improving availability means moving
    aggregators next to their chattiest samplers — a decision each node can
    approximate with local knowledge, which is what makes this the DecAp
    showcase.
    """
    if rows < 1 or cols < 1:
        raise ModelError("grid must be at least 1x1")
    rng = random.Random(seed)
    model = DeploymentModel(name="sensor-field")

    def node(row: int, col: int) -> str:
        return f"n{row}_{col}"

    for row in range(rows):
        for col in range(cols):
            model.add_host(node(row, col), memory=60.0,
                           battery=rng.uniform(500, 1500))
    for row in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                model.connect_hosts(node(row, col), node(row, col + 1),
                                    reliability=rng.uniform(0.5, 0.95),
                                    bandwidth=rng.uniform(20, 80),
                                    delay=rng.uniform(0.01, 0.05))
            if row + 1 < rows:
                model.connect_hosts(node(row, col), node(row + 1, col),
                                    reliability=rng.uniform(0.5, 0.95),
                                    bandwidth=rng.uniform(20, 80),
                                    delay=rng.uniform(0.01, 0.05))

    hosts = list(model.host_ids)
    samplers = []
    for index, host in enumerate(hosts):
        sampler = f"sampler{index}"
        samplers.append(sampler)
        model.add_component(sampler, memory=5.0)
        model.deploy(sampler, host)

    sink = "sink"
    model.add_component(sink, memory=15.0)
    model.deploy(sink, hosts[0])
    for index in range(aggregators):
        aggregator = f"aggregator{index}"
        model.add_component(aggregator, memory=12.0)
        # Each aggregator consumes a random subset of samplers.
        chosen = rng.sample(samplers, k=max(2, len(samplers) // aggregators))
        for sampler in chosen:
            model.connect_components(aggregator, sampler,
                                     frequency=rng.uniform(2.0, 8.0),
                                     evt_size=rng.uniform(0.5, 2.0))
        model.connect_components(aggregator, sink,
                                 frequency=rng.uniform(1.0, 3.0),
                                 evt_size=rng.uniform(1.0, 4.0))
        model.deploy(aggregator, rng.choice(hosts))

    constraints = ConstraintSet([MemoryConstraint()])
    model.constraints = list(constraints)
    return SensorFieldScenario(model=model, constraints=constraints,
                               rows=rows, cols=cols)
