"""A two-machine client-server scenario — Coign's problem class.

The related-work comparison (bench E8) needs the exact setting Coign [7]
handles: "two machine, client-server applications".  This builder produces
a client host, a server host, one link, UI components pinned to the client,
database components pinned to the server, and a population of movable
middle-tier components whose chattiness with either side varies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.constraints import (
    ConstraintSet, LocationConstraint, MemoryConstraint,
)
from repro.core.model import DeploymentModel


@dataclass
class ClientServerScenario:
    model: DeploymentModel
    constraints: ConstraintSet
    client: str
    server: str
    pinned_client: Tuple[str, ...]
    pinned_server: Tuple[str, ...]
    movable: Tuple[str, ...]


def build_client_server(middle_components: int = 8,
                        seed: Optional[int] = None,
                        link_reliability: float = 0.9,
                        link_bandwidth: float = 100.0,
                        ) -> ClientServerScenario:
    """Client/server model with *middle_components* movable components."""
    rng = random.Random(seed)
    model = DeploymentModel(name="client-server")
    model.add_host("client", memory=500.0)
    model.add_host("server", memory=2000.0)
    model.connect_hosts("client", "server", reliability=link_reliability,
                        bandwidth=link_bandwidth, delay=0.02)

    model.add_component("ui", memory=30.0)
    model.add_component("renderer", memory=20.0)
    model.add_component("db", memory=200.0)
    model.add_component("storage", memory=150.0)
    model.connect_components("ui", "renderer", frequency=10.0, evt_size=4.0)
    model.connect_components("db", "storage", frequency=8.0, evt_size=16.0)

    movable = []
    for index in range(middle_components):
        name = f"logic{index}"
        movable.append(name)
        model.add_component(name, memory=rng.uniform(5.0, 20.0))
        # Some middle components are UI-leaning, some DB-leaning.
        ui_affinity = rng.uniform(0.5, 8.0)
        db_affinity = rng.uniform(0.5, 8.0)
        model.connect_components(name, "ui", frequency=ui_affinity,
                                 evt_size=rng.uniform(0.5, 4.0))
        model.connect_components(name, "db", frequency=db_affinity,
                                 evt_size=rng.uniform(0.5, 4.0))
    for i in range(len(movable)):
        for j in range(i + 1, len(movable)):
            if rng.random() < 0.25:
                model.connect_components(movable[i], movable[j],
                                         frequency=rng.uniform(0.5, 4.0),
                                         evt_size=rng.uniform(0.5, 2.0))

    model.deploy("ui", "client")
    model.deploy("renderer", "client")
    model.deploy("db", "server")
    model.deploy("storage", "server")
    for name in movable:
        model.deploy(name, rng.choice(["client", "server"]))

    constraints = ConstraintSet([
        MemoryConstraint(),
        LocationConstraint("ui", allowed=["client"]),
        LocationConstraint("renderer", allowed=["client"]),
        LocationConstraint("db", allowed=["server"]),
        LocationConstraint("storage", allowed=["server"]),
    ])
    model.constraints = list(constraints)
    return ClientServerScenario(
        model=model, constraints=constraints, client="client",
        server="server", pinned_client=("ui", "renderer"),
        pinned_server=("db", "storage"), movable=tuple(movable))
