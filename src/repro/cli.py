"""Command-line interface: ``python -m repro <command>``.

Headless DeSi for the terminal — generate hypothetical architectures,
inspect them, run the algorithm suite, simulate the closed improvement
loop, and sweep experiment grids, all without writing code.

Commands:

* ``generate`` — create a random-but-feasible architecture as xADL;
* ``inspect``  — print an xADL architecture's tables / graph / DOT;
* ``improve``  — run redeployment algorithms against an xADL architecture;
* ``simulate`` — run the closed centralized or decentralized loop on a
  built-in scenario and print the availability trajectory;
* ``sweep``    — batch-compare algorithms over generated families;
* ``lint``     — statically verify models/xADL documents (or, with
  ``--code``, this repository's middleware conventions) before anything
  searches or enacts them;
* ``faults``   — fault-injection campaigns and resilience reports;
* ``plan``     — build, render, verify, and diff constraint-safe wave
  migration schedules (``repro.plan``);
* ``obs``      — record, render, and diff observability captures
  (metrics + span trees) of instrumented runs.

Every verb that produces a :class:`repro.core.report.Report` accepts the
shared ``--json`` (canonical ``Report.to_json``) and ``--quiet``
(``Report.summary_line``) output flags.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.algorithms import (
    AvalaAlgorithm, DecApAlgorithm, ExactAlgorithm, GeneticAlgorithm,
    HillClimbingAlgorithm, SimulatedAnnealingAlgorithm, StochasticAlgorithm,
    SwapSearchAlgorithm,
)
from repro.core import (
    AvailabilityObjective, CommunicationCostObjective, ConstraintSet,
    DurabilityObjective, LatencyObjective, MemoryConstraint,
    SecurityObjective, ThroughputObjective,
)
from repro.core.errors import FaultPlanError, ReproError, ScheduleError
from repro.core.framework import CentralizedFramework
from repro.core.objectives import Objective
from repro.decentralized import DecentralizedFramework
from repro.faults import (
    CAMPAIGNS, SCENARIOS as FAULT_SCENARIOS, generate_campaign, load_plan,
    run_campaign, save_plan,
)
from repro.desi import (
    DeSiModel, ExperimentRunner, Generator, GeneratorConfig, GraphView,
    TableView, xadl,
)
from repro.lint import (
    LintCache, LintReport, Severity, analyze_paths, apply_baseline,
    code_rule_registry, load_baseline, render_sarif, verify_fault_plan,
    verify_model, verify_schedule, verify_xadl_file, write_baseline,
)
from repro.plan import build_schedule, naive_schedule, schedule_from_json
from repro.lint.cache import DEFAULT_CACHE_PATH
from repro.middleware import DistributedSystem
from repro.obs import Observability
from repro.obs.capture import Capture
from repro.scenarios import (
    CrisisConfig, build_client_server, build_crisis_scenario,
    build_sensor_field,
)
from repro.sim import InteractionWorkload, SimClock, StepChange

OBJECTIVES: Dict[str, type] = {
    "availability": AvailabilityObjective,
    "latency": LatencyObjective,
    "communication": CommunicationCostObjective,
    "security": SecurityObjective,
    "throughput": ThroughputObjective,
    "durability": DurabilityObjective,
}

ALGORITHM_BUILDERS = {
    "exact": lambda o, c, seed: ExactAlgorithm(o, c, seed=seed),
    "avala": lambda o, c, seed: AvalaAlgorithm(o, c, seed=seed),
    "stochastic": lambda o, c, seed: StochasticAlgorithm(
        o, c, seed=seed, iterations=100),
    "hillclimb": lambda o, c, seed: HillClimbingAlgorithm(o, c, seed=seed),
    "annealing": lambda o, c, seed: SimulatedAnnealingAlgorithm(
        o, c, seed=seed),
    "genetic": lambda o, c, seed: GeneticAlgorithm(o, c, seed=seed),
    "decap": lambda o, c, seed: DecApAlgorithm(o, c, seed=seed),
    "swapsearch": lambda o, c, seed: SwapSearchAlgorithm(o, c, seed=seed),
}


def _objective(name: str) -> Objective:
    return OBJECTIVES[name]()


def add_output_flags(parser: argparse.ArgumentParser) -> None:
    """The shared Report output flags every reporting verb carries."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--json", action="store_true",
                       help="machine-readable output (Report.to_json)")
    group.add_argument("--quiet", action="store_true",
                       help="one-line summary only (Report.summary_line)")


def emit(report, args: argparse.Namespace, **opts) -> None:
    """Print *report* through the Report protocol, honouring the shared
    ``--json``/``--quiet`` flags."""
    if getattr(args, "json", False):
        print(report.to_json(**opts))
    elif getattr(args, "quiet", False):
        print(report.summary_line())
    else:
        print(report.render(**opts))


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

def cmd_generate(args: argparse.Namespace) -> int:
    config = GeneratorConfig(
        hosts=args.hosts, components=args.components,
        physical_density=args.density,
        reliability=(args.min_reliability, args.max_reliability),
        memory_headroom=args.headroom)
    model = Generator(config, seed=args.seed).generate(args.name)
    document = xadl.to_xml(model)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"wrote {model.stats()} to {args.output}")
    else:
        print(document)
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    model = xadl.load(args.file)
    desi = DeSiModel(model)
    if args.dot:
        print(GraphView(desi).render_dot())
    elif args.graph:
        print(GraphView(desi).render_text())
    else:
        print(TableView(desi).render())
        objective = _objective(args.objective)
        if model.is_fully_deployed():
            value = objective.evaluate(model, model.deployment)
            print(f"{objective.name} of current deployment: {value:.4f}")
    return 0


def cmd_improve(args: argparse.Namespace) -> int:
    model = xadl.load(args.file)
    objective = _objective(args.objective)
    constraints = ConstraintSet([MemoryConstraint()])
    for constraint in model.constraints:
        constraints.add(constraint)
    initial = objective.evaluate(model, model.deployment)
    quiet, as_json = args.quiet, args.json
    if not (quiet or as_json):
        print(f"initial {objective.name}: {initial:.4f}")
    best = None
    results = []
    for name in args.algorithms:
        algorithm = ALGORITHM_BUILDERS[name](objective, constraints,
                                             args.seed)
        result = algorithm.run(model)
        results.append(result)
        if not (quiet or as_json):
            print(f"  {result.summary_line()}")
        if result.valid and (best is None
                             or objective.is_better(result.value,
                                                    best.value)):
            best = result
    if as_json:
        payload = [r.to_dict() for r in results]
        import json as _json
        print(_json.dumps(payload, indent=2, sort_keys=True))
    if best is None:
        print("no algorithm produced a valid deployment", file=sys.stderr)
        return 1
    if quiet:
        print(best.summary_line())
    if args.apply:
        model.set_deployment(best.deployment)
        output = args.output or args.file
        xadl.save(model, output)
        print(f"applied {best.algorithm}'s deployment -> {output}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    objective = AvailabilityObjective()
    if args.scenario == "crisis":
        scenario = build_crisis_scenario(CrisisConfig(seed=args.seed))
        model = scenario.model
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host=scenario.hq,
                                   seed=args.seed)
        framework = CentralizedFramework(
            system, objective, scenario.constraints,
            user_input=scenario.user_input, monitor_interval=2.0,
            seed=args.seed)
        framework.start(cycles_per_analysis=2)
        if args.degrade_at is not None:
            StepChange(system.network, scenario.hq, scenario.commanders[0],
                       at=args.degrade_at, attribute="reliability",
                       value=0.3).start()
        decentralized = None
    else:
        scenario = build_sensor_field(seed=args.seed)
        model = scenario.model
        clock = SimClock()
        system = DistributedSystem(model, clock, decentralized=True,
                                   seed=args.seed)
        system.install_monitoring(ping_interval=0.5, pings_per_round=5)
        decentralized = DecentralizedFramework(
            system, objective, bid_timeout=0.3, availability_goal=0.99)
        framework = None

    workload = InteractionWorkload(model, clock, system.emit,
                                   seed=args.seed + 1).start()
    steps = max(1, int(args.duration / 10))
    print(f"t=0      availability "
          f"{objective.evaluate(model, system.actual_deployment()):.4f}")
    for step in range(steps):
        if decentralized is not None:
            decentralized.improvement_round()
        clock.run((step + 1) * 10.0 - clock.now)
        system.network.apply_to_model(model)
        value = objective.evaluate(model, system.actual_deployment())
        print(f"t={clock.now:<7.1f}availability {value:.4f}")
    workload.stop()
    if framework is not None:
        framework.stop()
        for cycle in framework.cycles:
            print(f"  {cycle.summary_line()}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    objective = _objective(args.objective)
    constraints = ConstraintSet([MemoryConstraint()])
    algorithms = {
        name: (lambda n=name: ALGORITHM_BUILDERS[n](objective, constraints,
                                                    args.seed))
        for name in args.algorithms
    }
    families = {}
    for spec in args.family:
        try:
            label, hosts, components = spec.split(":")
            families[label] = GeneratorConfig(
                hosts=int(hosts), components=int(components),
                host_memory=(20.0, 50.0), memory_headroom=1.2)
        except ValueError:
            print(f"bad family spec {spec!r}; use label:hosts:components",
                  file=sys.stderr)
            return 2
    runner = ExperimentRunner(objective, algorithms,
                              replicates=args.replicates, seed=args.seed)
    report = runner.run(families)
    emit(report, args)
    if not (args.json or args.quiet):
        for family in families:
            best = report.best_algorithm(
                family, direction=objective.direction)
            print(f"best for {family}: {best}")
    return 0


def _load_or_generate_plan(args: argparse.Namespace):
    if args.plan:
        return load_plan(args.plan)
    model = FAULT_SCENARIOS[args.scenario](args.seed).model
    return generate_campaign(args.campaign, model,
                             duration=args.duration or 60.0, seed=args.seed)


def cmd_faults_run(args: argparse.Namespace) -> int:
    obs = Observability() if args.capture else None
    try:
        plan = _load_or_generate_plan(args)
        report = run_campaign(plan, seed=args.seed, scenario=args.scenario,
                              duration=args.duration,
                              improve=not args.no_improve, obs=obs)
    except FaultPlanError as exc:
        print(f"fault plan rejected: {exc}", file=sys.stderr)
        return 2
    if obs is not None:
        capture = obs.capture(label=f"faults {plan.name} seed={args.seed}")
        capture.save(args.capture)
        print(f"wrote observability capture to {args.capture}",
              file=sys.stderr)
    if args.output:
        document = report.render(include_timing=args.timing)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
        print(report.summary_line())
        print(f"wrote resilience report to {args.output}")
    else:
        emit(report, args, include_timing=args.timing)
    return 0


def cmd_faults_generate(args: argparse.Namespace) -> int:
    try:
        model = FAULT_SCENARIOS[args.scenario](args.seed).model
        plan = generate_campaign(args.campaign, model,
                                 duration=args.duration or 60.0,
                                 seed=args.seed)
        plan.validate(model)
    except FaultPlanError as exc:
        print(f"campaign generation failed: {exc}", file=sys.stderr)
        return 2
    if args.output:
        save_plan(plan, args.output)
        print(f"wrote plan {plan.name!r} ({len(plan)} actions) "
              f"to {args.output}")
    else:
        print(plan.to_xml() if args.xml else plan.to_json())
    return 0


def cmd_faults_lint(args: argparse.Namespace) -> int:
    try:
        plan = load_plan(args.plan)
    except FaultPlanError as exc:
        print(f"fault plan rejected: {exc}", file=sys.stderr)
        return 2
    model = (FAULT_SCENARIOS[args.scenario](args.seed).model
             if args.scenario else None)
    report = verify_fault_plan(plan, model=model)
    emit(report, args, title=f"fault plan {plan.name}")
    return report.exit_code(Severity.parse(args.fail_on))


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.profiling import profile_campaign
    try:
        report = profile_campaign(
            campaign=args.campaign, scenario=args.scenario, seed=args.seed,
            duration=args.duration, improve=not args.no_improve,
            top=args.top, sort=args.sort)
    except FaultPlanError as exc:
        print(f"campaign generation failed: {exc}", file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
        print(report.summary_line())
        print(f"wrote profile to {args.output}")
    else:
        emit(report, args)
    return 0


def _load_schedule(path: str):
    with open(path, encoding="utf-8") as handle:
        return schedule_from_json(handle.read())


def cmd_plan_build(args: argparse.Namespace) -> int:
    model = xadl.load(args.file)
    objective = _objective(args.objective)
    constraints = ConstraintSet([MemoryConstraint()])
    for constraint in model.constraints:
        constraints.add(constraint)
    algorithm = ALGORITHM_BUILDERS[args.algorithm](objective, constraints,
                                                   args.seed)
    result = algorithm.run(model)
    if not result.valid:
        print(f"{args.algorithm} produced no valid deployment",
              file=sys.stderr)
        return 1
    try:
        if args.naive:
            schedule = naive_schedule(model, result.deployment)
        else:
            schedule = build_schedule(model, result.deployment,
                                      constraints=constraints,
                                      max_wave_moves=args.max_wave_moves)
    except ScheduleError as exc:
        print(f"scheduling failed: {exc}", file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(schedule.to_json() + "\n")
        print(schedule.summary_line())
        print(f"wrote schedule to {args.output}")
    else:
        emit(schedule, args)
    return 0


def cmd_plan_show(args: argparse.Namespace) -> int:
    try:
        schedule = _load_schedule(args.schedule)
    except (OSError, ScheduleError) as exc:
        print(f"cannot read schedule: {exc}", file=sys.stderr)
        return 2
    emit(schedule, args)
    return 0


def cmd_plan_lint(args: argparse.Namespace) -> int:
    try:
        schedule = _load_schedule(args.schedule)
    except (OSError, ScheduleError) as exc:
        print(f"cannot read schedule: {exc}", file=sys.stderr)
        return 2
    model = xadl.load(args.model)
    report = verify_schedule(model, schedule)
    emit(report, args, title=f"schedule {args.schedule}")
    return report.exit_code(Severity.parse(args.fail_on))


def cmd_plan_diff(args: argparse.Namespace) -> int:
    try:
        old = _load_schedule(args.old)
        new = _load_schedule(args.new)
    except (OSError, ScheduleError) as exc:
        print(f"cannot read schedule: {exc}", file=sys.stderr)
        return 2
    print(old.diff(new))
    return 0


SCENARIO_BUILDERS = {
    "crisis": lambda: build_crisis_scenario(),
    "sensorfield": lambda: build_sensor_field(),
    "clientserver": lambda: build_client_server(),
}


def cmd_obs_record(args: argparse.Namespace) -> int:
    """Run the instrumented crisis improvement loop and save a capture."""
    obs = Observability()
    objective = AvailabilityObjective()
    scenario = build_crisis_scenario(CrisisConfig(seed=args.seed))
    model = scenario.model
    clock = SimClock()
    obs.bind_clock(clock)
    system = DistributedSystem(model, clock, master_host=scenario.hq,
                               seed=args.seed, obs=obs)
    framework = CentralizedFramework(
        system, objective, scenario.constraints,
        user_input=scenario.user_input, monitor_interval=2.0,
        seed=args.seed, obs=obs)
    framework.start(cycles_per_analysis=2)
    if args.degrade_at is not None:
        StepChange(system.network, scenario.hq, scenario.commanders[0],
                   at=args.degrade_at, attribute="reliability",
                   value=0.3).start()
    workload = InteractionWorkload(model, clock, system.emit,
                                   seed=args.seed + 1).start()
    clock.run(args.duration)
    workload.stop()
    framework.stop()
    capture = obs.capture(label=f"crisis seed={args.seed} "
                                f"t={args.duration:g}")
    capture.save(args.output)
    print(f"recorded {len(capture.spans)} root spans and "
          f"{len(capture.metrics)} instruments over "
          f"{len(capture.subsystems())} subsystems "
          f"({', '.join(capture.subsystems())}) -> {args.output}")
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    try:
        capture = Capture.load(args.capture)
    except (OSError, ReproError) as exc:
        print(f"cannot read capture: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(capture.dumps(), end="")
    else:
        print(capture.render(show_spans=not args.metrics_only,
                             show_metrics=not args.spans_only))
    return 0


def cmd_obs_diff(args: argparse.Namespace) -> int:
    try:
        old = Capture.load(args.old)
        new = Capture.load(args.new)
    except (OSError, ReproError) as exc:
        print(f"cannot read capture: {exc}", file=sys.stderr)
        return 2
    print(old.diff(new))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    fail_on = Severity.parse(args.fail_on)
    reports: List[tuple] = []  # (title, LintReport)
    if args.code:
        paths = args.targets or ["src/repro"]
        cache = None
        if args.cache and not args.no_cache:
            cache = LintCache.load(args.cache, code_rule_registry())
        try:
            reports.append((", ".join(paths), analyze_paths(
                paths, jobs=args.jobs, cache=cache)))
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if cache is not None:
            cache.save()
            print(cache.stats_line(), file=sys.stderr)
    else:
        targets = args.targets or sorted(SCENARIO_BUILDERS)
        for target in targets:
            if target in SCENARIO_BUILDERS:
                scenario = SCENARIO_BUILDERS[target]()
                reports.append((f"scenario {target}", verify_model(
                    scenario.model, constraints=scenario.constraints)))
            elif os.path.exists(target):
                reports.append((target, verify_xadl_file(target)))
            else:
                print(f"unknown lint target {target!r}: not a scenario "
                      f"({', '.join(sorted(SCENARIO_BUILDERS))}) or a file",
                      file=sys.stderr)
                return 2

    if args.baseline:
        try:
            accepted = load_baseline(args.baseline)
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        reports = [(title, apply_baseline(report, accepted).sorted())
                   for title, report in reports]

    if args.write_baseline:
        merged = LintReport()
        for _, report in reports:
            merged.merge(report)
        count = write_baseline(merged.sorted(), args.write_baseline)
        print(f"recorded {count} fingerprint(s) in {args.write_baseline}",
              file=sys.stderr)
        return 0

    if args.sarif:
        merged = LintReport()
        for _, report in reports:
            merged.merge(report)
        registry = code_rule_registry() if args.code else None
        text = render_sarif(merged.sorted(), registry=registry)
    else:
        chunks = []
        for title, report in reports:
            if args.json:
                chunks.append(report.to_json(title=title))
            elif args.quiet:
                chunks.append(report.summary_line())
            else:
                chunks.append(report.render(title=title))
        text = "\n".join(chunks)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
    else:
        print(text)

    exit_code = 0
    for _, report in reports:
        exit_code = max(exit_code, report.exit_code(fail_on))
    if exit_code and args.force:
        print("findings at or above the failure threshold ignored (--force)",
              file=sys.stderr)
        return 0
    return exit_code


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deployment improvement framework (DSN 2004 "
                    "reproduction) command line")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate an architecture as xADL")
    p.add_argument("--hosts", type=int, default=4)
    p.add_argument("--components", type=int, default=10)
    p.add_argument("--density", type=float, default=1.0)
    p.add_argument("--min-reliability", type=float, default=0.3)
    p.add_argument("--max-reliability", type=float, default=1.0)
    p.add_argument("--headroom", type=float, default=1.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--name", default="generated")
    p.add_argument("-o", "--output", help="xADL output path (default stdout)")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("inspect", help="show an xADL architecture")
    p.add_argument("file")
    p.add_argument("--graph", action="store_true",
                   help="text graph view instead of tables")
    p.add_argument("--dot", action="store_true", help="Graphviz DOT output")
    p.add_argument("--objective", choices=sorted(OBJECTIVES),
                   default="availability")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("improve", help="run algorithms on an architecture")
    p.add_argument("file")
    p.add_argument("-a", "--algorithms", nargs="+",
                   choices=sorted(ALGORITHM_BUILDERS),
                   default=["avala", "stochastic"])
    p.add_argument("--objective", choices=sorted(OBJECTIVES),
                   default="availability")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--apply", action="store_true",
                   help="write the best deployment back to the file")
    p.add_argument("-o", "--output",
                   help="write the improved xADL here instead of in place")
    add_output_flags(p)
    p.set_defaults(func=cmd_improve)

    p = sub.add_parser("simulate", help="run a closed-loop scenario")
    p.add_argument("--scenario", choices=["crisis", "sensorfield"],
                   default="crisis")
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--degrade-at", type=float, default=30.0,
                   help="time of the mid-run link degradation (crisis)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("sweep", help="batch-compare algorithms")
    p.add_argument("--family", nargs="+", required=True,
                   metavar="LABEL:HOSTS:COMPONENTS")
    p.add_argument("-a", "--algorithms", nargs="+",
                   choices=sorted(ALGORITHM_BUILDERS),
                   default=["avala", "stochastic", "hillclimb"])
    p.add_argument("--objective", choices=sorted(OBJECTIVES),
                   default="availability")
    p.add_argument("--replicates", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    add_output_flags(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "profile",
        help="profile a fault campaign under cProfile (simulation-core "
             "hot-path triage)")
    p.add_argument("--campaign", choices=sorted(CAMPAIGNS),
                   default="random-churn")
    p.add_argument("--scenario", choices=sorted(FAULT_SCENARIOS),
                   default="crisis")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=20.0,
                   help="simulated seconds to run (default 20)")
    p.add_argument("--no-improve", action="store_true",
                   help="endure only: no monitoring/analysis/redeployment")
    p.add_argument("--top", type=int, default=20,
                   help="number of functions to report (default 20)")
    p.add_argument("--sort", choices=["cumulative", "tottime"],
                   default="cumulative")
    p.add_argument("-o", "--output", help="write the profile JSON here")
    add_output_flags(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "faults", help="fault-injection campaigns and resilience reports")
    fsub = p.add_subparsers(dest="faults_command", required=True)

    f = fsub.add_parser("run", help="run a campaign and score resilience")
    f.add_argument("--plan", help="JSON/XML fault plan file; omit to "
                                  "generate --campaign on the fly")
    f.add_argument("--campaign", choices=sorted(CAMPAIGNS),
                   default="random-churn",
                   help="generator used when no --plan is given")
    f.add_argument("--scenario", choices=sorted(FAULT_SCENARIOS),
                   default="crisis")
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--duration", type=float, default=None,
                   help="simulated seconds (default: the plan's duration)")
    f.add_argument("--no-improve", action="store_true",
                   help="endure only: no monitoring/analysis/redeployment")
    f.add_argument("--timing", action="store_true",
                   help="include wall-clock timing in the JSON "
                        "(breaks byte-for-byte reproducibility)")
    f.add_argument("-o", "--output",
                   help="write the ResilienceReport JSON here")
    f.add_argument("--capture",
                   help="record an observability capture (metrics + spans) "
                        "of the campaign to this JSON-lines file")
    add_output_flags(f)
    f.set_defaults(func=cmd_faults_run)

    f = fsub.add_parser("generate", help="emit a campaign as a plan file")
    f.add_argument("--campaign", choices=sorted(CAMPAIGNS),
                   default="random-churn")
    f.add_argument("--scenario", choices=sorted(FAULT_SCENARIOS),
                   default="crisis")
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--duration", type=float, default=60.0)
    f.add_argument("--xml", action="store_true",
                   help="print xADL-adjacent XML instead of JSON")
    f.add_argument("-o", "--output",
                   help="plan output path (.json or .xml)")
    f.set_defaults(func=cmd_faults_generate)

    f = fsub.add_parser("lint", help="statically verify a fault plan")
    f.add_argument("plan", help="JSON/XML fault plan file")
    f.add_argument("--scenario", choices=sorted(FAULT_SCENARIOS),
                   help="also check host/link references against this "
                        "scenario's model")
    f.add_argument("--seed", type=int, default=0)
    add_output_flags(f)
    f.add_argument("--fail-on", choices=["error", "warning", "info"],
                   default="error")
    f.set_defaults(func=cmd_faults_lint)

    p = sub.add_parser(
        "plan", help="build, verify, and diff wave migration schedules")
    psub = p.add_subparsers(dest="plan_command", required=True)

    w = psub.add_parser(
        "build", help="plan a constraint-safe wave schedule")
    w.add_argument("file", help="xADL architecture file")
    w.add_argument("--algorithm", choices=sorted(ALGORITHM_BUILDERS),
                   default="avala",
                   help="algorithm that proposes the target deployment")
    w.add_argument("--objective", choices=sorted(OBJECTIVES),
                   default="availability")
    w.add_argument("--seed", type=int, default=0)
    w.add_argument("--max-wave-moves", type=int, default=8,
                   help="rollback-barrier granularity (moves per wave)")
    w.add_argument("--naive", action="store_true",
                   help="emit the all-at-once contrast schedule instead")
    w.add_argument("-o", "--output", help="write the schedule JSON here")
    add_output_flags(w)
    w.set_defaults(func=cmd_plan_build)

    w = psub.add_parser("show", help="render a saved schedule")
    w.add_argument("schedule", help="schedule JSON file")
    add_output_flags(w)
    w.set_defaults(func=cmd_plan_show)

    w = psub.add_parser(
        "lint", help="statically verify a schedule (PL001-PL003)")
    w.add_argument("schedule", help="schedule JSON file")
    w.add_argument("--model", required=True,
                   help="xADL architecture the schedule must hold against")
    add_output_flags(w)
    w.add_argument("--fail-on", choices=["error", "warning", "info"],
                   default="error")
    w.set_defaults(func=cmd_plan_lint)

    w = psub.add_parser("diff", help="compare two schedules wave by wave")
    w.add_argument("old", help="schedule JSON file")
    w.add_argument("new", help="schedule JSON file")
    w.set_defaults(func=cmd_plan_diff)

    p = sub.add_parser(
        "lint", help="statically verify models or middleware code")
    p.add_argument("targets", nargs="*",
                   help="xADL files or scenario names "
                        "(crisis, sensorfield, clientserver); with --code, "
                        "source files/directories. Default: all bundled "
                        "scenarios (or src/repro with --code)")
    p.add_argument("--code", action="store_true",
                   help="run the AST code analyzer instead of the model "
                        "verifier")
    add_output_flags(p)
    p.add_argument("--fail-on", choices=["error", "warning", "info"],
                   default="error",
                   help="lowest severity that makes the exit code non-zero")
    p.add_argument("--force", action="store_true",
                   help="report findings but exit zero anyway")
    p.add_argument("--sarif", action="store_true",
                   help="emit SARIF 2.1.0 instead of text/JSON")
    p.add_argument("-o", "--output", metavar="PATH",
                   help="write the report to PATH instead of stdout")
    p.add_argument("--baseline", metavar="PATH",
                   help="suppress findings recorded in this baseline file")
    p.add_argument("--write-baseline", metavar="PATH",
                   help="record the current findings as accepted and exit 0")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="analyze files with N worker processes (--code only)")
    p.add_argument("--cache", nargs="?", const=DEFAULT_CACHE_PATH,
                   metavar="PATH",
                   help="reuse per-file results for unchanged files "
                        f"(default path: {DEFAULT_CACHE_PATH}; --code only)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore --cache and re-analyze everything")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "obs", help="record, render, and diff observability captures")
    osub = p.add_subparsers(dest="obs_command", required=True)

    o = osub.add_parser(
        "record", help="run the instrumented crisis loop, save a capture")
    o.add_argument("-o", "--output", required=True,
                   help="capture output path (JSON lines)")
    o.add_argument("--duration", type=float, default=60.0)
    o.add_argument("--degrade-at", type=float, default=30.0,
                   help="time of the mid-run link degradation")
    o.add_argument("--seed", type=int, default=0)
    o.set_defaults(func=cmd_obs_record)

    o = osub.add_parser("report", help="render a saved capture")
    o.add_argument("capture", help="JSON-lines capture file")
    o.add_argument("--json", action="store_true",
                   help="re-emit the canonical JSON-lines form")
    o.add_argument("--spans-only", action="store_true",
                   help="only the span tree")
    o.add_argument("--metrics-only", action="store_true",
                   help="only the metrics table")
    o.set_defaults(func=cmd_obs_report)

    o = osub.add_parser("diff", help="diff two captures")
    o.add_argument("old")
    o.add_argument("new")
    o.set_defaults(func=cmd_obs_diff)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early — not an error.
        # Point stdout at devnull so the interpreter's exit flush is quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
