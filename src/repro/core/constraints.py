"""Hard constraints restricting the space of valid deployments.

Section 3.1 (User Input): the architect "must be capable of providing
constraints on the allowable deployment architectures", giving *location*
constraints ("a subset of hosts on which a given component may be legally
deployed") and *collocation* constraints ("a subset of components that
either must be or may not be deployed on the same host") as the canonical
examples.  Section 5.1 adds resource constraints: component memory against
host memory, and bandwidth feasibility.

Constraints expose two operations:

* :meth:`Constraint.is_satisfied` — validate a complete deployment; and
* :meth:`Constraint.allows` — an *incremental* check used by constructive
  algorithms (Avala, Stochastic, Exact-with-pruning) while they build a
  partial assignment component by component.

:class:`ConstraintSet` is the paper's ``ConstraintChecker`` (Figure 7): the
pluggable aggregation that algorithms consult.
"""

from __future__ import annotations

import collections.abc
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.model import DeploymentModel


class _CandidateOverlay(collections.abc.Mapping):
    """``partial`` extended with one candidate placement, without copying.

    Iteration order matches ``dict(partial); d[component] = host`` exactly
    (the candidate appears in place when already present, else last), so
    order-sensitive float accumulations are unchanged.
    """

    __slots__ = ("_base", "_component", "_host")

    def __init__(self, base: Mapping[str, str], component: str, host: str):
        self._base = base
        self._component = component
        self._host = host

    def __getitem__(self, key: str) -> str:
        if key == self._component:
            return self._host
        return self._base[key]

    def __iter__(self):
        yield from self._base
        if self._component not in self._base:
            yield self._component

    def __len__(self) -> int:
        return len(self._base) + (0 if self._component in self._base else 1)

    def __contains__(self, key: object) -> bool:
        return key == self._component or key in self._base


class Constraint(ABC):
    """A hard predicate over deployments."""

    @abstractmethod
    def is_satisfied(self, model: DeploymentModel,
                     deployment: Mapping[str, str]) -> bool:
        """True when the (complete) *deployment* honors the constraint."""

    def violations(self, model: DeploymentModel,
                   deployment: Mapping[str, str]) -> List[str]:
        """Human-readable description of each violation (empty when clean)."""
        if self.is_satisfied(model, deployment):
            return []
        return [f"{self} violated"]

    def allows(self, model: DeploymentModel, partial: Mapping[str, str],
               component: str, host: str) -> bool:
        """May *component* be placed on *host* given the *partial* assignment?

        The default is conservative-but-correct: test the partial assignment
        extended with the candidate placement (through a copy-free overlay
        view, so the O(len(partial)) dict copy per candidate is gone).
        Subclasses override with cheaper checks.
        """
        return self.is_satisfied_partial(
            model, _CandidateOverlay(partial, component, host))

    def is_satisfied_partial(self, model: DeploymentModel,
                             partial: Mapping[str, str]) -> bool:
        """Whether a *partial* assignment could still extend to a valid one.

        Defaults to :meth:`is_satisfied`; constraints that can only be
        judged on complete deployments (e.g. "must collocate" where one
        member is unplaced) override to avoid premature rejection.
        """
        return self.is_satisfied(model, partial)


def _memory_loads(model: DeploymentModel,
                  deployment: Mapping[str, str]) -> Dict[str, float]:
    """Single-pass per-host memory tally (shared by check and report)."""
    used: Dict[str, float] = {}
    for component_id, host_id in deployment.items():
        used[host_id] = used.get(host_id, 0.0) + \
            model.component(component_id).memory
    return used


class MemoryConstraint(Constraint):
    """Sum of component memory on each host must not exceed host memory.

    The paper's canonical constraint-satisfaction example: "total memory of
    components deployed onto a host cannot exceed that host's available
    memory".
    """

    def is_satisfied(self, model: DeploymentModel,
                     deployment: Mapping[str, str]) -> bool:
        # One tally pass, no violation-row construction or sorting.
        return all(total <= model.host(host_id).memory
                   for host_id, total
                   in _memory_loads(model, deployment).items())

    def violations(self, model: DeploymentModel,
                   deployment: Mapping[str, str]) -> List[str]:
        return [
            f"host {host!r}: components need {used:g} KB but only "
            f"{capacity:g} KB available"
            for host, used, capacity in self._overloaded_hosts(model, deployment)
        ]

    def allows(self, model: DeploymentModel, partial: Mapping[str, str],
               component: str, host: str) -> bool:
        used = sum(
            model.component(c).memory
            for c, h in partial.items() if h == host and c != component
        )
        return used + model.component(component).memory <= model.host(host).memory

    def _overloaded_hosts(self, model: DeploymentModel,
                          deployment: Mapping[str, str],
                          ) -> List[Tuple[str, float, float]]:
        return [
            (host_id, total, model.host(host_id).memory)
            for host_id, total in sorted(_memory_loads(model,
                                                       deployment).items())
            if total > model.host(host_id).memory
        ]

    def __repr__(self) -> str:
        return "MemoryConstraint()"


class CpuConstraint(Constraint):
    """Sum of component CPU demand on each host must fit the host's CPU.

    Listed in the introduction as a representative constraint ("the
    processing requirements of components deployed onto a host do not
    exceed that host's CPU capacity").
    """

    def is_satisfied(self, model: DeploymentModel,
                     deployment: Mapping[str, str]) -> bool:
        demand: Dict[str, float] = {}
        for component_id, host_id in deployment.items():
            demand[host_id] = demand.get(host_id, 0.0) + \
                model.component(component_id).cpu
        return all(total <= model.host(h).cpu for h, total in demand.items())

    def allows(self, model: DeploymentModel, partial: Mapping[str, str],
               component: str, host: str) -> bool:
        used = sum(
            model.component(c).cpu
            for c, h in partial.items() if h == host and c != component
        )
        return used + model.component(component).cpu <= model.host(host).cpu

    def __repr__(self) -> str:
        return "CpuConstraint()"


class LocationConstraint(Constraint):
    """Restrict the hosts a component may legally occupy.

    Provide either ``allowed`` (whitelist) or ``forbidden`` (blacklist) —
    DeSi's UI exposes both ("the location constraint that denotes the hosts
    that a component can not be deployed on", Section 4.1, and "fixing a
    component to a selected host", Figure 9).
    """

    def __init__(self, component: str,
                 allowed: Optional[Iterable[str]] = None,
                 forbidden: Optional[Iterable[str]] = None):
        if (allowed is None) == (forbidden is None):
            raise ValueError(
                "provide exactly one of allowed= or forbidden=")
        self.component = component
        self.allowed: Optional[Set[str]] = set(allowed) if allowed is not None else None
        self.forbidden: Optional[Set[str]] = (
            set(forbidden) if forbidden is not None else None)

    def permits_host(self, host: str) -> bool:
        if self.allowed is not None:
            return host in self.allowed
        assert self.forbidden is not None
        return host not in self.forbidden

    def is_satisfied(self, model: DeploymentModel,
                     deployment: Mapping[str, str]) -> bool:
        host = deployment.get(self.component)
        return host is None or self.permits_host(host)

    def violations(self, model: DeploymentModel,
                   deployment: Mapping[str, str]) -> List[str]:
        host = deployment.get(self.component)
        if host is None or self.permits_host(host):
            return []
        return [f"component {self.component!r} may not be deployed on {host!r}"]

    def allows(self, model: DeploymentModel, partial: Mapping[str, str],
               component: str, host: str) -> bool:
        if component != self.component:
            return True
        return self.permits_host(host)

    def __repr__(self) -> str:
        if self.allowed is not None:
            return (f"LocationConstraint({self.component!r}, "
                    f"allowed={sorted(self.allowed)})")
        return (f"LocationConstraint({self.component!r}, "
                f"forbidden={sorted(self.forbidden or ())})")


def fix_component(component: str, host: str) -> LocationConstraint:
    """Pin *component* to *host* — the ``m`` fixed components that reduce the
    Exact algorithm's complexity to O(k^(n-m)) (Section 5.1)."""
    return LocationConstraint(component, allowed=[host])


class CollocationConstraint(Constraint):
    """Force a component group onto one host, or keep a pair apart.

    ``together=True``: every listed component must share a host ("must be
    deployed on the same host").  ``together=False``: no two listed
    components may share a host ("may not be deployed on the same host").
    """

    def __init__(self, components: Sequence[str], together: bool):
        if len(components) < 2:
            raise ValueError("collocation needs at least two components")
        self.components: Tuple[str, ...] = tuple(components)
        self.together = together

    def is_satisfied(self, model: DeploymentModel,
                     deployment: Mapping[str, str]) -> bool:
        hosts = [deployment[c] for c in self.components if c in deployment]
        if len(hosts) < 2:
            return True
        if self.together:
            return len(set(hosts)) == 1
        placed = [deployment[c] for c in self.components if c in deployment]
        return len(set(placed)) == len(placed)

    def violations(self, model: DeploymentModel,
                   deployment: Mapping[str, str]) -> List[str]:
        if self.is_satisfied(model, deployment):
            return []
        placement = {c: deployment.get(c) for c in self.components}
        mode = "must share a host" if self.together else "must be separated"
        return [f"components {placement} {mode}"]

    def allows(self, model: DeploymentModel, partial: Mapping[str, str],
               component: str, host: str) -> bool:
        if component not in self.components:
            return True
        others = [
            partial[c] for c in self.components
            if c != component and c in partial
        ]
        if self.together:
            return all(h == host for h in others)
        return host not in others

    def is_satisfied_partial(self, model: DeploymentModel,
                             partial: Mapping[str, str]) -> bool:
        # A partial assignment never violates "together" prematurely; it can
        # violate "apart" as soon as two members collide.
        return self.is_satisfied(model, partial)

    def __repr__(self) -> str:
        mode = "together" if self.together else "apart"
        return f"CollocationConstraint({list(self.components)}, {mode})"


class BandwidthConstraint(Constraint):
    """Traffic routed over each physical link must fit its bandwidth.

    The volume a link must carry is the sum of ``frequency * evt_size`` over
    the component pairs whose hosts the link directly connects.  Host pairs
    with interacting components but no physical link at all are also
    rejected (their required bandwidth is unsatisfiable).
    """

    def is_satisfied(self, model: DeploymentModel,
                     deployment: Mapping[str, str]) -> bool:
        return not self._overloads(model, deployment)

    def violations(self, model: DeploymentModel,
                   deployment: Mapping[str, str]) -> List[str]:
        return [
            f"link {a!r}<->{b!r}: needs {need:g} KB/s, capacity {cap:g} KB/s"
            for a, b, need, cap in self._overloads(model, deployment)
        ]

    def _overloads(self, model: DeploymentModel,
                   deployment: Mapping[str, str],
                   ) -> List[Tuple[str, str, float, float]]:
        demand: Dict[Tuple[str, str], float] = {}
        for comp_a, comp_b, link in model.interaction_pairs():
            host_a = deployment.get(comp_a)
            host_b = deployment.get(comp_b)
            if host_a is None or host_b is None or host_a == host_b:
                continue
            key = (host_a, host_b) if host_a <= host_b else (host_b, host_a)
            demand[key] = demand.get(key, 0.0) + link.frequency * link.evt_size
        overloads = []
        for (host_a, host_b), need in sorted(demand.items()):
            capacity = model.bandwidth(host_a, host_b)
            if need > capacity:
                overloads.append((host_a, host_b, need, capacity))
        return overloads

    def __repr__(self) -> str:
        return "BandwidthConstraint()"


class ConstraintSet(Constraint):
    """Aggregation of constraints — the paper's ``ConstraintChecker``.

    Algorithms receive one ConstraintSet and never inspect individual
    constraints, which is what makes the constraint dimension pluggable
    (Figure 7's algorithm-development methodology).
    """

    def __init__(self, constraints: Iterable[Constraint] = ()):
        self.constraints: List[Constraint] = list(constraints)

    def add(self, constraint: Constraint) -> "ConstraintSet":
        self.constraints.append(constraint)
        return self

    def is_satisfied(self, model: DeploymentModel,
                     deployment: Mapping[str, str]) -> bool:
        return all(c.is_satisfied(model, deployment) for c in self.constraints)

    def violations(self, model: DeploymentModel,
                   deployment: Mapping[str, str]) -> List[str]:
        out: List[str] = []
        for constraint in self.constraints:
            out.extend(constraint.violations(model, deployment))
        return out

    def allows(self, model: DeploymentModel, partial: Mapping[str, str],
               component: str, host: str) -> bool:
        return all(c.allows(model, partial, component, host)
                   for c in self.constraints)

    def is_satisfied_partial(self, model: DeploymentModel,
                             partial: Mapping[str, str]) -> bool:
        return all(c.is_satisfied_partial(model, partial)
                   for c in self.constraints)

    def allowed_hosts(self, model: DeploymentModel,
                      partial: Mapping[str, str],
                      component: str) -> Tuple[str, ...]:
        """Hosts on which *component* may currently be placed."""
        return tuple(
            host_id for host_id in model.host_ids
            if self.allows(model, partial, component, host_id)
        )

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def __repr__(self) -> str:
        return f"ConstraintSet({self.constraints!r})"


def standard_constraints() -> ConstraintSet:
    """The resource constraints of the paper's Section 5.1 scenario."""
    return ConstraintSet([MemoryConstraint(), BandwidthConstraint()])
