"""The deployment model: hosts, components, links, and the deployment map.

Section 3.1 of the paper defines the Model component as "the representation
of the system's deployment architecture ... composed of four types of parts:
hosts, components, physical links between hosts, and logical links between
components", each with "an arbitrary set of parameters".

:class:`DeploymentModel` is that representation.  It is the single source of
truth shared by monitors (which write parameter values into it), algorithms
(which read it to search for better deployments), analyzers (which compare
algorithm results against it), and effectors (which diff its current
deployment against a target).  The model is *reactive*: registered listeners
are notified of parameter, topology, and deployment changes, which is what
DeSi's views and the decentralized model-synchronization layer hook into.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping,
    Optional, Set, Tuple,
)

from repro.core import parameters as P
from repro.core.errors import (
    DeploymentError, DuplicateEntityError, ModelError, UnknownEntityError,
)
from repro.core.parameters import ParameterBag, ParameterRegistry, standard_registry


def _pair(a: str, b: str) -> Tuple[str, str]:
    """Canonical undirected pair key."""
    return (a, b) if a <= b else (b, a)


class Host:
    """A hardware host onto which software components can be deployed."""

    def __init__(self, host_id: str, registry: ParameterRegistry):
        self.id = host_id
        self.params = ParameterBag(P.HOST, registry)

    @property
    def memory(self) -> float:
        return self.params.get("memory")

    @property
    def cpu(self) -> float:
        return self.params.get("cpu")

    def __repr__(self) -> str:
        return f"Host({self.id!r})"


class Component:
    """A software component (unit of deployment and migration)."""

    def __init__(self, component_id: str, registry: ParameterRegistry):
        self.id = component_id
        self.params = ParameterBag(P.COMPONENT, registry)

    @property
    def memory(self) -> float:
        return self.params.get("memory")

    @property
    def cpu(self) -> float:
        return self.params.get("cpu")

    def __repr__(self) -> str:
        return f"Component({self.id!r})"


class PhysicalLink:
    """An undirected network link between two hosts."""

    def __init__(self, host_a: str, host_b: str, registry: ParameterRegistry):
        self.hosts = _pair(host_a, host_b)
        self.params = ParameterBag(P.PHYSICAL_LINK, registry)

    @property
    def reliability(self) -> float:
        return self.params.get("reliability") if self.params.get("connected") else 0.0

    @property
    def bandwidth(self) -> float:
        return self.params.get("bandwidth") if self.params.get("connected") else 0.0

    @property
    def delay(self) -> float:
        return self.params.get("delay")

    def __repr__(self) -> str:
        return f"PhysicalLink({self.hosts[0]!r} <-> {self.hosts[1]!r})"


class LogicalLink:
    """An undirected interaction path between two software components."""

    def __init__(self, comp_a: str, comp_b: str, registry: ParameterRegistry):
        self.components = _pair(comp_a, comp_b)
        self.params = ParameterBag(P.LOGICAL_LINK, registry)

    @property
    def frequency(self) -> float:
        return self.params.get("frequency")

    @property
    def evt_size(self) -> float:
        return self.params.get("evt_size")

    def __repr__(self) -> str:
        return f"LogicalLink({self.components[0]!r} <-> {self.components[1]!r})"


class Deployment(Mapping[str, str]):
    """An immutable mapping of component id to host id.

    Deployments are the values algorithms search over; being immutable and
    hashable lets them be memoized, compared, and diffed safely.
    """

    __slots__ = ("_map", "_hash")

    def __init__(self, mapping: Mapping[str, str]):
        self._map: Dict[str, str] = dict(mapping)
        self._hash: Optional[int] = None

    # -- Mapping protocol ---------------------------------------------------
    def __getitem__(self, component_id: str) -> str:
        return self._map[component_id]

    def __iter__(self) -> Iterator[str]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __hash__(self) -> int:
        # Order-independent XOR over item hashes.  Unlike the previous
        # frozenset-based hash this composes incrementally: :meth:`moved`
        # derives a child's hash from its parent's with two XORs, so the
        # memo-cache key costs O(1) per candidate on the search hot path
        # instead of an O(n) rehash (plus a frozenset allocation) each.
        if self._hash is None:
            value = 0
            for item in self._map.items():
                value ^= hash(item)
            self._hash = value
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Deployment):
            return self._map == other._map
        if isinstance(other, Mapping):
            return self._map == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        items = ", ".join(f"{c}->{h}" for c, h in sorted(self._map.items()))
        return f"Deployment({items})"

    # -- queries --------------------------------------------------------------
    def host_of(self, component_id: str) -> str:
        try:
            return self._map[component_id]
        except KeyError:
            raise UnknownEntityError("component", component_id) from None

    def components_on(self, host_id: str) -> Tuple[str, ...]:
        return tuple(sorted(c for c, h in self._map.items() if h == host_id))

    def hosts_used(self) -> FrozenSet[str]:
        return frozenset(self._map.values())

    # -- derivation -------------------------------------------------------------
    def moved(self, component_id: str, host_id: str) -> "Deployment":
        """A new deployment with one component reassigned.

        When this deployment's hash is already known, the child's hash is
        derived with two XORs instead of rehashed from scratch — the same
        Zobrist-style incremental scheme as ``CompiledDeployment``.
        """
        old_host = self._map.get(component_id)
        if old_host is None:
            raise UnknownEntityError("component", component_id)
        new_map = dict(self._map)
        new_map[component_id] = host_id
        child = Deployment(new_map)
        if self._hash is not None:
            child._hash = (self._hash if host_id == old_host
                           else self._hash
                           ^ hash((component_id, old_host))
                           ^ hash((component_id, host_id)))
        return child

    def diff(self, target: "Deployment") -> Tuple["Move", ...]:
        """The moves required to turn this deployment into *target*.

        Components present in only one of the two deployments are ignored;
        the effector treats those as installs/uninstalls handled separately.
        """
        moves = []
        for component_id, src in sorted(self._map.items()):
            dst = target._map.get(component_id)
            if dst is not None and dst != src:
                moves.append(Move(component_id, src, dst))
        return tuple(moves)

    def as_dict(self) -> Dict[str, str]:
        return dict(self._map)


@dataclass(frozen=True)
class Move:
    """One redeployment step: move *component* from *source* to *target*."""

    component: str
    source: str
    target: str


# Listener signatures: (event_name, payload_dict)
ModelListener = Callable[[str, Dict[str, Any]], None]

# Event names fired to listeners.
HOST_ADDED = "host_added"
COMPONENT_ADDED = "component_added"
HOST_REMOVED = "host_removed"
COMPONENT_REMOVED = "component_removed"
PHYSICAL_LINK_ADDED = "physical_link_added"
LOGICAL_LINK_ADDED = "logical_link_added"
PHYSICAL_LINK_REMOVED = "physical_link_removed"
LOGICAL_LINK_REMOVED = "logical_link_removed"
PARAMETER_CHANGED = "parameter_changed"
DEPLOYMENT_CHANGED = "deployment_changed"


class DeploymentModel:
    """Mutable representation of a distributed system's deployment architecture.

    The model owns:

    * the entity sets (hosts, components) and the two link relations;
    * a :class:`~repro.core.parameters.ParameterRegistry` defining which
      parameters exist (extensible at run time);
    * the current :class:`Deployment` mapping;
    * a listener list used by views and synchronizers.

    Hard constraints on valid deployments (memory, location, collocation —
    Section 3.1, User Input) are represented by objects from
    :mod:`repro.core.constraints` stored in :attr:`constraints`.
    """

    def __init__(self, registry: Optional[ParameterRegistry] = None,
                 name: str = "system"):
        self.name = name
        self.registry = registry if registry is not None else standard_registry()
        self._hosts: Dict[str, Host] = {}
        self._components: Dict[str, Component] = {}
        self._physical_links: Dict[Tuple[str, str], PhysicalLink] = {}
        self._logical_links: Dict[Tuple[str, str], LogicalLink] = {}
        self._deployment: Dict[str, str] = {}
        self._listeners: List[ModelListener] = []
        # Hard constraints (repro.core.constraints.Constraint instances).
        self.constraints: List[Any] = []
        #: Bumped whenever the logical-interaction structure or its
        #: parameters change; objectives key their aggregate caches on it.
        self.interaction_version = 0
        #: Bumped on *every* topology/parameter event (deployment changes
        #: excluded — evaluation takes the deployment explicitly).  Stateful
        #: incremental evaluators (objective accumulators, compiled-model
        #: snapshots) key their caches on it.
        self.version = 0

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------
    def add_listener(self, listener: ModelListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: ModelListener) -> None:
        self._listeners.remove(listener)

    def _fire(self, event: str, **payload: Any) -> None:
        if event != DEPLOYMENT_CHANGED:
            self.version += 1
        for listener in tuple(self._listeners):
            listener(event, payload)

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_host(self, host_id: str, **params: Any) -> Host:
        if host_id in self._hosts:
            raise DuplicateEntityError("host", host_id)
        host = Host(host_id, self.registry)
        host.params.update(params)
        self._hosts[host_id] = host
        self._fire(HOST_ADDED, host=host_id)
        return host

    def add_component(self, component_id: str, **params: Any) -> Component:
        if component_id in self._components:
            raise DuplicateEntityError("component", component_id)
        component = Component(component_id, self.registry)
        component.params.update(params)
        self._components[component_id] = component
        self._fire(COMPONENT_ADDED, component=component_id)
        return component

    def remove_host(self, host_id: str) -> None:
        """Remove a host, its links, and undeploy components on it."""
        self.host(host_id)  # raises if unknown
        for key in [k for k in self._physical_links if host_id in k]:
            del self._physical_links[key]
        for component_id, deployed_on in list(self._deployment.items()):
            if deployed_on == host_id:
                del self._deployment[component_id]
        del self._hosts[host_id]
        self._fire(HOST_REMOVED, host=host_id)

    def remove_component(self, component_id: str) -> None:
        self.component(component_id)  # raises if unknown
        for key in [k for k in self._logical_links if component_id in k]:
            del self._logical_links[key]
            self.interaction_version += 1
        self._deployment.pop(component_id, None)
        del self._components[component_id]
        self._fire(COMPONENT_REMOVED, component=component_id)

    def connect_hosts(self, host_a: str, host_b: str, **params: Any) -> PhysicalLink:
        self.host(host_a)
        self.host(host_b)
        if host_a == host_b:
            raise ModelError(f"cannot link host {host_a!r} to itself")
        key = _pair(host_a, host_b)
        if key in self._physical_links:
            raise DuplicateEntityError("physical link", f"{host_a}<->{host_b}")
        link = PhysicalLink(host_a, host_b, self.registry)
        link.params.update(params)
        self._physical_links[key] = link
        self._fire(PHYSICAL_LINK_ADDED, hosts=key)
        return link

    def connect_components(self, comp_a: str, comp_b: str,
                           **params: Any) -> LogicalLink:
        self.component(comp_a)
        self.component(comp_b)
        if comp_a == comp_b:
            raise ModelError(f"cannot link component {comp_a!r} to itself")
        key = _pair(comp_a, comp_b)
        if key in self._logical_links:
            raise DuplicateEntityError("logical link", f"{comp_a}<->{comp_b}")
        link = LogicalLink(comp_a, comp_b, self.registry)
        link.params.update(params)
        self._logical_links[key] = link
        self.interaction_version += 1
        self._fire(LOGICAL_LINK_ADDED, components=key)
        return link

    def disconnect_hosts(self, host_a: str, host_b: str) -> None:
        key = _pair(host_a, host_b)
        if key not in self._physical_links:
            raise UnknownEntityError("physical link", f"{host_a}<->{host_b}")
        del self._physical_links[key]
        self._fire(PHYSICAL_LINK_REMOVED, hosts=key)

    def disconnect_components(self, comp_a: str, comp_b: str) -> None:
        key = _pair(comp_a, comp_b)
        if key not in self._logical_links:
            raise UnknownEntityError("logical link", f"{comp_a}<->{comp_b}")
        del self._logical_links[key]
        self.interaction_version += 1
        self._fire(LOGICAL_LINK_REMOVED, components=key)

    # ------------------------------------------------------------------
    # Entity access
    # ------------------------------------------------------------------
    def host(self, host_id: str) -> Host:
        try:
            return self._hosts[host_id]
        except KeyError:
            raise UnknownEntityError("host", host_id) from None

    def component(self, component_id: str) -> Component:
        try:
            return self._components[component_id]
        except KeyError:
            raise UnknownEntityError("component", component_id) from None

    def physical_link(self, host_a: str, host_b: str) -> Optional[PhysicalLink]:
        return self._physical_links.get(_pair(host_a, host_b))

    def logical_link(self, comp_a: str, comp_b: str) -> Optional[LogicalLink]:
        return self._logical_links.get(_pair(comp_a, comp_b))

    @property
    def hosts(self) -> Tuple[Host, ...]:
        return tuple(self._hosts[h] for h in sorted(self._hosts))

    @property
    def components(self) -> Tuple[Component, ...]:
        return tuple(self._components[c] for c in sorted(self._components))

    @property
    def host_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._hosts))

    @property
    def component_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._components))

    @property
    def physical_links(self) -> Tuple[PhysicalLink, ...]:
        return tuple(self._physical_links[k] for k in sorted(self._physical_links))

    @property
    def logical_links(self) -> Tuple[LogicalLink, ...]:
        return tuple(self._logical_links[k] for k in sorted(self._logical_links))

    def has_host(self, host_id: str) -> bool:
        return host_id in self._hosts

    def has_component(self, component_id: str) -> bool:
        return component_id in self._components

    # ------------------------------------------------------------------
    # Parameter mutation (fires listeners — monitors write through here)
    # ------------------------------------------------------------------
    def set_host_param(self, host_id: str, name: str, value: Any) -> None:
        old = self.host(host_id).params.get(name)
        self.host(host_id).params.set(name, value)
        self._fire(PARAMETER_CHANGED, kind=P.HOST, entity=host_id,
                   name=name, old=old, new=value)

    def set_component_param(self, component_id: str, name: str, value: Any) -> None:
        old = self.component(component_id).params.get(name)
        self.component(component_id).params.set(name, value)
        self._fire(PARAMETER_CHANGED, kind=P.COMPONENT, entity=component_id,
                   name=name, old=old, new=value)

    def set_physical_link_param(self, host_a: str, host_b: str,
                                name: str, value: Any) -> None:
        link = self.physical_link(host_a, host_b)
        if link is None:
            raise UnknownEntityError("physical link", f"{host_a}<->{host_b}")
        old = link.params.get(name)
        link.params.set(name, value)
        self._fire(PARAMETER_CHANGED, kind=P.PHYSICAL_LINK, entity=link.hosts,
                   name=name, old=old, new=value)

    def set_logical_link_param(self, comp_a: str, comp_b: str,
                               name: str, value: Any) -> None:
        link = self.logical_link(comp_a, comp_b)
        if link is None:
            raise UnknownEntityError("logical link", f"{comp_a}<->{comp_b}")
        old = link.params.get(name)
        link.params.set(name, value)
        self.interaction_version += 1
        self._fire(PARAMETER_CHANGED, kind=P.LOGICAL_LINK, entity=link.components,
                   name=name, old=old, new=value)

    # ------------------------------------------------------------------
    # Derived network / interaction queries (hot paths for algorithms)
    # ------------------------------------------------------------------
    def reliability(self, host_a: str, host_b: str) -> float:
        """Effective reliability between two hosts.

        Collocation is perfectly reliable (1.0); unlinked host pairs have
        reliability 0.0 — the definition used by the availability objective.
        """
        if host_a == host_b:
            return 1.0
        link = self.physical_link(host_a, host_b)
        return link.reliability if link is not None else 0.0

    def bandwidth(self, host_a: str, host_b: str) -> float:
        if host_a == host_b:
            return float("inf")
        link = self.physical_link(host_a, host_b)
        return link.bandwidth if link is not None else 0.0

    def delay(self, host_a: str, host_b: str) -> float:
        if host_a == host_b:
            return 0.0
        link = self.physical_link(host_a, host_b)
        return link.delay if link is not None else float("inf")

    def frequency(self, comp_a: str, comp_b: str) -> float:
        if comp_a == comp_b:
            return 0.0
        link = self.logical_link(comp_a, comp_b)
        return link.frequency if link is not None else 0.0

    def evt_size(self, comp_a: str, comp_b: str) -> float:
        link = self.logical_link(comp_a, comp_b)
        return link.evt_size if link is not None else 0.0

    def host_neighbors(self, host_id: str) -> Tuple[str, ...]:
        """Hosts directly linked to *host_id* (regardless of link state)."""
        self.host(host_id)
        out = set()
        for a, b in self._physical_links:
            if a == host_id:
                out.add(b)
            elif b == host_id:
                out.add(a)
        return tuple(sorted(out))

    def connected_neighbors(self, host_id: str) -> Tuple[str, ...]:
        """Hosts reachable over currently-up links from *host_id*."""
        return tuple(
            h for h in self.host_neighbors(host_id)
            if self.physical_link(host_id, h).params.get("connected")
        )

    def logical_neighbors(self, component_id: str) -> Tuple[str, ...]:
        """Interaction partners of *component_id*.

        Cached per :attr:`interaction_version`: this is the inner loop of
        every incremental (move_delta-based) algorithm, and a linear scan
        of the link set per call would dominate local search at scale.
        """
        self.component(component_id)
        cache = getattr(self, "_adjacency_cache", None)
        if cache is None or cache[0] != self.interaction_version:
            adjacency: Dict[str, Set[str]] = {}
            for a, b in self._logical_links:
                adjacency.setdefault(a, set()).add(b)
                adjacency.setdefault(b, set()).add(a)
            cache = (self.interaction_version,
                     {c: tuple(sorted(n)) for c, n in adjacency.items()})
            self._adjacency_cache = cache
        return cache[1].get(component_id, ())

    def total_interaction_frequency(self) -> float:
        return sum(l.frequency for l in self._logical_links.values())

    def interaction_pairs(self) -> Iterator[Tuple[str, str, LogicalLink]]:
        """All interacting component pairs with their logical link."""
        for (a, b), link in sorted(self._logical_links.items()):
            yield a, b, link

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(self, component_id: str, host_id: str) -> None:
        """Place (or move) a component onto a host in the current deployment."""
        self.component(component_id)
        self.host(host_id)
        old = self._deployment.get(component_id)
        self._deployment[component_id] = host_id
        if old != host_id:
            self._fire(DEPLOYMENT_CHANGED, component=component_id,
                       old=old, new=host_id)

    def undeploy(self, component_id: str) -> None:
        self.component(component_id)
        old = self._deployment.pop(component_id, None)
        if old is not None:
            self._fire(DEPLOYMENT_CHANGED, component=component_id,
                       old=old, new=None)

    @property
    def deployment(self) -> Deployment:
        """Snapshot of the current deployment as an immutable mapping."""
        return Deployment(self._deployment)

    def set_deployment(self, deployment: Mapping[str, str]) -> None:
        """Replace the current deployment wholesale (fires one event per move)."""
        for component_id, host_id in deployment.items():
            self.component(component_id)
            self.host(host_id)
        for component_id, host_id in sorted(deployment.items()):
            self.deploy(component_id, host_id)

    def is_fully_deployed(self) -> bool:
        return all(c in self._deployment for c in self._components)

    def validate_deployment(self, deployment: Optional[Mapping[str, str]] = None,
                            ) -> None:
        """Raise :class:`DeploymentError` unless every component is mapped
        to a known host exactly once and no unknown components appear."""
        mapping = self._deployment if deployment is None else deployment
        for component_id, host_id in mapping.items():
            if component_id not in self._components:
                raise DeploymentError(
                    f"deployment maps unknown component {component_id!r}")
            if host_id not in self._hosts:
                raise DeploymentError(
                    f"component {component_id!r} mapped to unknown host {host_id!r}")
        missing = set(self._components) - set(mapping)
        if missing:
            raise DeploymentError(
                f"components not deployed: {sorted(missing)}")

    # ------------------------------------------------------------------
    # Copies and awareness-restricted views
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "DeploymentModel":
        """Deep copy sharing nothing mutable with the original."""
        clone = DeploymentModel(self.registry.copy(), name or self.name)
        for host in self.hosts:
            clone.add_host(host.id, **host.params.explicit())
        for component in self.components:
            clone.add_component(component.id, **component.params.explicit())
        for link in self.physical_links:
            clone.connect_hosts(*link.hosts, **link.params.explicit())
        for link in self.logical_links:
            clone.connect_components(*link.components, **link.params.explicit())
        for component_id, host_id in self._deployment.items():
            clone.deploy(component_id, host_id)
        clone.constraints = list(self.constraints)
        return clone

    def restricted_to(self, host_ids: Iterable[str],
                      name: Optional[str] = None) -> "DeploymentModel":
        """A sub-model containing only *host_ids*, the components deployed on
        them, and links internal to that host set.

        This realizes the decentralized instantiation's partial knowledge:
        "if there are two hosts in the system that are not aware of each
        other, then the respective models maintained by the two hosts do
        not contain each other's system parameters" (Section 3.2).
        """
        keep_hosts: Set[str] = set(host_ids)
        unknown = keep_hosts - set(self._hosts)
        if unknown:
            raise UnknownEntityError("host", sorted(unknown)[0])
        sub = DeploymentModel(self.registry.copy(),
                              name or f"{self.name}:view")
        for host_id in sorted(keep_hosts):
            sub.add_host(host_id, **self._hosts[host_id].params.explicit())
        keep_components = {
            c for c, h in self._deployment.items() if h in keep_hosts
        }
        for component_id in sorted(keep_components):
            sub.add_component(
                component_id, **self._components[component_id].params.explicit())
        for (a, b), link in self._physical_links.items():
            if a in keep_hosts and b in keep_hosts:
                sub.connect_hosts(a, b, **link.params.explicit())
        for (a, b), link in self._logical_links.items():
            if a in keep_components and b in keep_components:
                sub.connect_components(a, b, **link.params.explicit())
        for component_id in sorted(keep_components):
            sub.deploy(component_id, self._deployment[component_id])
        return sub

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def memory_used(self, host_id: str,
                    deployment: Optional[Mapping[str, str]] = None) -> float:
        mapping = self._deployment if deployment is None else deployment
        return sum(
            self._components[c].memory
            for c, h in mapping.items()
            if h == host_id and c in self._components
        )

    def all_deployments(self) -> Iterator[Deployment]:
        """Every possible assignment of components to hosts (k^n of them).

        Used by the Exact algorithm; deliberately a generator so small
        systems can be enumerated without materializing the space.
        """
        component_ids = self.component_ids
        host_ids = self.host_ids
        for assignment in itertools.product(host_ids, repeat=len(component_ids)):
            yield Deployment(dict(zip(component_ids, assignment, strict=True)))

    def stats(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "hosts": len(self._hosts),
            "components": len(self._components),
            "physical_links": len(self._physical_links),
            "logical_links": len(self._logical_links),
            "deployed": len(self._deployment),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (f"DeploymentModel({s['name']!r}, hosts={s['hosts']}, "
                f"components={s['components']})")
