"""The common Report API.

Every artifact the framework produces about its own behaviour — a
monitoring cycle, a redeployment, an algorithm run, a sweep, a lint
pass, a resilience campaign, a decentralized round — implements one
:class:`Report` protocol:

* ``to_dict(**opts)``  — JSON-safe structured payload;
* ``to_json(**opts)``  — canonical JSON (sorted keys, stable floats);
* ``render(**opts)``   — human-readable text, possibly multi-line;
* ``summary_line()``   — a single line for logs and ``--quiet`` output.

The CLI's shared ``--json``/``--quiet`` flags route every verb through
these four methods, so output formatting lives with each report class
instead of being re-invented per verb.

:class:`ReportBase` is the mixin concrete reports inherit: subclasses
supply ``to_dict`` and ``summary_line`` and get canonical ``to_json``
(and a JSON-backed default ``render``) for free.  Pre-existing method
names (``summary()``, ``as_dict()``) survive as deprecated aliases via
:func:`deprecated_alias` so code written against the old ad-hoc shapes
keeps working.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import fields, is_dataclass
from typing import Any, Callable, Dict, Mapping, Protocol, runtime_checkable

__all__ = ["Report", "ReportBase", "deprecated_alias", "json_safe"]


@runtime_checkable
class Report(Protocol):
    """Structural interface every framework report implements."""

    def to_dict(self, **opts: Any) -> Dict[str, Any]:
        """JSON-safe structured payload."""
        ...

    def to_json(self, **opts: Any) -> str:
        """Canonical JSON rendering of :meth:`to_dict`."""
        ...

    def render(self, **opts: Any) -> str:
        """Human-readable (possibly multi-line) text."""
        ...

    def summary_line(self) -> str:
        """One line suitable for logs and ``--quiet`` output."""
        ...


def json_safe(value: Any) -> Any:
    """Recursively coerce *value* into JSON-serializable primitives.

    Mappings (including :class:`~repro.core.model.Deployment`) become
    plain dicts, sequences become lists, dataclasses become field
    dicts, and anything else non-primitive becomes ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) \
            else value
        return [json_safe(v) for v in items]
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: json_safe(getattr(value, f.name))
                for f in fields(value)}
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return json_safe(to_dict())
    return str(value)


class ReportBase:
    """Mixin implementing :class:`Report` on top of two primitives.

    Subclasses implement :meth:`to_dict` and :meth:`summary_line`;
    ``to_json`` is derived canonically and ``render`` defaults to the
    JSON form (text-table reports override it).
    """

    def to_dict(self, **opts: Any) -> Dict[str, Any]:
        raise NotImplementedError

    def summary_line(self) -> str:
        raise NotImplementedError

    def to_json(self, indent: int = 2, **opts: Any) -> str:
        return json.dumps(json_safe(self.to_dict(**opts)),
                          indent=indent, sort_keys=True)

    def render(self, **opts: Any) -> str:
        return self.to_json(**opts)


def deprecated_alias(new_name: str,
                     old_name: str) -> Callable[..., Any]:
    """Build a method that warns and forwards to ``self.<new_name>``.

    Usage inside a class body::

        summary = deprecated_alias("summary_line", "summary")
    """

    def alias(self: Any, *args: Any, **kwargs: Any) -> Any:
        warnings.warn(
            f"{type(self).__name__}.{old_name}() is deprecated; "
            f"use {new_name}()", DeprecationWarning, stacklevel=2)
        return getattr(self, new_name)(*args, **kwargs)

    alias.__name__ = old_name
    alias.__qualname__ = old_name
    alias.__doc__ = f"Deprecated alias for :meth:`{new_name}`."
    return alias
