"""Core of the deployment improvement framework (paper Section 3).

The six framework components map onto this package as follows:

* **Model** — :mod:`repro.core.model` (+ :mod:`repro.core.parameters`)
* **Algorithm** — :mod:`repro.algorithms` (objective quantifiers in
  :mod:`repro.core.objectives`, constraint checkers in
  :mod:`repro.core.constraints`)
* **Analyzer** — :mod:`repro.core.analyzer`
* **Monitor** (platform-independent half) — :mod:`repro.core.monitoring`
* **Effector** (platform-independent half) — :mod:`repro.core.effector`
* **User Input** — :mod:`repro.core.user_input`

:mod:`repro.core.framework` wires them into the centralized (Figure 2) and
decentralized (Figure 3) instantiations.
"""

from repro.core.model import (
    Component, Deployment, DeploymentModel, Host, LogicalLink, Move,
    PhysicalLink,
)
from repro.core.objectives import (
    AvailabilityObjective, CommunicationCostObjective, DurabilityObjective,
    LatencyObjective, Objective, SecurityObjective, ThroughputObjective,
    WeightedObjective,
)
from repro.core.utility import (
    SatisfactionObjective, UserPreferences, UtilityFunction,
    overall_satisfaction,
)
from repro.core.constraints import (
    BandwidthConstraint, CollocationConstraint, Constraint, ConstraintSet,
    CpuConstraint, LocationConstraint, MemoryConstraint, fix_component,
    standard_constraints,
)
from repro.core.parameters import (
    ParameterDefinition, ParameterRegistry, standard_registry,
)
from repro.core.registry import AlgorithmRegistry

__all__ = [
    "AlgorithmRegistry",
    "AvailabilityObjective",
    "BandwidthConstraint",
    "CollocationConstraint",
    "CommunicationCostObjective",
    "Component",
    "Constraint",
    "ConstraintSet",
    "CpuConstraint",
    "Deployment",
    "DeploymentModel",
    "DurabilityObjective",
    "Host",
    "LatencyObjective",
    "LocationConstraint",
    "LogicalLink",
    "MemoryConstraint",
    "Move",
    "Objective",
    "ParameterDefinition",
    "ParameterRegistry",
    "PhysicalLink",
    "SatisfactionObjective",
    "SecurityObjective",
    "ThroughputObjective",
    "UserPreferences",
    "UtilityFunction",
    "WeightedObjective",
    "overall_satisfaction",
    "fix_component",
    "standard_constraints",
    "standard_registry",
]
