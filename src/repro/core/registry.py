"""Shared algorithm registry (the paper's meta-level add/remove API).

Section 4.3: "The API allows for addition and removal of algorithms ...".
Both the Analyzer (:mod:`repro.core.analyzer`) and DeSi's
AlgorithmContainer (:mod:`repro.desi.container`) expose this meta-level
operation; historically each had its own dialect (different names,
signatures, and duplicate-registration behavior).  :class:`AlgorithmRegistry`
is the single implementation both now delegate to.

Registry misuse raises :class:`~repro.core.errors.RegistryError` subclasses,
never :class:`~repro.core.errors.AnalyzerError` — the latter is reserved for
actual analysis failures.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import (
    DuplicateAlgorithmError, RegistryError, UnknownAlgorithmError,
)

#: Zero-argument callable building a fresh algorithm instance per run, so
#: internal state (RNGs, counters) never leaks across runs.
AlgorithmFactory = Callable[[], "object"]


class AlgorithmRegistry:
    """Name -> factory registry with optional cost tiers.

    Args:
        tiers: Ordered tier names.  The Analyzer uses
            ``("exact", "thorough", "fast")`` (Section 5.1's cost spectrum);
            registries that don't need tiers keep the single default.
        default_tier: Tier used when ``register`` is called without one;
            defaults to the first entry of *tiers*.
    """

    def __init__(self, tiers: Sequence[str] = ("default",),
                 default_tier: Optional[str] = None):
        if not tiers:
            raise RegistryError("registry needs at least one tier")
        self._factories: Dict[str, AlgorithmFactory] = {}
        self._tiers: Dict[str, List[str]] = {tier: [] for tier in tiers}
        self.default_tier = default_tier if default_tier is not None else tiers[0]
        if self.default_tier not in self._tiers:
            raise RegistryError(f"unknown tier {self.default_tier!r}")

    # -- registration -------------------------------------------------------
    def register(self, name: str, factory: AlgorithmFactory, *,
                 tier: Optional[str] = None, replace: bool = False) -> None:
        """Register *factory* under *name*.

        Raises:
            DuplicateAlgorithmError: *name* is taken and ``replace`` is False.
            RegistryError: *tier* is not one of this registry's tiers.
        """
        if tier is None:
            tier = self.default_tier
        if tier not in self._tiers:
            raise RegistryError(f"unknown tier {tier!r}")
        if name in self._factories and not replace:
            raise DuplicateAlgorithmError(name)
        self._factories[name] = factory
        for members in self._tiers.values():
            if name in members:
                members.remove(name)
        self._tiers[tier].append(name)

    def unregister(self, name: str) -> None:
        """Remove *name*; raises :class:`UnknownAlgorithmError` if absent."""
        if name not in self._factories:
            raise UnknownAlgorithmError(name)
        self.discard(name)

    def discard(self, name: str) -> bool:
        """Remove *name* if present; returns whether anything was removed."""
        removed = self._factories.pop(name, None) is not None
        for members in self._tiers.values():
            if name in members:
                members.remove(name)
        return removed

    # -- lookup -------------------------------------------------------------
    def get(self, name: str) -> AlgorithmFactory:
        try:
            return self._factories[name]
        except KeyError:
            raise UnknownAlgorithmError(name) from None

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._factories))

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._factories))

    def members(self, tier: str) -> Tuple[str, ...]:
        """Names registered under *tier*, in registration order."""
        try:
            return tuple(self._tiers[tier])
        except KeyError:
            raise RegistryError(f"unknown tier {tier!r}") from None

    def tier_of(self, name: str) -> str:
        for tier, members in self._tiers.items():
            if name in members:
                return tier
        raise UnknownAlgorithmError(name)

    def items(self) -> Tuple[Tuple[str, AlgorithmFactory], ...]:
        return tuple(sorted(self._factories.items()))

    def __repr__(self) -> str:
        by_tier = {t: len(m) for t, m in self._tiers.items() if m}
        return f"AlgorithmRegistry({len(self._factories)} algorithms, {by_tier})"
