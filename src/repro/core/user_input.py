"""Design-time user input — the framework's User Input component.

Section 3.1: "Some system parameters may not be easily monitored (e.g.,
security of a network link).  Also, some parameters may be stable throughout
the system's execution (e.g., CPU speed on a given host).  The values for
such parameters are provided by the system's architect at design time ...
the architect also must be capable of providing constraints on the allowable
deployment architectures."

:class:`UserInput` is a declarative record of those architect-supplied
values and constraints; :meth:`UserInput.apply` writes them into a model.
Keeping user input as data (rather than imperative model edits) lets the
same input be replayed onto the centralized model and onto each host's
decentralized model, and round-trips through the xADL serializer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.constraints import (
    CollocationConstraint, Constraint, LocationConstraint,
)
from repro.core.model import DeploymentModel


@dataclass
class UserInput:
    """Architect-supplied parameter values and deployment constraints."""

    #: host id -> {param: value}
    host_params: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: component id -> {param: value}
    component_params: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: (host a, host b) -> {param: value}
    physical_link_params: Dict[Tuple[str, str], Dict[str, Any]] = \
        field(default_factory=dict)
    #: (comp a, comp b) -> {param: value}
    logical_link_params: Dict[Tuple[str, str], Dict[str, Any]] = \
        field(default_factory=dict)
    constraints: List[Constraint] = field(default_factory=list)

    # -- builder API ----------------------------------------------------------
    def set_host(self, host: str, **params: Any) -> "UserInput":
        self.host_params.setdefault(host, {}).update(params)
        return self

    def set_component(self, component: str, **params: Any) -> "UserInput":
        self.component_params.setdefault(component, {}).update(params)
        return self

    def set_physical_link(self, host_a: str, host_b: str,
                          **params: Any) -> "UserInput":
        key = (host_a, host_b) if host_a <= host_b else (host_b, host_a)
        self.physical_link_params.setdefault(key, {}).update(params)
        return self

    def set_logical_link(self, comp_a: str, comp_b: str,
                         **params: Any) -> "UserInput":
        key = (comp_a, comp_b) if comp_a <= comp_b else (comp_b, comp_a)
        self.logical_link_params.setdefault(key, {}).update(params)
        return self

    def restrict_location(self, component: str,
                          allowed: Sequence[str] = None,
                          forbidden: Sequence[str] = None) -> "UserInput":
        self.constraints.append(
            LocationConstraint(component, allowed=allowed,
                               forbidden=forbidden))
        return self

    def collocate(self, *components: str) -> "UserInput":
        self.constraints.append(
            CollocationConstraint(list(components), together=True))
        return self

    def separate(self, *components: str) -> "UserInput":
        self.constraints.append(
            CollocationConstraint(list(components), together=False))
        return self

    # -- application --------------------------------------------------------
    def apply(self, model: DeploymentModel) -> None:
        """Write every recorded value and constraint into *model*.

        Entities the model does not contain are skipped silently — a
        decentralized host's partial model receives only the inputs that
        concern it.
        """
        for host, params in self.host_params.items():
            if model.has_host(host):
                for name, value in params.items():
                    model.set_host_param(host, name, value)
        for component, params in self.component_params.items():
            if model.has_component(component):
                for name, value in params.items():
                    model.set_component_param(component, name, value)
        for (host_a, host_b), params in self.physical_link_params.items():
            if model.physical_link(host_a, host_b) is not None:
                for name, value in params.items():
                    model.set_physical_link_param(host_a, host_b, name, value)
        for (comp_a, comp_b), params in self.logical_link_params.items():
            if model.logical_link(comp_a, comp_b) is not None:
                for name, value in params.items():
                    model.set_logical_link_param(comp_a, comp_b, name, value)
        for constraint in self.constraints:
            if constraint not in model.constraints:
                model.constraints.append(constraint)
