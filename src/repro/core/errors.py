"""Exception hierarchy for the deployment improvement framework.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers embedding the framework can catch a single base class.  The
sub-hierarchy mirrors the framework's high-level components (model,
algorithm, analyzer, monitor, effector) described in Section 3 of the paper.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ModelError(ReproError):
    """A problem with the deployment model (unknown entity, bad parameter)."""


class UnknownEntityError(ModelError):
    """An operation referenced a host, component, or link not in the model."""

    def __init__(self, kind: str, identifier: str):
        super().__init__(f"unknown {kind}: {identifier!r}")
        self.kind = kind
        self.identifier = identifier


class DuplicateEntityError(ModelError):
    """An entity with the same identifier already exists in the model."""

    def __init__(self, kind: str, identifier: str):
        super().__init__(f"duplicate {kind}: {identifier!r}")
        self.kind = kind
        self.identifier = identifier


class ParameterError(ModelError):
    """A parameter value violated its definition (type, bounds, kind)."""


class DeploymentError(ReproError):
    """An invalid deployment mapping (component deployed nowhere/twice)."""


class ConstraintViolationError(ReproError):
    """A deployment was rejected because it violates a hard constraint."""

    def __init__(self, constraint: object, detail: str = ""):
        message = f"constraint violated: {constraint}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.constraint = constraint
        self.detail = detail


class AlgorithmError(ReproError):
    """An algorithm could not produce a valid deployment."""


class NoValidDeploymentError(AlgorithmError):
    """The constraint set admits no deployment at all."""


class EvaluationBudgetExceeded(AlgorithmError):
    """An evaluation engine exhausted its evaluation or time budget.

    Raised from :class:`repro.algorithms.engine.EvaluationEngine` when a
    per-run budget runs out.  :meth:`DeploymentAlgorithm.run` catches it and
    degrades to the best deployment scored so far (graceful truncation); it
    only escapes to callers when truncation has nothing to fall back on.
    """


class AnalyzerError(ReproError):
    """The analyzer could not select a course of action."""


class RegistryError(ReproError):
    """Misuse of an algorithm registry (not an analysis failure)."""


class DuplicateAlgorithmError(RegistryError):
    """An algorithm with the same name is already registered."""

    def __init__(self, name: str):
        super().__init__(f"algorithm {name!r} already registered")
        self.name = name


class UnknownAlgorithmError(RegistryError):
    """An operation referenced an algorithm that is not registered."""

    def __init__(self, name: str):
        super().__init__(f"algorithm {name!r} is not registered")
        self.name = name


class LintError(ReproError):
    """Static verification produced blocking (error-severity) findings.

    Carries the machine-readable findings so callers can render or log
    them; the message embeds a short summary of the first few.
    """

    def __init__(self, message: str, findings: object = ()):
        self.findings = tuple(findings)  # repro.lint.core.Finding instances
        if self.findings:
            shown = "; ".join(str(f) for f in self.findings[:3])
            more = len(self.findings) - 3
            if more > 0:
                shown += f"; ... and {more} more"
            message = f"{message}: {shown}"
        super().__init__(message)


class PreflightError(LintError):
    """An effector refused to enact a plan that failed static verification."""


class MonitoringError(ReproError):
    """A monitor failed to produce data for a model parameter."""


class EffectorError(ReproError):
    """Redeployment could not be effected on the implementation platform."""


class MigrationError(EffectorError):
    """A component migration failed mid-flight."""


class MigrationTimeoutError(MigrationError):
    """A redeployment did not converge within its timeout.

    Raised instead of returning a silently-partial
    :class:`~repro.core.effector.EffectReport`: callers must either see the
    plan complete or see this error (after the effector has retried and, for
    transactional plans, rolled back).  Carries the pending moves at expiry
    and, when raised by :meth:`MiddlewareEffector.effect`, the final
    ``report`` describing what was retried and rolled back.
    """

    def __init__(self, message: str, pending: object = None,
                 report: object = None):
        super().__init__(message)
        self.pending = dict(pending) if pending else {}
        self.report = report


class ScheduleError(EffectorError):
    """No constraint-safe migration schedule exists, or a schedule
    document is malformed.

    Raised by :class:`repro.plan.MigrationPlanner` when no wave ordering
    (even through buffer-host staging) keeps every barrier state inside
    the constraint set, and by the schedule loaders on structurally
    invalid documents.  The lint rules ``PL001``–``PL003`` report
    schedule problems all-at-once without raising.
    """


class MiddlewareError(ReproError):
    """An error inside the Prism-MW style middleware substrate."""


class SerializationError(MiddlewareError):
    """A component or event could not be (de)serialized for migration."""


class XadlError(SerializationError):
    """An xADL document is structurally invalid.

    Raised (instead of constructing a broken model) when a document's link
    or deployment elements reference undeclared hosts/components, when
    required attributes are missing, or when entity ids collide.
    """


class FaultPlanError(ReproError):
    """A fault-injection plan is invalid (unknown refs, bad times, overlap).

    Raised by :meth:`repro.faults.FaultPlan.validate` and by the plan
    loaders; the lint rules ``FP001``–``FP004`` report the same problems
    all-at-once without raising.
    """


class NetworkError(ReproError):
    """A simulated network operation failed (disconnected link, timeout)."""


class LinkDownError(NetworkError):
    """A message was dropped because the physical link is disconnected."""


class SynchronizationError(ReproError):
    """Decentralized model/algorithm synchronization failed."""


class AuctionError(ReproError):
    """A DecAp auction could not complete."""
