"""The Analyzer: meta-level decision making over algorithms and results.

Section 3.1: "Analyzers are meta-level algorithms that leverage the results
obtained from the algorithm(s) and the model to determine a course of action
for satisfying the system's overall objective ... Analyzers may also hold
the history of the system's execution by logging fluctuations of the desired
objectives and the parameters of interest."

Section 5.1 gives the concrete policy this module implements:

* **size of the architecture** — Exact only for very small systems (on the
  order of 5 hosts and 15 components);
* **the system's availability profile** — "the analyzer selects a more
  expensive algorithm to run if the system is stable ... if the system is
  unstable, the analyzer runs a less expensive algorithm that could produce
  faster results";
* **the system's overall latency** — "in rare situations where [latency
  also improves] is not the case, the analyzer either disallows the results
  of the algorithms to take effect or modifies the solution".

Analyzers can also reconfigure the framework (add/remove algorithms at run
time) via :meth:`Analyzer.register_algorithm` /
:meth:`Analyzer.unregister_algorithm`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.algorithms import (
    AlgorithmResult, AvalaAlgorithm, DeploymentAlgorithm, ExactAlgorithm,
    HillClimbingAlgorithm, StochasticAlgorithm,
)
from repro.algorithms.engine import (
    DeploymentCache, EvaluationEngine, PortfolioReport, PortfolioRunner,
)
from repro.core.constraints import ConstraintSet
from repro.core.effector import RedeploymentPlan, plan_redeployment
from repro.core.errors import ScheduleError
from repro.core.model import Deployment, DeploymentModel
from repro.core.objectives import Objective
from repro.core.registry import AlgorithmRegistry
from repro.obs import Observability, get_observability

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.plan.planner import MigrationPlanner


class ObjectiveHistory:
    """Time series of an objective's observed values — the paper's
    "system's availability profile"."""

    def __init__(self, max_samples: int = 1000):
        self.samples: List[Tuple[float, float]] = []
        self.max_samples = max_samples

    def record(self, time: float, value: float) -> None:
        self.samples.append((time, value))
        if len(self.samples) > self.max_samples:
            del self.samples[: len(self.samples) - self.max_samples]

    def volatility(self, window: int = 5) -> Optional[float]:
        """Spread (max - min) of the last *window* samples; None when the
        profile is too short to judge."""
        if len(self.samples) < window:
            return None
        recent = [value for __, value in self.samples[-window:]]
        return max(recent) - min(recent)

    def is_stable(self, threshold: float, window: int = 5) -> Optional[bool]:
        spread = self.volatility(window)
        if spread is None:
            return None
        return spread < threshold

    @property
    def latest(self) -> Optional[float]:
        return self.samples[-1][1] if self.samples else None


@dataclass
class Decision:
    """Outcome of one analysis cycle."""

    action: str  # "redeploy" or "no_action"
    reason: str
    current_value: float
    selected: Optional[AlgorithmResult] = None
    plan: Optional[RedeploymentPlan] = None
    candidates: List[AlgorithmResult] = field(default_factory=list)
    algorithms_run: List[str] = field(default_factory=list)
    guard_values: Dict[str, float] = field(default_factory=dict)
    #: Full per-algorithm outcome record (ok/skipped/error/timeout) of the
    #: portfolio run behind this decision.
    portfolio: Optional[PortfolioReport] = None

    @property
    def will_redeploy(self) -> bool:
        return self.action == "redeploy"

    def summary(self) -> str:
        head = f"{self.action} ({self.reason})"
        if self.selected is not None:
            head += f"; best={self.selected.summary_line()}"
        return head

    def to_dict(self) -> Dict[str, Any]:
        return {
            "action": self.action,
            "reason": self.reason,
            "current_value": self.current_value,
            "selected": (None if self.selected is None
                         else self.selected.to_dict()),
            "plan": (None if self.plan is None else self.plan.summary()),
            "algorithms_run": list(self.algorithms_run),
            "guard_values": dict(self.guard_values),
        }


AlgorithmFactory = Callable[[], DeploymentAlgorithm]


class Analyzer:
    """Centralized analyzer implementing the Section 5.1 policy.

    Args:
        objective: The primary objective (e.g. availability).
        constraints: Hard constraints passed to every algorithm.
        latency_guard: Secondary minimize-objective used as a veto
            (typically :class:`LatencyObjective`); ``None`` disables the
            guard.
        exact_host_limit / exact_component_limit: Architecture size under
            which the Exact algorithm is considered.
        stability_threshold: Profile spread below which the system counts
            as stable.
        stability_window: Number of profile samples the spread is taken
            over.
        min_improvement: Smallest objective improvement worth a
            redeployment.
        guard_tolerance: Allowed multiplicative worsening of the guard
            objective (1.10 = up to 10% worse latency is acceptable).
        seed: Seed handed to the stock algorithms.
        parallel: Run the selected algorithms concurrently (Section 4.3's
            "invokes the selected redeployment algorithms" as a portfolio)
            instead of one after another.
        algorithm_timeout: Per-algorithm wall-clock deadline per cycle in
            seconds; a timed-out algorithm degrades to a skipped outcome.
        evaluation_budget: Per-algorithm cap on charged objective
            evaluations per cycle (graceful truncation).
        max_workers: Thread-pool width for the portfolio.
        planner: Optional :class:`repro.plan.MigrationPlanner`; when set,
            redeploy decisions carry a wave schedule whose predicted
            makespan and disruption volume feed the guard values.
        max_makespan: Veto threshold on the schedule's predicted makespan
            in simulated seconds; ``None`` disables the veto.
    """

    #: Cost tiers of the Section-5.1 selection policy.
    TIERS = ("exact", "thorough", "fast")

    def __init__(self, objective: Objective,
                 constraints: Optional[ConstraintSet] = None,
                 latency_guard: Optional[Objective] = None,
                 exact_host_limit: int = 5,
                 exact_component_limit: int = 15,
                 stability_threshold: float = 0.05,
                 stability_window: int = 5,
                 min_improvement: float = 0.01,
                 guard_tolerance: float = 1.10,
                 seed: Optional[int] = None,
                 parallel: bool = True,
                 algorithm_timeout: Optional[float] = None,
                 evaluation_budget: Optional[int] = None,
                 max_workers: Optional[int] = None,
                 planner: Optional["MigrationPlanner"] = None,
                 max_makespan: Optional[float] = None,
                 obs: Optional[Observability] = None):
        self.obs = obs if obs is not None else get_observability()
        self.planner = planner
        self.max_makespan = max_makespan
        self.objective = objective
        self.constraints = constraints if constraints is not None else ConstraintSet()
        self.latency_guard = latency_guard
        self.exact_host_limit = exact_host_limit
        self.exact_component_limit = exact_component_limit
        self.stability_threshold = stability_threshold
        self.stability_window = stability_window
        self.min_improvement = min_improvement
        self.guard_tolerance = guard_tolerance
        self.seed = seed
        self.history = ObjectiveHistory()
        self.decisions: List[Decision] = []
        self.redeployments_effected = 0
        # Pluggable algorithm suite, grouped by cost tier (the analyzer
        # "determin[es] the best configuration for the tool" by editing
        # the registry at run time).
        self.registry = AlgorithmRegistry(tiers=self.TIERS,
                                          default_tier="thorough")
        # One memo cache for the whole analyzer: the portfolio's engines,
        # the current-value evaluation, and the guard all share it, and it
        # survives across cycles until the model changes under monitoring.
        self._cache = DeploymentCache()
        self._engine = EvaluationEngine(objective, self.constraints,
                                        cache=self._cache)
        self._guard_engine = (
            EvaluationEngine(latency_guard, self.constraints,
                             cache=self._cache)
            if latency_guard is not None else None)
        self._portfolio = PortfolioRunner(
            parallel=parallel, algorithm_timeout=algorithm_timeout,
            max_evaluations=evaluation_budget, max_workers=max_workers,
            cache=self._cache)
        self._install_default_algorithms()

    # ------------------------------------------------------------------
    # Algorithm suite management (framework adaptation)
    # ------------------------------------------------------------------
    def _install_default_algorithms(self) -> None:
        self.registry.register(
            "exact", lambda: ExactAlgorithm(
                self.objective, self.constraints, seed=self.seed),
            tier="exact")
        self.registry.register(
            "avala", lambda: AvalaAlgorithm(
                self.objective, self.constraints, seed=self.seed),
            tier="thorough")
        self.registry.register(
            "stochastic", lambda: StochasticAlgorithm(
                self.objective, self.constraints, seed=self.seed,
                iterations=100),
            tier="thorough")
        self.registry.register(
            "hillclimb", lambda: HillClimbingAlgorithm(
                self.objective, self.constraints, seed=self.seed,
                max_rounds=50),
            tier="thorough")
        # The unstable-system tier: "a less expensive algorithm that could
        # produce faster results for the immediate improvement" (§5.1) —
        # a handful of stochastic restarts, O(n^2) each.
        self.registry.register(
            "stochastic_fast", lambda: StochasticAlgorithm(
                self.objective, self.constraints, seed=self.seed,
                iterations=10),
            tier="fast")

    def register_algorithm(self, name: str, factory: AlgorithmFactory,
                           tier: str = "thorough") -> None:
        """Deprecated shim — use ``analyzer.registry.register`` instead.

        Kept with its historical replace-on-collision semantics.
        """
        warnings.warn(
            "Analyzer.register_algorithm is deprecated; use "
            "Analyzer.registry.register(name, factory, tier=...)",
            DeprecationWarning, stacklevel=2)
        self.registry.register(name, factory, tier=tier, replace=True)

    def unregister_algorithm(self, name: str) -> None:
        """Deprecated shim — use ``analyzer.registry.unregister``/``discard``.

        Kept with its historical remove-if-present semantics.
        """
        warnings.warn(
            "Analyzer.unregister_algorithm is deprecated; use "
            "Analyzer.registry.unregister(name)",
            DeprecationWarning, stacklevel=2)
        self.registry.discard(name)

    @property
    def algorithm_names(self) -> Tuple[str, ...]:
        return self.registry.names

    @property
    def _tiers(self) -> Dict[str, List[str]]:
        """Tier -> member names view (kept for backward compatibility)."""
        return {tier: list(self.registry.members(tier))
                for tier in self.TIERS}

    # ------------------------------------------------------------------
    # Selection policy (Section 5.1)
    # ------------------------------------------------------------------
    def exact_feasible(self, model: DeploymentModel) -> bool:
        return (len(model.host_ids) <= self.exact_host_limit
                and len(model.component_ids) <= self.exact_component_limit)

    def select_algorithms(self, model: DeploymentModel) -> List[str]:
        """Which algorithms to run this cycle, by size and stability."""
        if self.exact_feasible(model) and self._tiers["exact"]:
            return list(self._tiers["exact"])
        stable = self.history.is_stable(self.stability_threshold,
                                        self.stability_window)
        if stable is False and self._tiers["fast"]:
            # Unstable: cheap algorithm for an immediate improvement.
            return list(self._tiers["fast"])
        # Stable (or not enough profile yet): afford the expensive suite.
        return list(self._tiers["thorough"]) or list(self._tiers["fast"])

    # ------------------------------------------------------------------
    # Analysis cycle
    # ------------------------------------------------------------------
    def analyze(self, model: DeploymentModel, now: float = 0.0) -> Decision:
        """Run one analysis cycle against *model* and decide what to do.

        The selected algorithms execute as a portfolio: concurrently when
        the analyzer was built with ``parallel=True``, each under the
        configured timeout/evaluation budget.  An algorithm that fails,
        crashes, or times out degrades to a skipped outcome (recorded in
        ``decision.portfolio``) — it never aborts the cycle.
        """
        obs = self.obs
        with obs.span("analyzer.cycle") as cycle_span:
            current = model.deployment
            current_value = self._engine.evaluate(model, current,
                                                  charge=False)
            self.history.record(now, current_value)

            names = self.select_algorithms(model)
            factories = {name: self.registry.get(name)
                         for name in names if name in self.registry}
            with obs.span("analyzer.portfolio",
                          algorithms=names) as portfolio_span:
                report = self._portfolio.run(model, factories,
                                             initial=current)
                portfolio_span.set(outcomes=len(report.outcomes))
            candidates = [outcome.result for outcome in report.outcomes
                          if outcome.ok and outcome.result.valid]

            decision = self._decide(model, current, current_value,
                                    candidates)
            decision.algorithms_run = names
            decision.portfolio = report
            self.decisions.append(decision)
            cycle_span.set(action=decision.action,
                           current_value=current_value)
            obs.counter("algorithms.portfolio_runs").inc()
            obs.counter("analyzer.decisions", action=decision.action).inc()
            # Promote the portfolio's memo/kernel accounting into the
            # metrics registry — the engine hot path itself stays obs-free.
            for key, value in report.counters().items():
                if value:
                    obs.counter(f"algorithms.engine.{key}").inc(value)
        return decision

    def _decide(self, model: DeploymentModel, current, current_value: float,
                candidates: List[AlgorithmResult]) -> Decision:
        if not candidates:
            return Decision("no_action", "no algorithm produced a valid "
                            "deployment", current_value)
        ranked = sorted(
            candidates,
            key=lambda r: self.objective.improvement(r.value, current_value),
            reverse=True)
        guard_values: Dict[str, float] = {}
        selected: Optional[AlgorithmResult] = None
        veto_reason = ""
        for result in ranked:
            ok, reason, extras = self._passes_guard(model, current, result)
            guard_values.update(extras)
            if ok:
                selected = result
                break
            veto_reason = reason
        if selected is None:
            # §5.1: "the analyzer either disallows the results of the
            # algorithms to take effect or MODIFIES THE SOLUTION such that
            # it does not significantly increase the system's overall
            # latency" — try reverting the guard-hostile moves of the best
            # candidate before giving up.
            repaired = self._repair_for_guard(model, current, ranked[0])
            if repaired is not None:
                selected = repaired
            else:
                return Decision("no_action",
                                f"all candidates vetoed ({veto_reason})",
                                current_value, candidates=ranked,
                                guard_values=guard_values)
        improvement = self.objective.improvement(selected.value, current_value)
        if improvement < self.min_improvement:
            return Decision(
                "no_action",
                f"best improvement {improvement:.4f} below threshold "
                f"{self.min_improvement}",
                current_value, selected=selected, candidates=ranked,
                guard_values=guard_values)
        try:
            plan = plan_redeployment(model, selected.deployment, current,
                                     planner=self.planner)
        except ScheduleError:
            # No constraint-safe wave ordering exists; fall back to the
            # flat (all-at-once) plan rather than refusing to act.
            plan = plan_redeployment(model, selected.deployment, current)
        if plan.unreachable:
            return Decision("no_action",
                            "plan moves components with no usable route: "
                            + ", ".join(plan.unreachable),
                            current_value, selected=selected,
                            candidates=ranked, guard_values=guard_values)
        if plan.schedule is not None:
            guard_values["predicted_makespan"] = plan.schedule.makespan
            guard_values["predicted_disruption_kb"] = plan.schedule.total_kb
            if (self.max_makespan is not None
                    and plan.schedule.makespan > self.max_makespan):
                return Decision(
                    "no_action",
                    f"predicted makespan {plan.schedule.makespan:.3f} s "
                    f"exceeds limit {self.max_makespan:.3f} s",
                    current_value, selected=selected, candidates=ranked,
                    guard_values=guard_values)
        return Decision("redeploy",
                        f"improvement {improvement:.4f} via "
                        f"{selected.algorithm}",
                        current_value, selected=selected, plan=plan,
                        candidates=ranked, guard_values=guard_values)

    def _repair_for_guard(self, model: DeploymentModel, current,
                          result: AlgorithmResult,
                          ) -> Optional[AlgorithmResult]:
        """Modify a guard-vetoed solution by reverting its most
        guard-hostile moves until the guard passes.

        Greedy: repeatedly undo the single move whose reversal most
        improves the guard objective, stopping when the guard is satisfied
        or when reverting would erase the primary-objective improvement.
        Returns a patched result (marked ``repaired`` in extras) or None.
        """
        if self.latency_guard is None:
            return None
        guard = self.latency_guard
        working = dict(result.deployment)
        before_guard = self._guard_engine.evaluate(model, current,
                                                   charge=False)
        limit = (before_guard * self.guard_tolerance
                 if guard.direction == "min"
                 else before_guard / self.guard_tolerance)
        moved = [c for c in working
                 if c in current and current[c] != working[c]]
        for __ in range(len(moved)):
            guard_now = guard.evaluate(model, working)
            ok = (guard_now <= limit if guard.direction == "min"
                  else guard_now >= limit)
            if ok:
                break
            best_component = None
            best_gain = 0.0
            for component in moved:
                if working[component] == current[component]:
                    continue
                delta = guard.move_delta(model, working, component,
                                         current[component])
                gain = -delta if guard.direction == "min" else delta
                if gain > best_gain:
                    best_gain = gain
                    best_component = component
            if best_component is None:
                return None  # no reversal helps the guard
            working[best_component] = current[best_component]
        guard_now = guard.evaluate(model, working)
        ok = (guard_now <= limit if guard.direction == "min"
              else guard_now >= limit)
        if not ok:
            return None
        if not self.constraints.is_satisfied(model, working):
            return None
        value = self._engine.evaluate(model, working, charge=False)
        if self.objective.improvement(
                value,
                self._engine.evaluate(model, current, charge=False)) <= 0.0:
            return None  # repair erased the improvement
        patched = AlgorithmResult(
            algorithm=f"{result.algorithm}+guard-repair",
            deployment=Deployment(working),
            value=value,
            objective=result.objective,
            valid=True,
            elapsed=result.elapsed,
            evaluations=result.evaluations,
            moves_from_initial=sum(
                1 for c in working
                if c in current and current[c] != working[c]),
            extra={**result.extra, "repaired": True},
        )
        return patched

    def _passes_guard(self, model: DeploymentModel, current,
                      result: AlgorithmResult,
                      ) -> Tuple[bool, str, Dict[str, float]]:
        """Latency-guard veto (Section 5.1's third factor)."""
        if self.latency_guard is None:
            return True, "", {}
        guard = self.latency_guard
        before = self._guard_engine.evaluate(model, current, charge=False)
        after = self._guard_engine.evaluate(model, result.deployment,
                                            charge=False)
        extras = {f"{guard.name}_before": before,
                  f"{guard.name}_after_{result.algorithm}": after}
        if guard.direction == "min":
            acceptable = after <= before * self.guard_tolerance
        else:
            acceptable = after >= before / self.guard_tolerance
        if acceptable:
            return True, "", extras
        return (False,
                f"{guard.name} would go {before:.4g} -> {after:.4g}, beyond "
                f"tolerance x{self.guard_tolerance}",
                extras)

    # ------------------------------------------------------------------
    def record_outcome(self, succeeded: bool) -> None:
        """Feed back the effector's outcome into the profile."""
        if succeeded:
            self.redeployments_effected += 1

    def profile_summary(self) -> Dict[str, Any]:
        return {
            "samples": len(self.history.samples),
            "latest": self.history.latest,
            "volatility": self.history.volatility(self.stability_window),
            "decisions": len(self.decisions),
            "redeployments": self.redeployments_effected,
        }
