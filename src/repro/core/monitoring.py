"""Platform-independent monitoring: interpretation and stability detection.

Section 3.1 (Monitor): "The monitor is implemented in two parts: a
platform-dependent part that 'hooks' into the implementation platform and
performs the actual monitoring of the system, and a platform-independent
part that interprets and may look for patterns in the monitored data.  For
example, it determines if the data is stable enough to be passed on to the
model."

The platform-dependent halves live in :mod:`repro.middleware.monitors`; they
produce per-window raw reports.  This module interprets those reports:

* :class:`StabilityDetector` implements the paper's ε-rule — "once the
  monitored data is stable (i.e., the difference in the data across a
  desired number [of] consecutive intervals is less than an adjustable
  value ε)" it is released to the model (§4.3);
* :class:`MonitoringHub` aggregates the per-host reports the Deployer
  receives, reconciles the two ends' estimates of each link, converts
  directed event rates into undirected logical-link frequencies, runs every
  series through its detector, and writes stable values into the
  :class:`~repro.core.model.DeploymentModel`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.core import parameters as P
from repro.core.model import DeploymentModel
from repro.obs import Observability, get_observability


class StabilityDetector:
    """ε-stability over a sliding window of consecutive interval values.

    A series is *stable* when it holds at least ``window`` samples and the
    spread (max - min) of the last ``window`` samples is below ``epsilon``.
    """

    def __init__(self, epsilon: float = 0.05, window: int = 3):
        if epsilon < 0:
            raise ValueError("epsilon must be >= 0")
        if window < 2:
            raise ValueError("window must be >= 2")
        self.epsilon = epsilon
        self.window = window
        self._values: Deque[float] = deque(maxlen=window)
        self.samples_seen = 0

    def update(self, value: float) -> bool:
        """Feed one interval's value; returns current stability."""
        self._values.append(value)
        self.samples_seen += 1
        return self.is_stable

    @property
    def is_stable(self) -> bool:
        if len(self._values) < self.window:
            return False
        return max(self._values) - min(self._values) < self.epsilon

    @property
    def last_value(self) -> Optional[float]:
        return self._values[-1] if self._values else None

    def stable_value(self) -> Optional[float]:
        """Mean of the window when stable, else None."""
        if not self.is_stable:
            return None
        return sum(self._values) / len(self._values)

    def reset(self) -> None:
        self._values.clear()


#: A monitored parameter's identity: (entity kind, entity key, param name).
ParameterKey = Tuple[str, Any, str]


@dataclass
class MonitoringUpdate:
    """One stable value written into the model."""

    kind: str
    entity: Any
    name: str
    value: float


class MonitoringHub:
    """Aggregates per-host monitoring reports into model updates.

    Wire report format (produced by
    :meth:`repro.middleware.admin.AdminComponent.collect_report`)::

        {"host": "h1",
         "reliability": {"h0": 0.91, ...},
         "evt_frequency": {"c1|c2": 3.4, ...},
         "evt_sizes": {"c1|c2": 1.9, ...}}

    Reconciliation rules:

    * *link reliability* — both endpoints estimate the same undirected
      link; their estimates are averaged;
    * *logical-link frequency* — the model's links are undirected, so the
      two directed rates (``a->b`` and ``b->a``) are summed;
    * *event size* — event-count-weighted combination of both directions,
      approximated by the mean of reported averages.
    """

    def __init__(self, model: DeploymentModel, epsilon: float = 0.05,
                 window: int = 3,
                 frequency_epsilon: Optional[float] = None,
                 obs: Optional[Observability] = None):
        self.model = model
        self.epsilon = epsilon
        self.window = window
        # Frequencies are not bounded to [0,1]; allow a separate (usually
        # larger) epsilon.
        self.frequency_epsilon = (frequency_epsilon if frequency_epsilon
                                  is not None else epsilon * 20)
        self._detectors: Dict[ParameterKey, StabilityDetector] = {}
        # Raw data from the current interval, keyed by reporting host.
        self._current_reports: Dict[str, Dict[str, Any]] = {}
        self.updates_applied: List[MonitoringUpdate] = []
        self.intervals_processed = 0
        self.obs = obs if obs is not None else get_observability()
        self._c_windows = self.obs.counter("monitoring.windows")
        self._c_stabilized = self.obs.counter("monitoring.series_stabilized")
        self._c_rejections = self.obs.counter("monitoring.eps_rejections")

    # ------------------------------------------------------------------
    def ingest(self, host: str, report: Dict[str, Any]) -> None:
        """Store one host's report for the current interval."""
        self._current_reports[host] = report

    # ------------------------------------------------------------------
    def _detector_for(self, key: ParameterKey) -> StabilityDetector:
        detector = self._detectors.get(key)
        if detector is None:
            epsilon = (self.frequency_epsilon
                       if key[2] in ("frequency", "evt_size")
                       else self.epsilon)
            detector = StabilityDetector(epsilon, self.window)
            self._detectors[key] = detector
        return detector

    def _interval_values(self) -> Dict[ParameterKey, float]:
        """Reconcile the current interval's reports into parameter values."""
        values: Dict[ParameterKey, float] = {}
        # -- link reliability: average the two ends' estimates --------
        link_estimates: Dict[Tuple[str, str], List[float]] = {}
        for host, report in self._current_reports.items():
            for peer, estimate in (report.get("reliability") or {}).items():
                key = (host, peer) if host <= peer else (peer, host)
                link_estimates.setdefault(key, []).append(estimate)
        for link_key, estimates in link_estimates.items():
            if self.model.physical_link(*link_key) is None:
                continue
            values[(P.PHYSICAL_LINK, link_key, "reliability")] = (
                sum(estimates) / len(estimates))
        # -- logical links: sum directions, average sizes ---------------
        directed_rates: Dict[Tuple[str, str], float] = {}
        directed_sizes: Dict[Tuple[str, str], float] = {}
        for report in self._current_reports.values():
            for pair, rate in (report.get("evt_frequency") or {}).items():
                src, __, dst = pair.partition("|")
                directed_rates[(src, dst)] = rate
            for pair, size in (report.get("evt_sizes") or {}).items():
                src, __, dst = pair.partition("|")
                directed_sizes[(src, dst)] = size
        undirected: Dict[Tuple[str, str], float] = {}
        sizes: Dict[Tuple[str, str], List[float]] = {}
        for (src, dst), rate in directed_rates.items():
            key = (src, dst) if src <= dst else (dst, src)
            undirected[key] = undirected.get(key, 0.0) + rate
        for (src, dst), size in directed_sizes.items():
            key = (src, dst) if src <= dst else (dst, src)
            sizes.setdefault(key, []).append(size)
        for pair_key, rate in undirected.items():
            if self.model.logical_link(*pair_key) is None:
                continue
            values[(P.LOGICAL_LINK, pair_key, "frequency")] = rate
            if pair_key in sizes:
                values[(P.LOGICAL_LINK, pair_key, "evt_size")] = (
                    sum(sizes[pair_key]) / len(sizes[pair_key]))
        return values

    def process_interval(self) -> List[MonitoringUpdate]:
        """Close the current interval: feed detectors, apply stable values.

        Returns the updates written to the model this interval.
        """
        applied: List[MonitoringUpdate] = []
        with self.obs.span("monitoring.interval") as span:
            for key, value in sorted(self._interval_values().items(),
                                     key=lambda kv: repr(kv[0])):
                detector = self._detector_for(key)
                if detector.update(value):
                    stable = detector.stable_value()
                    assert stable is not None
                    update = MonitoringUpdate(key[0], key[1], key[2], stable)
                    self._apply(update)
                    applied.append(update)
                    self._c_stabilized.inc()
                else:
                    # The ε-rule held this series back this interval.
                    self._c_rejections.inc()
            self._current_reports.clear()
            self.intervals_processed += 1
            self.updates_applied.extend(applied)
            self._c_windows.inc()
            span.set(applied=len(applied))
        return applied

    def _apply(self, update: MonitoringUpdate) -> None:
        if update.kind == P.PHYSICAL_LINK:
            self.model.set_physical_link_param(
                *update.entity, update.name, update.value)
        elif update.kind == P.LOGICAL_LINK:
            self.model.set_logical_link_param(
                *update.entity, update.name, update.value)
        elif update.kind == P.HOST:
            self.model.set_host_param(update.entity, update.name, update.value)
        elif update.kind == P.COMPONENT:
            self.model.set_component_param(update.entity, update.name,
                                           update.value)

    # ------------------------------------------------------------------
    def stability_report(self) -> Dict[str, Any]:
        """Which monitored parameters are currently stable."""
        stable = sum(1 for d in self._detectors.values() if d.is_stable)
        return {
            "parameters_tracked": len(self._detectors),
            "parameters_stable": stable,
            "intervals_processed": self.intervals_processed,
            "updates_applied": len(self.updates_applied),
        }
