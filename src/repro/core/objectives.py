"""Objective functions over deployment architectures.

Section 3.1 (Algorithm): "Each objective is formally specified and can
either be an optimization problem (e.g., maximize availability, minimize
latency) or constraint satisfaction problem".  This module provides the
optimization side: pluggable :class:`Objective` subclasses that score a
``(model, deployment)`` pair.

Two of them are the paper's worked examples (Section 5.1, with the formal
definitions taken from the companion report [12]):

* :class:`AvailabilityObjective` —
  ``A(D) = sum(freq(ci,cj) * rel(host(ci), host(cj))) / sum(freq(ci,cj))``
* :class:`LatencyObjective` —
  ``L(D) = sum(freq(ci,cj) * cost(ci,cj))`` with
  ``cost = delay + evt_size/bandwidth`` for remote pairs.

The rest demonstrate the framework's extensibility: remote-communication
volume (the I5 baseline's criterion), link security (the paper's recurring
"improve a distributed system's security" example), and a weighted
multi-objective combinator (the future-work direction of Section 6).

Objectives support *incremental* re-evaluation via :meth:`Objective.move_delta`
so that greedy and annealing-style algorithms can evaluate single-component
moves in time proportional to the component's degree rather than re-scoring
the whole system.
"""

from __future__ import annotations

import weakref
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.model import DeploymentModel

MAXIMIZE = "max"
MINIMIZE = "min"

# Finite stand-in for "this pair cannot communicate at all"; keeping it
# finite lets weighted combinations and deltas stay arithmetic-safe.
UNREACHABLE_COST = 1.0e9


class Objective(ABC):
    """A scalar criterion over deployments, to be maximized or minimized.

    **Incremental-evaluation contract.**  Every objective supports the same
    protocol:

    * :meth:`evaluate` scores a full deployment.
    * :meth:`move_delta` returns the raw change ``evaluate(moved) -
      evaluate(base)`` for a single-component move, and MUST agree with two
      full evaluations to floating-point tolerance (the property tests
      enforce 1e-9).
    * :attr:`supports_delta` declares whether ``move_delta`` is genuinely
      incremental (O(degree) in the moved component's interactions).
      Objectives that cannot localize a move's effect (bottleneck/min
      aggregations) declare ``supports_delta = False`` — the default base
      implementation of ``move_delta`` then recomputes from scratch, and
      the evaluation engine routes such objectives through (memoized) full
      evaluation instead of the delta fast path.
    """

    #: Short identifier used in analyzer logs and bench output.
    name: str = "objective"
    #: Either :data:`MAXIMIZE` or :data:`MINIMIZE`.
    direction: str = MAXIMIZE
    #: True when :meth:`move_delta` is overridden with an O(degree)
    #: incremental computation.  Declared explicitly per objective so the
    #: engine never silently pays a full re-evaluation believing it bought
    #: a delta.
    supports_delta: bool = False
    #: True when ``move_delta(model, d, c, h)`` depends *only* on the hosts
    #: of ``c`` and its logical neighbors — i.e. moving some other,
    #: non-adjacent component leaves this move's delta unchanged.  Additive
    #: neighbor-sum objectives are local; bottleneck/extremum objectives
    #: (throughput's max, durability's min) are not, because any move can
    #: shift the global extremum.  ``repro.algorithms.search.SearchState``
    #: uses this to decide whether cached move scores survive a move.
    local_delta: bool = False

    @abstractmethod
    def evaluate(self, model: DeploymentModel,
                 deployment: Mapping[str, str]) -> float:
        """Score *deployment* against *model*."""

    # -- comparison helpers -------------------------------------------------
    def is_better(self, candidate: float, incumbent: float) -> bool:
        """True when *candidate* improves on *incumbent*."""
        if self.direction == MAXIMIZE:
            return candidate > incumbent
        return candidate < incumbent

    def worst_value(self) -> float:
        return float("-inf") if self.direction == MAXIMIZE else float("inf")

    def improvement(self, candidate: float, incumbent: float) -> float:
        """Signed improvement of candidate over incumbent (positive = better)."""
        if self.direction == MAXIMIZE:
            return candidate - incumbent
        return incumbent - candidate

    # -- incremental evaluation ----------------------------------------------
    def move_delta(self, model: DeploymentModel, deployment: Mapping[str, str],
                   component: str, new_host: str) -> float:
        """Change in objective value if *component* moved to *new_host*.

        The default recomputes from scratch (two full evaluations);
        subclasses overriding it with an O(degree) computation must also
        declare ``supports_delta = True``.  The returned delta is raw
        (new - old), not direction-adjusted.
        """
        old_value = self.evaluate(model, deployment)
        moved = dict(deployment)
        moved[component] = new_host
        return self.evaluate(model, moved) - old_value

    def evaluate_move(self, model: DeploymentModel,
                      deployment: Mapping[str, str], component: str,
                      new_host: str, current_value: float) -> float:
        """Objective value after moving *component*, given the current value."""
        return current_value + self.move_delta(model, deployment, component,
                                               new_host)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(direction={self.direction})"


class AvailabilityObjective(Objective):
    """Ratio of successfully-delivered interactions (paper Section 5.1).

    A deployment maximizes availability when "the most critical, frequent,
    and voluminous interactions occur either locally or over reliable and
    capacious network links".  Interactions between collocated components
    always succeed (reliability 1.0); interactions between hosts with no
    (connected) physical link never do (reliability 0.0).

    When ``use_criticality`` is set, each interaction's frequency is scaled
    by the logical link's ``criticality`` parameter, realizing the
    "critical" part of the quote without changing the formula's shape.
    """

    name = "availability"
    direction = MAXIMIZE
    supports_delta = True
    local_delta = True

    def __init__(self, use_criticality: bool = False):
        self.use_criticality = use_criticality
        # Total interaction weight cache, keyed by a weak reference to the
        # model plus its interaction_version — the total is
        # deployment-independent, and recomputing it per move_delta call
        # would make incremental evaluation as expensive as a full one.
        # (A weakref rather than id(): ids get recycled after GC.)
        self._total_cache = None  # (weakref, version, total)

    def _weight(self, link) -> float:
        weight = link.frequency
        if self.use_criticality:
            weight *= link.params.get("criticality")
        return weight

    def _total_weight(self, model: DeploymentModel) -> float:
        cached = self._total_cache
        if cached is not None and cached[0]() is model \
                and cached[1] == model.interaction_version:
            return cached[2]
        total = sum(self._weight(link)
                    for __, __, link in model.interaction_pairs())
        self._total_cache = (weakref.ref(model), model.interaction_version,
                             total)
        return total

    def evaluate(self, model: DeploymentModel,
                 deployment: Mapping[str, str]) -> float:
        total = 0.0
        delivered = 0.0
        for comp_a, comp_b, link in model.interaction_pairs():
            weight = self._weight(link)
            if weight <= 0.0:
                continue
            total += weight
            host_a = deployment.get(comp_a)
            host_b = deployment.get(comp_b)
            if host_a is None or host_b is None:
                continue  # undeployed components deliver nothing
            delivered += weight * model.reliability(host_a, host_b)
        if total == 0.0:
            return 1.0  # no interactions: trivially fully available
        return delivered / total

    def move_delta(self, model: DeploymentModel, deployment: Mapping[str, str],
                   component: str, new_host: str) -> float:
        total = self._total_weight(model)
        if total == 0.0:
            return 0.0
        old_host = deployment.get(component)
        delta_delivered = 0.0
        for neighbor in model.logical_neighbors(component):
            link = model.logical_link(component, neighbor)
            weight = self._weight(link)
            if weight <= 0.0:
                continue
            neighbor_host = deployment.get(neighbor)
            if neighbor_host is None:
                continue
            new_rel = model.reliability(new_host, neighbor_host)
            old_rel = (model.reliability(old_host, neighbor_host)
                       if old_host is not None else 0.0)
            delta_delivered += weight * (new_rel - old_rel)
        return delta_delivered / total


class LatencyObjective(Objective):
    """Total time spent communicating, to be minimized (paper Section 5.1).

    For a remote interaction the per-event cost is the link's transmission
    delay plus serialization time (``evt_size / bandwidth``); local
    interactions cost a small in-process dispatch time.  Pairs with no
    usable link are charged :data:`UNREACHABLE_COST` per event, which keeps
    the objective finite while making disconnection overwhelmingly bad.
    """

    name = "latency"
    direction = MINIMIZE
    supports_delta = True
    local_delta = True

    def __init__(self, local_dispatch_cost: float = 1.0e-5):
        self.local_dispatch_cost = local_dispatch_cost

    def _pair_cost(self, model: DeploymentModel, host_a: str, host_b: str,
                   evt_size: float) -> float:
        if host_a == host_b:
            return self.local_dispatch_cost
        link = model.physical_link(host_a, host_b)
        if link is None or not link.params.get("connected"):
            return UNREACHABLE_COST
        bandwidth = link.bandwidth
        if bandwidth <= 0.0:
            return UNREACHABLE_COST
        serialization = evt_size / bandwidth if bandwidth != float("inf") else 0.0
        return link.delay + serialization

    def evaluate(self, model: DeploymentModel,
                 deployment: Mapping[str, str]) -> float:
        total = 0.0
        for comp_a, comp_b, link in model.interaction_pairs():
            if link.frequency <= 0.0:
                continue
            host_a = deployment.get(comp_a)
            host_b = deployment.get(comp_b)
            if host_a is None or host_b is None:
                total += link.frequency * UNREACHABLE_COST
                continue
            total += link.frequency * self._pair_cost(
                model, host_a, host_b, link.evt_size)
        return total

    def move_delta(self, model: DeploymentModel, deployment: Mapping[str, str],
                   component: str, new_host: str) -> float:
        old_host = deployment.get(component)
        delta = 0.0
        for neighbor in model.logical_neighbors(component):
            link = model.logical_link(component, neighbor)
            if link.frequency <= 0.0:
                continue
            neighbor_host = deployment.get(neighbor)
            if neighbor_host is None:
                continue
            new_cost = self._pair_cost(model, new_host, neighbor_host,
                                       link.evt_size)
            old_cost = (self._pair_cost(model, old_host, neighbor_host,
                                        link.evt_size)
                        if old_host is not None else UNREACHABLE_COST)
            delta += link.frequency * (new_cost - old_cost)
        return delta


class CommunicationCostObjective(Objective):
    """Volume of data crossing the network, to be minimized.

    This is the criterion of the I5 baseline ([1] in the paper): "generating
    an optimal deployment ... such that the overall remote communication is
    minimized".  Local interactions are free; remote interactions cost
    ``frequency * evt_size`` regardless of which link carries them.
    """

    name = "communication_cost"
    direction = MINIMIZE
    supports_delta = True
    local_delta = True

    def evaluate(self, model: DeploymentModel,
                 deployment: Mapping[str, str]) -> float:
        total = 0.0
        for comp_a, comp_b, link in model.interaction_pairs():
            host_a = deployment.get(comp_a)
            host_b = deployment.get(comp_b)
            if host_a is None or host_b is None or host_a != host_b:
                total += link.frequency * link.evt_size
        return total

    def move_delta(self, model: DeploymentModel, deployment: Mapping[str, str],
                   component: str, new_host: str) -> float:
        old_host = deployment.get(component)
        delta = 0.0
        for neighbor in model.logical_neighbors(component):
            link = model.logical_link(component, neighbor)
            volume = link.frequency * link.evt_size
            neighbor_host = deployment.get(neighbor)
            old_remote = (neighbor_host is None or old_host is None
                          or old_host != neighbor_host)
            new_remote = neighbor_host is None or new_host != neighbor_host
            delta += volume * (float(new_remote) - float(old_remote))
        return delta


class SecurityObjective(Objective):
    """Weighted security of the links carrying the system's interactions.

    The paper repeatedly uses security as the example of an alternative
    objective requiring alternative parameters ("if the objective is to
    improve a distributed system's security, other parameters, such as
    security of each network link, need to be modelled").  The formula
    mirrors availability with the physical link's ``security`` parameter in
    place of reliability; collocated interactions are perfectly secure.
    """

    name = "security"
    direction = MAXIMIZE
    supports_delta = True
    local_delta = True

    def __init__(self):
        # Total interaction weight is deployment-independent; cache it per
        # (model, interaction_version) exactly like AvailabilityObjective
        # so move_delta stays O(degree).
        self._total_cache = None  # (weakref, version, total)

    def _total_weight(self, model: DeploymentModel) -> float:
        cached = self._total_cache
        if cached is not None and cached[0]() is model \
                and cached[1] == model.interaction_version:
            return cached[2]
        total = sum(link.frequency
                    for __, __, link in model.interaction_pairs()
                    if link.frequency > 0.0)
        self._total_cache = (weakref.ref(model), model.interaction_version,
                             total)
        return total

    def _pair_security(self, model: DeploymentModel, host_a: str,
                       host_b: str) -> float:
        if host_a == host_b:
            return 1.0
        physical = model.physical_link(host_a, host_b)
        if physical is None:
            return 0.0
        return physical.params.get("security")

    def evaluate(self, model: DeploymentModel,
                 deployment: Mapping[str, str]) -> float:
        total = 0.0
        secured = 0.0
        for comp_a, comp_b, link in model.interaction_pairs():
            weight = link.frequency
            if weight <= 0.0:
                continue
            total += weight
            host_a = deployment.get(comp_a)
            host_b = deployment.get(comp_b)
            if host_a is None or host_b is None:
                continue
            secured += weight * self._pair_security(model, host_a, host_b)
        if total == 0.0:
            return 1.0
        return secured / total

    def move_delta(self, model: DeploymentModel, deployment: Mapping[str, str],
                   component: str, new_host: str) -> float:
        total = self._total_weight(model)
        if total == 0.0:
            return 0.0
        old_host = deployment.get(component)
        delta_secured = 0.0
        for neighbor in model.logical_neighbors(component):
            link = model.logical_link(component, neighbor)
            weight = link.frequency
            if weight <= 0.0:
                continue
            neighbor_host = deployment.get(neighbor)
            if neighbor_host is None:
                continue
            new_sec = self._pair_security(model, new_host, neighbor_host)
            old_sec = (self._pair_security(model, old_host, neighbor_host)
                       if old_host is not None else 0.0)
            delta_secured += weight * (new_sec - old_sec)
        return delta_secured / total


class ThroughputObjective(Objective):
    """Bottleneck link utilization, to be minimized (§6 future work).

    The system's sustainable throughput is gated by its most-loaded link:
    utilization of a physical link is the interaction volume routed over it
    divided by its bandwidth.  Host pairs that interact without any usable
    link count as saturated (utilization :data:`UNREACHABLE_UTILIZATION`).
    Minimizing the maximum utilization maximizes throughput headroom and
    balances traffic across the network.
    """

    name = "throughput"
    direction = MINIMIZE
    #: The objective is the MAX utilization over all links, but a move only
    #: touches the moved component's O(degree) host pairs: ``move_delta``
    #: keeps the per-host-pair demand table for the base deployment (edge
    #: counts alongside volumes, so a pair vacated by the move drops out
    #: exactly instead of leaving float residue), applies the O(degree)
    #: adjustments, and re-derives the bottleneck over the live pairs.
    supports_delta = True

    #: Utilization charged to interacting host pairs with no usable link.
    UNREACHABLE_UTILIZATION = 1.0e6

    def __init__(self):
        # Demand accumulators for the last base deployment queried:
        # (model weakref, model.version, base mapping dict,
        #  {host pair: volume}, {host pair: contributing edges}, base value).
        self._state = None

    def evaluate(self, model: DeploymentModel,
                 deployment: Mapping[str, str]) -> float:
        demand: Dict[Tuple[str, str], float] = {}
        for comp_a, comp_b, link in model.interaction_pairs():
            host_a = deployment.get(comp_a)
            host_b = deployment.get(comp_b)
            if host_a is None or host_b is None or host_a == host_b:
                continue
            key = (host_a, host_b) if host_a <= host_b else (host_b, host_a)
            demand[key] = demand.get(key, 0.0) + \
                link.frequency * link.evt_size
        worst = 0.0
        for (host_a, host_b), volume in demand.items():
            bandwidth = model.bandwidth(host_a, host_b)
            if bandwidth <= 0.0:
                worst = max(worst, self.UNREACHABLE_UTILIZATION)
            elif bandwidth != float("inf"):
                worst = max(worst, volume / bandwidth)
        return worst

    def _utilization(self, model: DeploymentModel, host_a: str, host_b: str,
                     volume: float) -> float:
        bandwidth = model.bandwidth(host_a, host_b)
        if bandwidth <= 0.0:
            return self.UNREACHABLE_UTILIZATION
        if bandwidth == float("inf"):
            return 0.0
        return volume / bandwidth

    def _base_state(self, model: DeploymentModel,
                    deployment: Mapping[str, str]):
        base = dict(deployment)
        state = self._state
        if state is not None and state[0]() is model \
                and state[1] == model.version and state[2] == base:
            return state
        demand: Dict[Tuple[str, str], float] = {}
        counts: Dict[Tuple[str, str], int] = {}
        for comp_a, comp_b, link in model.interaction_pairs():
            host_a = base.get(comp_a)
            host_b = base.get(comp_b)
            if host_a is None or host_b is None or host_a == host_b:
                continue
            key = (host_a, host_b) if host_a <= host_b else (host_b, host_a)
            demand[key] = demand.get(key, 0.0) + \
                link.frequency * link.evt_size
            counts[key] = counts.get(key, 0) + 1
        state = (weakref.ref(model), model.version, base, demand, counts,
                 self.evaluate(model, base))
        self._state = state
        return state

    def move_delta(self, model: DeploymentModel, deployment: Mapping[str, str],
                   component: str, new_host: str) -> float:
        __, __, base, demand, counts, base_value = \
            self._base_state(model, deployment)
        old_host = base.get(component)
        if old_host == new_host:
            return 0.0
        volume_changes: Dict[Tuple[str, str], float] = {}
        count_changes: Dict[Tuple[str, str], int] = {}
        for neighbor in model.logical_neighbors(component):
            neighbor_host = base.get(neighbor)
            if neighbor_host is None:
                continue
            link = model.logical_link(component, neighbor)
            volume = link.frequency * link.evt_size
            if old_host is not None and old_host != neighbor_host:
                key = ((old_host, neighbor_host)
                       if old_host <= neighbor_host
                       else (neighbor_host, old_host))
                volume_changes[key] = volume_changes.get(key, 0.0) - volume
                count_changes[key] = count_changes.get(key, 0) - 1
            if new_host != neighbor_host:
                key = ((new_host, neighbor_host)
                       if new_host <= neighbor_host
                       else (neighbor_host, new_host))
                volume_changes[key] = volume_changes.get(key, 0.0) + volume
                count_changes[key] = count_changes.get(key, 0) + 1
        worst = 0.0
        for key, volume in demand.items():
            change = count_changes.get(key)
            if change is not None:
                if counts[key] + change <= 0:
                    continue  # every contributing edge moved off this pair
                volume = volume + volume_changes[key]
            worst = max(worst, self._utilization(model, *key, volume))
        for key, change in count_changes.items():
            if key not in demand and change > 0:
                worst = max(worst,
                            self._utilization(model, *key,
                                              volume_changes[key]))
        return worst - base_value


class DurabilityObjective(Objective):
    """Projected system lifetime on battery power, to be maximized (§6).

    Each finite-battery host drains at ``idle_draw`` plus a CPU term
    proportional to the components it runs plus a radio term proportional
    to the remote traffic it originates/terminates.  The system's
    durability is the *minimum* projected lifetime across battery hosts —
    the mission ends when the first battery dies — so the objective pushes
    load off the weakest batteries.  Mains-powered hosts (infinite battery)
    are unconstrained, which is what steers components toward them.
    """

    name = "durability"
    direction = MAXIMIZE
    #: Durability is the MIN projected lifetime across battery hosts, but a
    #: move only changes the draw of O(degree) hosts: ``move_delta`` keeps
    #: per-host running CPU-load and radio-traffic accumulators for the base
    #: deployment, applies the move to scratch copies, and re-derives the
    #: minimum lifetime in O(hosts).
    supports_delta = True

    def __init__(self, idle_draw: float = 1.0, cpu_coefficient: float = 0.1,
                 radio_coefficient: float = 0.05,
                 max_lifetime: float = 1.0e6):
        self.idle_draw = idle_draw
        self.cpu_coefficient = cpu_coefficient
        self.radio_coefficient = radio_coefficient
        self.max_lifetime = max_lifetime
        # Load accumulators for the last base deployment queried:
        # (model weakref, model.version, base mapping dict,
        #  {host: cpu load}, {host: radio volume}, base value).
        self._state = None

    def host_lifetime(self, model: DeploymentModel,
                      deployment: Mapping[str, str], host_id: str) -> float:
        battery = model.host(host_id).params.get("battery")
        if battery == float("inf"):
            return self.max_lifetime
        cpu_load = sum(
            model.component(c).cpu
            for c, h in deployment.items() if h == host_id)
        radio = 0.0
        for comp_a, comp_b, link in model.interaction_pairs():
            host_a = deployment.get(comp_a)
            host_b = deployment.get(comp_b)
            if host_a == host_b:
                continue
            if host_a == host_id or host_b == host_id:
                radio += link.frequency * link.evt_size
        draw = (self.idle_draw + self.cpu_coefficient * cpu_load
                + self.radio_coefficient * radio)
        if draw <= 0.0:
            return self.max_lifetime
        return min(battery / draw, self.max_lifetime)

    def evaluate(self, model: DeploymentModel,
                 deployment: Mapping[str, str]) -> float:
        lifetimes = [self.host_lifetime(model, deployment, host.id)
                     for host in model.hosts]
        finite = [l for l in lifetimes if l < self.max_lifetime]
        if not finite:
            return self.max_lifetime  # fully mains-powered system
        return min(finite)

    def _min_lifetime(self, model: DeploymentModel,
                      cpu_load: Dict[str, float],
                      radio: Dict[str, float]) -> float:
        best: Optional[float] = None
        for host in model.hosts:
            battery = host.params.get("battery")
            if battery == float("inf"):
                continue
            draw = (self.idle_draw
                    + self.cpu_coefficient * cpu_load.get(host.id, 0.0)
                    + self.radio_coefficient * radio.get(host.id, 0.0))
            lifetime = (self.max_lifetime if draw <= 0.0
                        else min(battery / draw, self.max_lifetime))
            if lifetime < self.max_lifetime \
                    and (best is None or lifetime < best):
                best = lifetime
        return self.max_lifetime if best is None else best

    def _base_state(self, model: DeploymentModel,
                    deployment: Mapping[str, str]):
        base = dict(deployment)
        state = self._state
        if state is not None and state[0]() is model \
                and state[1] == model.version and state[2] == base:
            return state
        cpu_load: Dict[str, float] = {}
        radio: Dict[str, float] = {}
        for component_id, host_id in base.items():
            cpu_load[host_id] = cpu_load.get(host_id, 0.0) + \
                model.component(component_id).cpu
        for comp_a, comp_b, link in model.interaction_pairs():
            host_a = base.get(comp_a)
            host_b = base.get(comp_b)
            if host_a == host_b:
                continue
            volume = link.frequency * link.evt_size
            if host_a is not None:
                radio[host_a] = radio.get(host_a, 0.0) + volume
            if host_b is not None:
                radio[host_b] = radio.get(host_b, 0.0) + volume
        state = (weakref.ref(model), model.version, base, cpu_load, radio,
                 self._min_lifetime(model, cpu_load, radio))
        self._state = state
        return state

    def move_delta(self, model: DeploymentModel, deployment: Mapping[str, str],
                   component: str, new_host: str) -> float:
        __, __, base, cpu_load, radio, base_value = \
            self._base_state(model, deployment)
        old_host = base.get(component)
        if old_host == new_host:
            return 0.0
        cpu_scratch = dict(cpu_load)
        radio_scratch = dict(radio)
        cpu = model.component(component).cpu
        if old_host is not None:
            cpu_scratch[old_host] = cpu_scratch.get(old_host, 0.0) - cpu
        cpu_scratch[new_host] = cpu_scratch.get(new_host, 0.0) + cpu
        for neighbor in model.logical_neighbors(component):
            neighbor_host = base.get(neighbor)
            if neighbor_host is None:
                continue
            link = model.logical_link(component, neighbor)
            volume = link.frequency * link.evt_size
            if old_host is not None and old_host != neighbor_host:
                radio_scratch[old_host] = \
                    radio_scratch.get(old_host, 0.0) - volume
                radio_scratch[neighbor_host] = \
                    radio_scratch.get(neighbor_host, 0.0) - volume
            if new_host != neighbor_host:
                radio_scratch[new_host] = \
                    radio_scratch.get(new_host, 0.0) + volume
                radio_scratch[neighbor_host] = \
                    radio_scratch.get(neighbor_host, 0.0) + volume
        return self._min_lifetime(model, cpu_scratch, radio_scratch) \
            - base_value


class WeightedObjective(Objective):
    """Linear combination of objectives for multi-objective improvement.

    Each term is direction-normalized: maximize-objectives contribute
    ``+weight * value`` and minimize-objectives ``-weight * value``, so the
    combination is always maximized.  Optional per-term scales let callers
    bring differently-dimensioned objectives (availability in [0,1], latency
    in seconds) onto comparable footing.
    """

    name = "weighted"
    direction = MAXIMIZE

    def __init__(self, terms: Sequence[Tuple[Objective, float]],
                 scales: Optional[Sequence[float]] = None):
        if not terms:
            raise ValueError("WeightedObjective requires at least one term")
        self.terms: Tuple[Tuple[Objective, float], ...] = tuple(terms)
        if scales is None:
            scales = [1.0] * len(self.terms)
        if len(scales) != len(self.terms):
            raise ValueError("scales must match terms one-to-one")
        self.scales: Tuple[float, ...] = tuple(scales)
        self.name = "weighted(" + "+".join(o.name for o, __ in self.terms) + ")"
        # Incremental only when every term is: a non-delta term would make
        # move_delta as expensive as two full evaluations of that term.
        self.supports_delta = all(o.supports_delta for o, __ in self.terms)
        # A weighted sum of move deltas is neighbor-local iff every term is.
        self.local_delta = all(o.local_delta for o, __ in self.terms)

    def evaluate(self, model: DeploymentModel,
                 deployment: Mapping[str, str]) -> float:
        score = 0.0
        for (objective, weight), scale in zip(self.terms, self.scales, strict=True):
            value = objective.evaluate(model, deployment) / scale
            if objective.direction == MAXIMIZE:
                score += weight * value
            else:
                score -= weight * value
        return score

    def move_delta(self, model: DeploymentModel, deployment: Mapping[str, str],
                   component: str, new_host: str) -> float:
        delta = 0.0
        for (objective, weight), scale in zip(self.terms, self.scales, strict=True):
            term_delta = objective.move_delta(model, deployment, component,
                                              new_host) / scale
            if objective.direction == MAXIMIZE:
                delta += weight * term_delta
            else:
                delta -= weight * term_delta
        return delta

    def breakdown(self, model: DeploymentModel,
                  deployment: Mapping[str, str]) -> Dict[str, float]:
        """Per-term raw values, useful for analyzer trade-off reporting."""
        return {objective.name: objective.evaluate(model, deployment)
                for objective, __ in self.terms}


def evaluate_all(objectives: Sequence[Objective], model: DeploymentModel,
                 deployment: Mapping[str, str]) -> Dict[str, float]:
    """Evaluate several objectives against one deployment."""
    return {o.name: o.evaluate(model, deployment) for o in objectives}
