"""Utility-based user preferences over system characteristics.

Section 6: "modelling user preferences for multiple desired system
characteristics in a decentralized environment ... we will leverage utility
computing techniques to determine a deployment architecture that maximizes
the users' overall satisfaction with a distributed system."

This module implements that future-work direction:

* a :class:`UtilityFunction` maps one objective's raw value (availability in
  [0,1], latency in seconds, ...) onto a normalized satisfaction in [0,1]
  through a monotone piecewise-linear curve — the standard shape in the
  utility-computing literature the paper cites toward;
* :class:`UserPreferences` weights several utility functions into one
  user's satisfaction score;
* :class:`SatisfactionObjective` turns the *overall* (mean) satisfaction of
  a set of users into a pluggable
  :class:`~repro.core.objectives.Objective`, so every existing algorithm —
  centralized or decentralized — can directly optimize it;
* :func:`host_preferences_vote` adapts per-host preferences to the
  decentralized analyzers' voting interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ModelError
from repro.core.model import DeploymentModel
from repro.core.objectives import MAXIMIZE, Objective


class UtilityFunction:
    """Monotone piecewise-linear mapping of an objective value to [0, 1].

    Args:
        objective: The characteristic being judged.
        points: ``(value, utility)`` control points, at least two, with
            strictly increasing values and utilities inside [0, 1].
            Values outside the covered range clamp to the end utilities,
            so a curve like ``[(0.5, 0.0), (0.95, 1.0)]`` reads "useless
            below 50% availability, fully satisfying from 95% up".
    """

    def __init__(self, objective: Objective,
                 points: Sequence[Tuple[float, float]]):
        if len(points) < 2:
            raise ModelError("utility curve needs at least two points")
        values = [value for value, __ in points]
        if any(b <= a for a, b in zip(values, values[1:], strict=False)):
            raise ModelError("utility curve values must strictly increase")
        for __, utility in points:
            if not 0.0 <= utility <= 1.0:
                raise ModelError("utilities must lie in [0, 1]")
        self.objective = objective
        self.points: Tuple[Tuple[float, float], ...] = tuple(points)

    def utility_of_value(self, value: float) -> float:
        """Interpolate the curve at *value* (clamped at the ends)."""
        points = self.points
        if value <= points[0][0]:
            return points[0][1]
        if value >= points[-1][0]:
            return points[-1][1]
        for (x0, y0), (x1, y1) in zip(points, points[1:], strict=False):
            if x0 <= value <= x1:
                fraction = (value - x0) / (x1 - x0)
                return y0 + fraction * (y1 - y0)
        raise AssertionError("unreachable: curve covers the value range")

    def utility(self, model: DeploymentModel,
                deployment: Mapping[str, str]) -> float:
        return self.utility_of_value(
            self.objective.evaluate(model, deployment))

    def __repr__(self) -> str:
        return (f"UtilityFunction({self.objective.name}, "
                f"{list(self.points)})")


@dataclass
class UserPreferences:
    """One stakeholder's weighted utility functions.

    ``satisfaction`` is the weight-normalized sum of the member utilities:
    always in [0, 1], higher is happier.
    """

    name: str
    entries: List[Tuple[UtilityFunction, float]] = field(default_factory=list)

    def add(self, function: UtilityFunction,
            weight: float = 1.0) -> "UserPreferences":
        if weight <= 0.0:
            raise ModelError("preference weights must be positive")
        self.entries.append((function, weight))
        return self

    def satisfaction(self, model: DeploymentModel,
                     deployment: Mapping[str, str]) -> float:
        if not self.entries:
            return 1.0  # no stated preferences: trivially satisfied
        total_weight = sum(weight for __, weight in self.entries)
        score = sum(function.utility(model, deployment) * weight
                    for function, weight in self.entries)
        return score / total_weight

    def breakdown(self, model: DeploymentModel,
                  deployment: Mapping[str, str]) -> Dict[str, float]:
        return {
            function.objective.name: function.utility(model, deployment)
            for function, __ in self.entries
        }


def overall_satisfaction(users: Sequence[UserPreferences],
                         model: DeploymentModel,
                         deployment: Mapping[str, str]) -> float:
    """Mean satisfaction across users — "the users' overall satisfaction"."""
    if not users:
        return 1.0
    return sum(user.satisfaction(model, deployment)
               for user in users) / len(users)


class SatisfactionObjective(Objective):
    """Overall user satisfaction as a first-class pluggable objective."""

    name = "satisfaction"
    direction = MAXIMIZE

    def __init__(self, users: Sequence[UserPreferences]):
        if not users:
            raise ModelError("need at least one user's preferences")
        self.users: Tuple[UserPreferences, ...] = tuple(users)

    def evaluate(self, model: DeploymentModel,
                 deployment: Mapping[str, str]) -> float:
        return overall_satisfaction(self.users, model, deployment)

    def least_satisfied(self, model: DeploymentModel,
                        deployment: Mapping[str, str],
                        ) -> Tuple[str, float]:
        """(user, satisfaction) of the unhappiest stakeholder — the
        fairness diagnostic an analyzer can report."""
        scored = [(user.name, user.satisfaction(model, deployment))
                  for user in self.users]
        return min(scored, key=lambda pair: pair[1])


def host_preferences_vote(preferences: UserPreferences,
                          model: DeploymentModel,
                          deployment: Mapping[str, str],
                          goal: float = 0.8) -> bool:
    """Decentralized adapter: should this host's user vote for acting now?

    True when the user's current satisfaction is below *goal* — plugging
    per-host preferences into the voting/polling protocols of
    :mod:`repro.decentralized.voting`.
    """
    return preferences.satisfaction(model, deployment) < goal
