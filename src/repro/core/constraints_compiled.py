"""Compiled, incrementally-maintained constraint checking.

The object-path :class:`~repro.core.constraints.ConstraintSet` re-derives
per-host loads and per-link demands from scratch on every ``allows`` query —
O(components) work per candidate move, which dominates a local-search round
now that objective scoring is served by the compiled kernels.  This module
is the constraint-side counterpart of :mod:`repro.algorithms.compiled`:
:func:`compile_constraints` lowers a ``ConstraintSet`` onto a
:class:`~repro.algorithms.compiled.CompiledModel` snapshot, producing a
:class:`CompiledConstraintSet` whose state — residual memory/CPU load
vectors, location bitmasks, collocation group tallies (merged into
invalidation groups by union-find), and bandwidth demand accumulators — is
updated in O(degree) per :meth:`~CompiledConstraintSet.place` and queried in
O(1) per :meth:`~CompiledConstraintSet.allows`.

Exactness contract (property-tested in
``tests/core/test_constraints_compiled.py``): for any assignment reachable
by ``bind``/``place``/``undo``, ``allows``/``satisfied``/``violations``
return exactly what the object path returns on the equivalent mapping.
Compilation is by *exact* constraint type — a subclassed or unknown
constraint makes :func:`compile_constraints` return ``None`` and callers
keep the object path, so user extensions are never silently reinterpreted.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.constraints import (
    BandwidthConstraint, CollocationConstraint, Constraint, ConstraintSet,
    CpuConstraint, LocationConstraint, MemoryConstraint,
)
from repro.algorithms.compiled import UNDEPLOYED, CompiledModel

#: Sentinel recorded in undo tokens for dict keys that did not exist.
_MISSING = object()

#: One reversible write: (container, key, prior value or _MISSING).
_UndoEntry = Tuple[Union[list, dict], Union[int, Tuple[int, int], str], object]

#: Opaque token returned by :meth:`CompiledConstraintSet.place`.
UndoToken = List[_UndoEntry]


class _UnionFind:
    """Tiny union-find over component indices (collocation groups)."""

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        parent = self.parent
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:  # path compression
            parent[i], i = root, parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _pair(i: int, j: int) -> Tuple[int, int]:
    return (i, j) if i < j else (j, i)


class CompiledConstraintSet:
    """Index-based incremental mirror of one ``ConstraintSet``.

    Built by :func:`compile_constraints`; holds a mutable assignment array
    (host index per component, ``UNDEPLOYED`` when absent) plus the derived
    state needed to answer ``allows`` in O(1) and keep itself consistent in
    O(degree) per move.  :meth:`place` returns an undo token that restores
    the *exact* prior floats, so trial moves (swap feasibility probes,
    search backtracking) round-trip bit-identically.
    """

    def __init__(self, cm: CompiledModel):
        self.cm = cm
        n_c, n_h = cm.n_components, cm.n_hosts
        self.assignment: List[int] = [UNDEPLOYED] * n_c
        #: Original-order entries driving ``violations``/``violation_count``.
        self.entries: List[tuple] = []
        # -- memory / cpu ------------------------------------------------
        self.n_memory = 0
        self.n_cpu = 0
        self.mem_load: List[float] = [0.0] * n_h
        self.cpu_load: List[float] = [0.0] * n_h
        #: Scalar overload tallies (dict-held so undo tokens can restore
        #: them through the same generic (container, key, old) mechanism).
        self.tally: Dict[str, int] = {"mem_over": 0, "cpu_over": 0,
                                      "loc_over": 0}
        # -- location ----------------------------------------------------
        #: Per-component AND of every location constraint's host bitmask.
        self.loc_mask: List[int] = [(1 << n_h) - 1] * n_c
        self.has_location = False
        # -- collocation -------------------------------------------------
        #: Per "together" constraint: counts per host, members, tallies.
        self.together: List[dict] = []
        self.comp_together: List[List[int]] = [[] for _ in range(n_c)]
        #: Per "apart" constraint: counts per host plus collision tally.
        self.apart: List[dict] = []
        self.comp_apart: List[List[int]] = [[] for _ in range(n_c)]
        #: Union-find closure over all collocation constraints' members —
        #: the conservative "whose legality may depend on this component"
        #: set SearchState uses for dirty-row invalidation.
        self.colloc_partners: List[Tuple[int, ...]] = [()] * n_c
        # -- bandwidth ---------------------------------------------------
        #: One state dict per BandwidthConstraint entry:
        #: demand[(i,j)] KB/s, count[(i,j)] contributing edges, over tally.
        self.bandwidth: List[dict] = []

    # -- derived flags ---------------------------------------------------
    @property
    def has_memory(self) -> bool:
        return self.n_memory > 0

    @property
    def has_cpu(self) -> bool:
        return self.n_cpu > 0

    @property
    def has_bandwidth(self) -> bool:
        return bool(self.bandwidth)

    @property
    def has_collocation(self) -> bool:
        return bool(self.together or self.apart)

    # -- binding ---------------------------------------------------------
    def bind(self, assignment: Union[Mapping[str, str], Sequence[int]],
             ) -> None:
        """Rebuild all incremental state for *assignment* from scratch."""
        cm = self.cm
        if isinstance(assignment, Mapping):
            encoded = cm.encode(assignment)
            if encoded is None:
                raise ValueError("assignment references unknown hosts")
        else:
            encoded = list(assignment)
        self.assignment = [UNDEPLOYED] * cm.n_components
        self.mem_load = [0.0] * cm.n_hosts
        self.cpu_load = [0.0] * cm.n_hosts
        self.tally["mem_over"] = self.tally["cpu_over"] = 0
        self.tally["loc_over"] = 0
        for state in self.together:
            state["counts"] = {}
            state["placed"] = 0
            state["distinct"] = 0
        for state in self.apart:
            state["counts"] = {}
            state["collisions"] = 0
        for state in self.bandwidth:
            state["demand"] = {}
            state["count"] = {}
            state["over"] = 0
        for ci, hi in enumerate(encoded):
            if hi != UNDEPLOYED:
                self.place(ci, hi)

    # -- queries ----------------------------------------------------------
    def allows(self, ci: int, hi: int) -> bool:
        """May component *ci* be placed on host *hi* given current state?

        Replicates ``ConstraintSet.allows`` on the equivalent mapping: the
        component's own current contribution (if placed) is excluded from
        resource sums and moved in bandwidth demands.
        """
        cm = self.cm
        cur = self.assignment[ci]
        if self.has_location and not (self.loc_mask[ci] >> hi) & 1:
            return False
        if self.n_memory:
            need = cm.component_memory[ci]
            if cur == hi:
                if self.mem_load[hi] > cm.host_memory[hi]:
                    return False
            elif self.mem_load[hi] + need > cm.host_memory[hi]:
                return False
        if self.n_cpu:
            need = cm.component_cpu[ci]
            if cur == hi:
                if self.cpu_load[hi] > cm.host_cpu[hi]:
                    return False
            elif self.cpu_load[hi] + need > cm.host_cpu[hi]:
                return False
        for gi in self.comp_together[ci]:
            state = self.together[gi]
            on_self = 1 if cur != UNDEPLOYED else 0
            placed_others = state["placed"] - on_self
            on_target = state["counts"].get(hi, 0) - (1 if cur == hi else 0)
            if placed_others != on_target:
                return False
        for gi in self.comp_apart[ci]:
            state = self.apart[gi]
            if state["counts"].get(hi, 0) - (1 if cur == hi else 0) > 0:
                return False
        if self.bandwidth and not self._bandwidth_allows(ci, hi, cur):
            return False
        return True

    def _bandwidth_allows(self, ci: int, hi: int, cur: int) -> bool:
        cm = self.cm
        assignment = self.assignment
        for state in self.bandwidth:
            if cur == hi:  # extension changes nothing
                if state["over"]:
                    return False
                continue
            touched: Dict[Tuple[int, int], List[float]] = {}
            for k in cm.neighbors(ci):
                nh = assignment[cm.adj_neighbor[k]]
                if nh == UNDEPLOYED:
                    continue
                vol = cm.edge_volume[cm.adj_edge[k]]
                if cur != UNDEPLOYED and cur != nh:
                    entry = touched.setdefault(_pair(cur, nh), [0.0, 0])
                    entry[0] -= vol
                    entry[1] -= 1
                if hi != nh:
                    entry = touched.setdefault(_pair(hi, nh), [0.0, 0])
                    entry[0] += vol
                    entry[1] += 1
            over = state["over"]
            demand, count = state["demand"], state["count"]
            for key, (dvol, dcount) in touched.items():
                old_demand = demand.get(key, 0.0)
                old_count = count.get(key, 0)
                cap = cm.bandwidth[key[0]][key[1]]
                if old_count > 0 and old_demand > cap:
                    over -= 1
                if old_count + dcount > 0 and old_demand + dvol > cap:
                    over += 1
            if over:
                return False
        return True

    def satisfied(self) -> bool:
        """``ConstraintSet.is_satisfied`` of the current (partial) state."""
        if self.tally["mem_over"] or self.tally["cpu_over"] \
                or self.tally["loc_over"]:
            return False
        for state in self.together:
            if state["placed"] >= 2 and state["distinct"] > 1:
                return False
        for state in self.apart:
            if state["collisions"]:
                return False
        for state in self.bandwidth:
            if state["over"]:
                return False
        return True

    # ``is_satisfied_partial`` coincides with ``is_satisfied`` for every
    # compilable constraint type (Collocation's override delegates to it).
    satisfied_partial = satisfied

    # -- mutation ----------------------------------------------------------
    def place(self, ci: int, hi: int) -> UndoToken:
        """Move component *ci* to host *hi* (``UNDEPLOYED`` removes it).

        Returns an undo token; :meth:`undo` restores every touched float
        and count to its exact prior value.
        """
        token: UndoToken = []
        cur = self.assignment[ci]
        if cur == hi:
            return token
        cm = self.cm
        token.append((self.assignment, ci, cur))
        self.assignment[ci] = hi
        if self.n_memory:
            self._shift_load(token, self.mem_load, cm.component_memory[ci],
                             cm.host_memory, "mem_over", cur, hi)
        if self.n_cpu:
            self._shift_load(token, self.cpu_load, cm.component_cpu[ci],
                             cm.host_cpu, "cpu_over", cur, hi)
        if self.has_location:
            mask = self.loc_mask[ci]
            was_bad = cur != UNDEPLOYED and not (mask >> cur) & 1
            is_bad = hi != UNDEPLOYED and not (mask >> hi) & 1
            if was_bad != is_bad:
                self._bump(token, self.tally, "loc_over",
                           1 if is_bad else -1)
        for gi in self.comp_together[ci]:
            self._shift_together(token, self.together[gi], cur, hi)
        for gi in self.comp_apart[ci]:
            self._shift_apart(token, self.apart[gi], cur, hi)
        if self.bandwidth:
            for state in self.bandwidth:
                self._shift_bandwidth(token, state, ci, cur, hi)
        return token

    def undo(self, token: UndoToken) -> None:
        """Revert one :meth:`place`, restoring exact prior state."""
        for container, key, old in reversed(token):
            if old is _MISSING:
                del container[key]
            else:
                container[key] = old

    # -- internal mutation helpers ----------------------------------------
    def _set(self, token: UndoToken, container, key, value) -> None:
        if isinstance(container, dict):
            token.append((container, key, container.get(key, _MISSING)))
        else:
            token.append((container, key, container[key]))
        container[key] = value

    def _bump(self, token: UndoToken, container: dict, key, delta: int,
              ) -> None:
        self._set(token, container, key, container.get(key, 0) + delta)

    def _shift_load(self, token: UndoToken, load: List[float], need: float,
                    cap: List[float], over_key: str, cur: int, new: int,
                    ) -> None:
        for host, delta in ((cur, -need), (new, need)):
            if host == UNDEPLOYED:
                continue
            before = load[host] > cap[host]
            self._set(token, load, host, load[host] + delta)
            after = load[host] > cap[host]
            if before != after:
                self._bump(token, self.tally, over_key, 1 if after else -1)

    def _shift_together(self, token: UndoToken, state: dict, cur: int,
                        new: int) -> None:
        counts = state["counts"]
        if cur != UNDEPLOYED:
            remaining = counts[cur] - 1
            if remaining:
                self._set(token, counts, cur, remaining)
            else:
                token.append((counts, cur, counts[cur]))
                del counts[cur]
                self._bump(token, state, "distinct", -1)
            self._bump(token, state, "placed", -1)
        if new != UNDEPLOYED:
            if new in counts:
                self._set(token, counts, new, counts[new] + 1)
            else:
                self._set(token, counts, new, 1)
                self._bump(token, state, "distinct", 1)
            self._bump(token, state, "placed", 1)

    def _shift_apart(self, token: UndoToken, state: dict, cur: int,
                     new: int) -> None:
        counts = state["counts"]
        if cur != UNDEPLOYED:
            if counts[cur] >= 2:
                self._bump(token, state, "collisions", -1)
            remaining = counts[cur] - 1
            if remaining:
                self._set(token, counts, cur, remaining)
            else:
                token.append((counts, cur, counts[cur]))
                del counts[cur]
        if new != UNDEPLOYED:
            had = counts.get(new, 0)
            self._set(token, counts, new, had + 1)
            if had >= 1:
                self._bump(token, state, "collisions", 1)

    def _shift_bandwidth(self, token: UndoToken, state: dict, ci: int,
                         cur: int, new: int) -> None:
        cm = self.cm
        assignment = self.assignment
        demand, count = state["demand"], state["count"]
        for k in cm.neighbors(ci):
            nh = assignment[cm.adj_neighbor[k]]
            if nh == UNDEPLOYED:
                continue
            vol = cm.edge_volume[cm.adj_edge[k]]
            for host, sign in ((cur, -1), (new, 1)):
                if host == UNDEPLOYED or host == nh:
                    continue
                key = _pair(host, nh)
                old_demand = demand.get(key, 0.0)
                old_count = count.get(key, 0)
                cap = cm.bandwidth[key[0]][key[1]]
                was_over = old_count > 0 and old_demand > cap
                new_count = old_count + sign
                if new_count:
                    self._set(token, demand, key, old_demand + sign * vol)
                    self._set(token, count, key, new_count)
                    is_over = demand[key] > cap
                else:
                    # Last contributing edge gone: drop the pair entirely
                    # (resets any accumulated float drift to exact zero).
                    token.append((demand, key, old_demand))
                    del demand[key]
                    token.append((count, key, old_count))
                    del count[key]
                    is_over = False
                if was_over != is_over:
                    self._bump(token, state, "over", 1 if is_over else -1)

    # -- reporting ---------------------------------------------------------
    def violation_count(self) -> int:
        """``len(ConstraintSet.violations(...))`` without building strings."""
        return sum(len(v) for v in self._violation_rows(structured=False))

    def violations(self) -> List[str]:
        """Exact object-path violation messages, in constraint order."""
        out: List[str] = []
        for rows in self._violation_rows(structured=True):
            out.extend(rows)
        return out

    def _violation_rows(self, structured: bool):
        """Per-entry violation lists, recomputed fresh from ``assignment``.

        Cold path: recomputing (rather than reading incremental floats)
        reproduces the object path's accumulation order, keeping the
        rendered ``:g`` numbers bit-identical.
        """
        cm = self.cm
        assignment = self.assignment
        mem_rows: Optional[List[str]] = None
        for entry in self.entries:
            kind = entry[0]
            if kind == "memory":
                if mem_rows is None:
                    loads: Dict[int, float] = {}
                    for ci, hi in enumerate(assignment):
                        if hi != UNDEPLOYED:
                            loads[hi] = loads.get(hi, 0.0) + \
                                cm.component_memory[ci]
                    mem_rows = [
                        (f"host {cm.host_ids[hi]!r}: components need "
                         f"{used:g} KB but only {cm.host_memory[hi]:g} KB "
                         f"available")
                        for hi, used in sorted(loads.items())
                        if used > cm.host_memory[hi]
                    ]
                yield mem_rows
            elif kind == "cpu":
                loads = {}
                violated = False
                for ci, hi in enumerate(assignment):
                    if hi != UNDEPLOYED:
                        loads[hi] = loads.get(hi, 0.0) + cm.component_cpu[ci]
                        if loads[hi] > cm.host_cpu[hi]:
                            violated = True
                yield ["CpuConstraint() violated"] if violated else []
            elif kind == "location":
                __, component_id, ci, mask = entry
                rows: List[str] = []
                if ci is not None:
                    hi = assignment[ci]
                    if hi != UNDEPLOYED and not (mask >> hi) & 1:
                        rows = [f"component {component_id!r} may not be "
                                f"deployed on {cm.host_ids[hi]!r}"]
                yield rows
            elif kind in ("together", "apart"):
                __, member_ids, known_idx, member_idx = entry
                hosts = [assignment[ci] for ci in known_idx
                         if assignment[ci] != UNDEPLOYED]
                if kind == "together":
                    bad = len(hosts) >= 2 and len(set(hosts)) != 1
                else:
                    bad = len(set(hosts)) != len(hosts)
                if not bad:
                    yield []
                    continue
                placement = {}
                for cid, ci in zip(member_ids, member_idx, strict=True):
                    if ci is None or assignment[ci] == UNDEPLOYED:
                        placement[cid] = None
                    else:
                        placement[cid] = cm.host_ids[assignment[ci]]
                mode = ("must share a host" if kind == "together"
                        else "must be separated")
                yield [f"components {placement} {mode}"]
            elif kind == "bandwidth":
                demand: Dict[Tuple[int, int], float] = {}
                for e in range(len(cm.edge_a)):
                    ha = assignment[cm.edge_a[e]]
                    hb = assignment[cm.edge_b[e]]
                    if ha == UNDEPLOYED or hb == UNDEPLOYED or ha == hb:
                        continue
                    key = _pair(ha, hb)
                    demand[key] = demand.get(key, 0.0) + cm.edge_volume[e]
                rows = []
                for (ha, hb), need in sorted(demand.items()):
                    cap = cm.bandwidth[ha][hb]
                    if need > cap:
                        rows.append(
                            f"link {cm.host_ids[ha]!r}<->{cm.host_ids[hb]!r}"
                            f": needs {need:g} KB/s, capacity {cap:g} KB/s")
                yield rows


def _flatten(constraints: ConstraintSet) -> Optional[List[Constraint]]:
    flat: List[Constraint] = []
    for constraint in constraints.constraints:
        if type(constraint) is ConstraintSet:
            nested = _flatten(constraint)
            if nested is None:
                return None
            flat.extend(nested)
        else:
            flat.append(constraint)
    return flat


_COMPILABLE = (MemoryConstraint, CpuConstraint, LocationConstraint,
               CollocationConstraint, BandwidthConstraint)


def compile_constraints(constraints: ConstraintSet, cm: CompiledModel,
                        ) -> Optional[CompiledConstraintSet]:
    """Lower *constraints* onto the *cm* snapshot, or ``None``.

    Returns ``None`` — meaning "use the object path" — when any member is
    not one of the built-in constraint types by *exact* type (subclasses may
    override semantics), or is a collocation constraint with duplicate
    members (whose object-path semantics are degenerate).
    """
    flat = _flatten(constraints)
    if flat is None:
        return None
    for constraint in flat:
        if type(constraint) not in _COMPILABLE:
            return None
    compiled = CompiledConstraintSet(cm)
    all_hosts_mask = (1 << cm.n_hosts) - 1
    uf = _UnionFind(cm.n_components)
    colloc_members: List[List[int]] = []
    for constraint in flat:
        if type(constraint) is MemoryConstraint:
            compiled.n_memory += 1
            compiled.entries.append(("memory",))
        elif type(constraint) is CpuConstraint:
            compiled.n_cpu += 1
            compiled.entries.append(("cpu",))
        elif type(constraint) is LocationConstraint:
            ci = cm.component_index.get(constraint.component)
            mask = 0
            for hi, host_id in enumerate(cm.host_ids):
                if constraint.permits_host(host_id):
                    mask |= 1 << hi
            if ci is not None:
                compiled.loc_mask[ci] &= mask
                compiled.has_location = True
            compiled.entries.append(
                ("location", constraint.component, ci, mask))
        elif type(constraint) is CollocationConstraint:
            members = constraint.components
            if len(set(members)) != len(members):
                return None
            member_idx = [cm.component_index.get(c) for c in members]
            known = [ci for ci in member_idx if ci is not None]
            state = {"counts": {}, "placed": 0, "distinct": 0,
                     "collisions": 0}
            if constraint.together:
                gi = len(compiled.together)
                compiled.together.append(state)
                for ci in known:
                    compiled.comp_together[ci].append(gi)
            else:
                gi = len(compiled.apart)
                compiled.apart.append(state)
                for ci in known:
                    compiled.comp_apart[ci].append(gi)
            for ci in known[1:]:
                uf.union(known[0], ci)
            colloc_members.append(known)
            compiled.entries.append(
                ("together" if constraint.together else "apart",
                 tuple(members), known, member_idx))
        else:  # BandwidthConstraint
            compiled.bandwidth.append({"demand": {}, "count": {}, "over": 0})
            compiled.entries.append(("bandwidth",))
    if colloc_members:
        groups: Dict[int, List[int]] = {}
        for members in colloc_members:
            for ci in members:
                groups.setdefault(uf.find(ci), []).append(ci)
        for root, members in groups.items():
            closure = tuple(sorted(set(members)))
            for ci in closure:
                compiled.colloc_partners[ci] = closure
    return compiled
