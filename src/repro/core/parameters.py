"""Extensible parameter registry for deployment models.

The paper stresses that the framework must allow "inclusion of arbitrary
system parameters (hardware host properties, network link properties,
software component properties, software interaction properties)".  This
module provides that extension point: a :class:`ParameterDefinition`
describes one parameter attached to one kind of model entity, and a
:class:`ParameterRegistry` holds the set of definitions used by a model.

A fresh :class:`~repro.core.model.DeploymentModel` starts from
:func:`standard_registry`, which registers the parameters the paper's two
example objectives (availability, latency) and constraint set need; callers
add new definitions at any time — including at run time, which is what lets
an analyzer extend the model when a new objective is plugged in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.core.errors import ParameterError

# The four kinds of model entity a parameter may attach to (Section 3.1:
# "hosts, components, physical links between hosts, and logical links
# between components").
HOST = "host"
COMPONENT = "component"
PHYSICAL_LINK = "physical_link"
LOGICAL_LINK = "logical_link"

KINDS = (HOST, COMPONENT, PHYSICAL_LINK, LOGICAL_LINK)


@dataclass(frozen=True)
class ParameterDefinition:
    """Schema for a single model parameter.

    Attributes:
        name: Identifier used to read/write the parameter on an entity.
        kind: Which entity kind it attaches to (one of :data:`KINDS`).
        default: Value used when an entity does not set the parameter.
        minimum: Inclusive lower bound, or ``None`` for unbounded.
        maximum: Inclusive upper bound, or ``None`` for unbounded.
        monitorable: Whether a run-time monitor can supply this value
            (Section 3.1, Monitor) — non-monitorable parameters must come
            from user input at design time.
        description: Human-readable documentation string.
        validator: Optional extra predicate; receives the candidate value
            and returns True when acceptable.
    """

    name: str
    kind: str
    default: Any = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    monitorable: bool = False
    description: str = ""
    validator: Optional[Callable[[Any], bool]] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ParameterError(
                f"parameter {self.name!r}: kind must be one of {KINDS}, "
                f"got {self.kind!r}"
            )

    def validate(self, value: Any) -> Any:
        """Check *value* against bounds and the custom validator.

        Returns the value unchanged on success; raises
        :class:`ParameterError` otherwise.
        """
        if isinstance(value, bool):
            # Booleans are fine for flag-like parameters; skip numeric bounds.
            if self.validator is not None and not self.validator(value):
                raise ParameterError(
                    f"parameter {self.name!r}: value {value!r} rejected by validator"
                )
            return value
        if isinstance(value, (int, float)):
            if isinstance(value, float) and math.isnan(value):
                raise ParameterError(f"parameter {self.name!r}: NaN is not allowed")
            if self.minimum is not None and value < self.minimum:
                raise ParameterError(
                    f"parameter {self.name!r}: {value} < minimum {self.minimum}"
                )
            if self.maximum is not None and value > self.maximum:
                raise ParameterError(
                    f"parameter {self.name!r}: {value} > maximum {self.maximum}"
                )
        if self.validator is not None and not self.validator(value):
            raise ParameterError(
                f"parameter {self.name!r}: value {value!r} rejected by validator"
            )
        return value


class ParameterRegistry:
    """Collection of :class:`ParameterDefinition` objects, keyed by kind+name.

    The registry is the model's schema.  It is deliberately mutable: the
    paper's Analyzer may "add or remove low-level components" and new
    objectives may require new parameters mid-execution.
    """

    def __init__(self) -> None:
        self._defs: Dict[Tuple[str, str], ParameterDefinition] = {}

    def register(self, definition: ParameterDefinition) -> ParameterDefinition:
        """Add *definition*; replacing an existing definition is an error."""
        key = (definition.kind, definition.name)
        if key in self._defs:
            raise ParameterError(
                f"parameter {definition.name!r} already registered for kind "
                f"{definition.kind!r}"
            )
        self._defs[key] = definition
        return definition

    def register_all(self, definitions: Iterator[ParameterDefinition]) -> None:
        for definition in definitions:
            self.register(definition)

    def unregister(self, kind: str, name: str) -> None:
        try:
            del self._defs[(kind, name)]
        except KeyError:
            raise ParameterError(
                f"parameter {name!r} is not registered for kind {kind!r}"
            ) from None

    def get(self, kind: str, name: str) -> ParameterDefinition:
        try:
            return self._defs[(kind, name)]
        except KeyError:
            raise ParameterError(
                f"parameter {name!r} is not registered for kind {kind!r}"
            ) from None

    def has(self, kind: str, name: str) -> bool:
        return (kind, name) in self._defs

    def defined_for(self, kind: str) -> Tuple[ParameterDefinition, ...]:
        """All definitions attached to entity kind *kind*, sorted by name."""
        return tuple(
            sorted(
                (d for (k, __), d in self._defs.items() if k == kind),
                key=lambda d: d.name,
            )
        )

    def default_values(self, kind: str) -> Dict[str, Any]:
        """Mapping of parameter name to default for entity kind *kind*."""
        return {d.name: d.default for d in self.defined_for(kind)}

    def validate(self, kind: str, name: str, value: Any) -> Any:
        """Validate *value* for parameter *name* of entity kind *kind*.

        Unregistered parameters are rejected — this is what makes the model
        schema explicit rather than an open dict.
        """
        return self.get(kind, name).validate(value)

    def monitorable(self, kind: str) -> Tuple[ParameterDefinition, ...]:
        return tuple(d for d in self.defined_for(kind) if d.monitorable)

    def copy(self) -> "ParameterRegistry":
        clone = ParameterRegistry()
        clone._defs = dict(self._defs)
        return clone

    def __len__(self) -> int:
        return len(self._defs)

    def __iter__(self) -> Iterator[ParameterDefinition]:
        return iter(sorted(self._defs.values(), key=lambda d: (d.kind, d.name)))


# ---------------------------------------------------------------------------
# Standard parameters (Section 5.1's centralized model)
# ---------------------------------------------------------------------------

def standard_definitions() -> Tuple[ParameterDefinition, ...]:
    """The parameter set used by the paper's example scenarios (§5.1).

    * each component has a required memory size;
    * each host has an available memory;
    * each logical link has a frequency of interaction and an average
      event size;
    * each physical link has a reliability, bandwidth, and transmission
      delay.

    We additionally register CPU, battery, link security, and a
    ``connected`` flag, all of which appear in the paper's motivating
    discussion (Sections 1 and 3.1).
    """
    return (
        # --- hosts -------------------------------------------------------
        ParameterDefinition(
            "memory", HOST, default=float("inf"), minimum=0.0,
            description="Available memory on the host (KB).",
        ),
        ParameterDefinition(
            "cpu", HOST, default=float("inf"), minimum=0.0,
            description="Processing capacity of the host (MIPS).",
        ),
        ParameterDefinition(
            "battery", HOST, default=float("inf"), minimum=0.0,
            monitorable=True,
            description="Remaining battery power (mWh); infinite for mains.",
        ),
        ParameterDefinition(
            "on", HOST, default=True,
            description="Whether the host is powered on.",
        ),
        # --- components ---------------------------------------------------
        ParameterDefinition(
            "memory", COMPONENT, default=0.0, minimum=0.0,
            description="Memory the component requires when deployed (KB).",
        ),
        ParameterDefinition(
            "cpu", COMPONENT, default=0.0, minimum=0.0,
            description="Processing the component requires (MIPS).",
        ),
        # --- physical links -------------------------------------------------
        ParameterDefinition(
            "reliability", PHYSICAL_LINK, default=1.0, minimum=0.0, maximum=1.0,
            monitorable=True,
            description="Probability that a transmission over the link succeeds.",
        ),
        ParameterDefinition(
            "bandwidth", PHYSICAL_LINK, default=float("inf"), minimum=0.0,
            monitorable=True,
            description="Link bandwidth (KB/s).",
        ),
        ParameterDefinition(
            "delay", PHYSICAL_LINK, default=0.0, minimum=0.0,
            monitorable=True,
            description="Transmission delay over the link (s).",
        ),
        ParameterDefinition(
            "security", PHYSICAL_LINK, default=1.0, minimum=0.0, maximum=1.0,
            description="Security level of the link; supplied by user input "
                        "(the paper's example of a hard-to-monitor parameter).",
        ),
        ParameterDefinition(
            "connected", PHYSICAL_LINK, default=True,
            monitorable=True,
            description="Whether the link is currently up.",
        ),
        # --- logical links ---------------------------------------------------
        ParameterDefinition(
            "frequency", LOGICAL_LINK, default=0.0, minimum=0.0,
            monitorable=True,
            description="Frequency of interaction between the two components "
                        "(events per unit time).",
        ),
        ParameterDefinition(
            "evt_size", LOGICAL_LINK, default=1.0, minimum=0.0,
            monitorable=True,
            description="Average event size exchanged over the link (KB).",
        ),
        ParameterDefinition(
            "criticality", LOGICAL_LINK, default=1.0, minimum=0.0,
            description="Relative importance of the interaction.",
        ),
    )


def standard_registry() -> ParameterRegistry:
    """A fresh registry pre-populated with :func:`standard_definitions`."""
    registry = ParameterRegistry()
    registry.register_all(iter(standard_definitions()))
    return registry


@dataclass
class ParameterBag:
    """Per-entity parameter storage validated against a registry.

    Entities (hosts, components, links) each own one bag.  Reads fall back
    to the registry default so that sparsely-specified models behave
    sensibly; writes are validated eagerly so bad data fails at the point
    of entry, not deep inside an algorithm.
    """

    kind: str
    registry: ParameterRegistry
    values: Dict[str, Any] = field(default_factory=dict)

    def get(self, name: str) -> Any:
        definition = self.registry.get(self.kind, name)
        return self.values.get(name, definition.default)

    def set(self, name: str, value: Any) -> None:
        self.values[name] = self.registry.validate(self.kind, name, value)

    def update(self, mapping: Dict[str, Any]) -> None:
        for name, value in mapping.items():
            self.set(name, value)

    def as_dict(self) -> Dict[str, Any]:
        """Every registered parameter resolved to its effective value."""
        result = self.registry.default_values(self.kind)
        result.update(self.values)
        return result

    def explicit(self) -> Dict[str, Any]:
        """Only the values explicitly set on this entity (no defaults)."""
        return dict(self.values)

    def copy(self, registry: Optional[ParameterRegistry] = None) -> "ParameterBag":
        return ParameterBag(self.kind, registry or self.registry, dict(self.values))
