"""The deployment improvement framework, wired together.

:class:`CentralizedFramework` realizes Figure 2: a Master Host holds the
Centralized Model, Analyzer, and Algorithm(s); Slave Hosts run Slave
Monitors and Slave Effectors (the middleware's Admin components), and the
Master Monitor / Master Effector roles are played by the Deployer component
plus this class's monitoring hub and effector.

The closed loop per improvement cycle:

1. Admins push monitoring reports to the Deployer (platform-dependent
   monitors), which this framework ingests into its
   :class:`~repro.core.monitoring.MonitoringHub`;
2. the hub applies ε-stable values to the model;
3. the :class:`~repro.core.analyzer.Analyzer` runs its selected
   algorithm(s) and decides whether an improved deployment is worth
   effecting;
4. if so, the :class:`~repro.core.effector.MiddlewareEffector` drives the
   live migration.

The decentralized instantiation (Figure 3) lives in
:class:`repro.decentralized.agent.DecentralizedFramework`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.analyzer import Analyzer, Decision
from repro.core.constraints import ConstraintSet
from repro.core.effector import EffectReport, MiddlewareEffector
from repro.core.errors import EffectorError
from repro.core.model import DeploymentModel
from repro.core.monitoring import MonitoringHub
from repro.core.objectives import Objective
from repro.core.report import ReportBase, deprecated_alias
from repro.core.user_input import UserInput
from repro.middleware.runtime import AppComponent, DistributedSystem
from repro.obs import Observability, get_observability
from repro.sim.clock import SimClock


@dataclass
class CycleReport(ReportBase):
    """What one improvement cycle observed and did."""

    time: float
    monitoring_updates: int
    decision: Decision
    effect: Optional[EffectReport] = None

    def summary_line(self) -> str:
        line = (f"t={self.time:.1f}: {self.monitoring_updates} model "
                f"updates; {self.decision.summary()}")
        if self.effect is not None:
            line += (f"; effected {self.effect.moves_executed} moves in "
                     f"{self.effect.sim_duration:.3f}s")
        return line

    def to_dict(self, **opts: Any) -> Dict[str, Any]:
        return {
            "time": self.time,
            "monitoring_updates": self.monitoring_updates,
            "decision": self.decision.to_dict(),
            "effect": (None if self.effect is None
                       else self.effect.to_dict(**opts)),
        }

    def render(self, **opts: Any) -> str:
        lines = [self.summary_line()]
        if self.decision.algorithms_run:
            lines.append(
                "  algorithms: " + ", ".join(self.decision.algorithms_run))
        for result in self.decision.candidates:
            lines.append(f"  candidate {result.summary_line()}")
        return "\n".join(lines)

    summary = deprecated_alias("summary_line", "summary")


class CentralizedFramework:
    """Master-host improvement loop over a live distributed system.

    Args:
        system: The running (simulated) distributed application.
        objective: Primary objective for the analyzer.
        constraints: Hard constraints for algorithms.
        latency_guard: Optional secondary objective veto (Section 5.1).
        user_input: Architect-supplied parameters/constraints, applied to
            the model up front.
        monitor_interval: Monitoring/reporting window length (simulated s).
        epsilon / stability_window: ε-stability parameters for the hub.
        analyzer: Custom analyzer; built from the other arguments when
            omitted.
        planner: Enable wave scheduling: plans carry a
            :class:`~repro.plan.MigrationSchedule` and the effector
            executes wave-by-wave with barrier rollback and re-planning.
        effector_options: Extra keyword arguments for the
            :class:`~repro.core.effector.MiddlewareEffector` (timeouts,
            retry budget, backoff shape) — the knobs experiments turn to
            compare enactment strategies under identical pressure.
    """

    def __init__(self, system: DistributedSystem, objective: Objective,
                 constraints: Optional[ConstraintSet] = None,
                 latency_guard: Optional[Objective] = None,
                 user_input: Optional[UserInput] = None,
                 monitor_interval: float = 1.0,
                 epsilon: float = 0.05, stability_window: int = 3,
                 analyzer: Optional[Analyzer] = None,
                 seed: Optional[int] = None,
                 planner: bool = False,
                 effector_options: Optional[Dict[str, Any]] = None,
                 obs: Optional[Observability] = None):
        self.system = system
        self.model = system.model
        self.clock: SimClock = system.clock
        self.objective = objective
        self.constraints = constraints if constraints is not None else ConstraintSet()
        self.obs = obs if obs is not None else get_observability()
        if self.obs.enabled:
            self.obs.bind_clock(self.clock)
        if user_input is not None:
            user_input.apply(self.model)
            for constraint in user_input.constraints:
                if constraint not in self.constraints.constraints:
                    self.constraints.add(constraint)
        self.hub = MonitoringHub(self.model, epsilon=epsilon,
                                 window=stability_window, obs=self.obs)
        # ``planner=True`` turns on wave scheduling end to end: decisions
        # carry a MigrationSchedule and the effector executes it with
        # barrier rollback and re-planning (see docs/PLANNING.md).
        self.planner = None
        if planner:
            from repro.plan import MigrationPlanner
            self.planner = MigrationPlanner(self.model, self.constraints,
                                            obs=self.obs)
        self.analyzer = analyzer if analyzer is not None else Analyzer(
            objective, self.constraints, latency_guard=latency_guard,
            seed=seed, planner=self.planner, obs=self.obs)
        self.effector = MiddlewareEffector(system, seed=seed, obs=self.obs,
                                           planner=self.planner,
                                           **(effector_options or {}))
        self.monitor_interval = monitor_interval
        self.cycles: List[CycleReport] = []
        self._cycle_task = None
        self._started = False

    # ------------------------------------------------------------------
    def start(self, cycles_per_analysis: int = 3,
              adaptive_schedule: bool = False,
              max_cycles_per_analysis: int = 12) -> None:
        """Install monitoring and schedule periodic improvement cycles.

        Monitoring reports arrive every ``monitor_interval``; the full
        analyze-and-maybe-redeploy cycle runs every ``cycles_per_analysis``
        monitoring windows (analysis is the expensive step).

        With ``adaptive_schedule`` the analysis cadence self-tunes —
        "scheduling the time to (re)examine the deployment architecture"
        (§3.1's analyzer trade-off list): every quiet analysis (no action
        taken) backs the cadence off by one window up to
        ``max_cycles_per_analysis``; any redeployment — or an unstable
        availability profile — snaps it back to the configured base, so a
        settled system is examined rarely and a disturbed one immediately.
        """
        if self._started:
            return
        self._started = True
        self.system.install_monitoring(
            ping_interval=self.monitor_interval / 2,
            report_interval=self.monitor_interval)
        self.system.deployer.on_report = self.hub.ingest
        self._windows_since_analysis = 0
        self._base_cycles_per_analysis = cycles_per_analysis
        self._cycles_per_analysis = cycles_per_analysis
        self._adaptive_schedule = adaptive_schedule
        self._max_cycles_per_analysis = max(cycles_per_analysis,
                                            max_cycles_per_analysis)
        # Process monitoring windows just after reports land (offset a hair
        # past the admins' reporting instants).
        self._cycle_task = self.clock.every(
            self.monitor_interval, self._on_window, )

    def stop(self) -> None:
        if self._cycle_task is not None:
            self._cycle_task.cancel()
            self._cycle_task = None
        self.system.uninstall_monitoring()
        self._started = False

    @property
    def current_cycles_per_analysis(self) -> int:
        """The current (possibly adapted) analysis cadence, in windows."""
        return self._cycles_per_analysis

    def _on_window(self) -> None:
        # The master host's own monitors are collected directly (Figure 2's
        # Master Monitor observes the master's platform itself).
        with self.obs.span("framework.window") as window_span:
            master_admin = self.system.deployer
            self.hub.ingest(self.system.master_host,
                            master_admin.collect_report())
            updates = self.hub.process_interval()
            self._windows_since_analysis += 1
            analyzed = (self._windows_since_analysis
                        >= self._cycles_per_analysis)
            window_span.set(updates=len(updates), analyzed=analyzed)
            if analyzed:
                self._windows_since_analysis = 0
                report = self.improvement_cycle(len(updates))
                if self._adaptive_schedule:
                    self._adapt_schedule(report)

    def _adapt_schedule(self, report: "CycleReport") -> None:
        stable = self.analyzer.history.is_stable(
            self.analyzer.stability_threshold,
            self.analyzer.stability_window)
        if report.effect is not None or stable is False:
            self._cycles_per_analysis = self._base_cycles_per_analysis
        elif self._cycles_per_analysis < self._max_cycles_per_analysis:
            self._cycles_per_analysis += 1

    # ------------------------------------------------------------------
    def improvement_cycle(self, monitoring_updates: int = 0) -> CycleReport:
        """Analyze the current model and effect an improvement if warranted."""
        decision = self.analyzer.analyze(self.model, now=self.clock.now)
        effect: Optional[EffectReport] = None
        if decision.will_redeploy and decision.plan is not None:
            try:
                effect = self.effector.effect(decision.plan)
                self.analyzer.record_outcome(True)
            except EffectorError:
                self.analyzer.record_outcome(False)
        report = CycleReport(self.clock.now, monitoring_updates, decision,
                             effect)
        self.cycles.append(report)
        self.obs.counter("framework.cycles").inc()
        if effect is not None:
            self.obs.counter("framework.redeployments").inc()
        return report

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def modeled_availability(self) -> float:
        """What the model predicts for the current deployment."""
        return self.objective.evaluate(self.model, self.model.deployment)

    def app_delivery_ratio(self) -> float:
        """Ground truth: fraction of application events actually delivered."""
        sent = 0
        received = 0
        for architecture in self.system.architectures.values():
            for component in architecture.components:
                if isinstance(component, AppComponent):
                    sent += component.sent_count
                    received += component.received_count
        if sent == 0:
            return 1.0
        return received / sent

    def status(self) -> Dict[str, Any]:
        return {
            "time": self.clock.now,
            "modeled_availability": self.modeled_availability(),
            "monitoring": self.hub.stability_report(),
            "analyzer": self.analyzer.profile_summary(),
            "cycles": len(self.cycles),
            "redeployments": sum(
                1 for c in self.cycles if c.effect is not None),
        }
