"""Platform-independent effecting: redeployment plans and coordination.

Section 3.1 (Effector): "effectors are also composed of two parts: (1) a
platform-dependent part that 'hooks' into the platform to perform the
redeployment of software components; and (2) a platform-independent part
that receives the redeployment instructions from the analyzer and
coordinates the redeployment process."

The platform-dependent half is the Admin/Deployer machinery of
:mod:`repro.middleware.admin`.  Here live the platform-independent pieces:

* :class:`RedeploymentPlan` — the analyzer's instructions: target
  deployment, derived move list, and cost estimates (data volume and time)
  computed from the model's link parameters;
* :class:`Effector` implementations — :class:`MiddlewareEffector` drives a
  live :class:`~repro.middleware.runtime.DistributedSystem`;
  :class:`ModelEffector` applies a plan to the model only (DeSi's
  hypothetical "what-if" mode, where no real system is attached).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.errors import (
    EffectorError, MigrationTimeoutError, PreflightError,
)
from repro.core.model import Deployment, DeploymentModel, Move
from repro.core.report import ReportBase
from repro.obs import Observability, get_observability


@dataclass
class RedeploymentPlan:
    """Instructions to take the system from one deployment to another."""

    current: Deployment
    target: Deployment
    moves: Tuple[Move, ...]
    #: Total serialized component data to ship, KB.
    estimated_kb: float
    #: Rough simulated-time estimate of the migration, seconds.
    estimated_time: float

    @property
    def is_noop(self) -> bool:
        return not self.moves

    def summary(self) -> str:
        return (f"RedeploymentPlan({len(self.moves)} moves, "
                f"~{self.estimated_kb:.1f} KB, "
                f"~{self.estimated_time:.3f} s)")


def plan_redeployment(model: DeploymentModel,
                      target: Mapping[str, str],
                      current: Optional[Mapping[str, str]] = None,
                      ) -> RedeploymentPlan:
    """Build a :class:`RedeploymentPlan` from the model's current deployment
    to *target*, estimating costs from component sizes and link parameters.

    The time estimate assumes moves proceed in parallel per source-target
    host pair: each pair's transfer time is the shipped volume over that
    pair's bandwidth plus its delay, and the plan completes when the slowest
    pair does.  Host pairs without a direct link are charged a relay through
    the most capacious mutual neighbor (the Deployer-mediated path).
    """
    current_deployment = (model.deployment if current is None
                          else Deployment(current))
    target_deployment = Deployment(target)
    moves = current_deployment.diff(target_deployment)
    total_kb = 0.0
    pair_kb: Dict[Tuple[str, str], float] = {}
    for move in moves:
        size = max(model.component(move.component).memory, 0.1)
        total_kb += size
        key = (move.source, move.target)
        pair_kb[key] = pair_kb.get(key, 0.0) + size

    def pair_time(source: str, destination: str, kb: float) -> float:
        bandwidth = model.bandwidth(source, destination)
        delay = model.delay(source, destination)
        if bandwidth > 0.0 and delay != float("inf"):
            transfer = 0.0 if bandwidth == float("inf") else kb / bandwidth
            return delay + transfer
        # Relay via the best mutual neighbor.
        best = float("inf")
        for relay in model.host_ids:
            if relay in (source, destination):
                continue
            bw1 = model.bandwidth(source, relay)
            bw2 = model.bandwidth(relay, destination)
            if bw1 <= 0.0 or bw2 <= 0.0:
                continue
            leg1 = model.delay(source, relay) + (
                0.0 if bw1 == float("inf") else kb / bw1)
            leg2 = model.delay(relay, destination) + (
                0.0 if bw2 == float("inf") else kb / bw2)
            best = min(best, leg1 + leg2)
        return best

    estimated_time = 0.0
    for (source, destination), kb in pair_kb.items():
        estimated_time = max(estimated_time,
                             pair_time(source, destination, kb))
    if estimated_time == float("inf"):
        # Unreachable move: flag it via a sentinel the analyzer can check.
        estimated_time = float("inf")
    return RedeploymentPlan(current_deployment, target_deployment,
                            moves, total_kb, estimated_time)


@dataclass
class EffectReport(ReportBase):
    """What actually happened when a plan was effected."""

    plan: RedeploymentPlan
    succeeded: bool
    moves_executed: int
    sim_duration: float = 0.0
    kb_transferred: float = 0.0
    detail: Dict[str, Any] = field(default_factory=dict)
    #: How many times the whole plan was retried after a failed attempt.
    retries: int = 0
    #: Whether a failed plan was rolled back to the pre-plan deployment.
    rolled_back: bool = False

    def summary_line(self) -> str:
        outcome = "succeeded" if self.succeeded else "FAILED"
        line = (f"{self.plan.summary()} {outcome}: "
                f"{self.moves_executed} moves, "
                f"{self.kb_transferred:.1f} KB in {self.sim_duration:.3f}s")
        if self.retries:
            line += f", {self.retries} retries"
        if self.rolled_back:
            line += ", rolled back"
        return line

    def to_dict(self, **opts: Any) -> Dict[str, Any]:
        return {
            "plan": {
                "moves": len(self.plan.moves),
                "estimated_kb": self.plan.estimated_kb,
                "estimated_time": self.plan.estimated_time,
            },
            "succeeded": self.succeeded,
            "moves_executed": self.moves_executed,
            "sim_duration": self.sim_duration,
            "kb_transferred": self.kb_transferred,
            "retries": self.retries,
            "rolled_back": self.rolled_back,
            "detail": dict(self.detail),
        }


class Effector(ABC):
    """Platform-independent coordinator; receives plans from the analyzer.

    Before enactment every effector runs a **pre-flight gate**: the static
    deployment rules of :mod:`repro.lint.model_rules` (component mapping,
    capacities, physical reachability, hard constraints) over the state the
    plan would produce.  Error-severity findings abort the redeployment
    with :class:`~repro.core.errors.PreflightError` — a statically-invalid
    plan must fail *before* components start migrating, not midway.  Pass
    ``verify=False`` at construction (or ``force=True`` to :meth:`effect`)
    to skip the gate, mirroring the CLI's ``--force``.
    """

    #: Whether :meth:`effect` runs the pre-flight gate (set in __init__).
    verify: bool = True

    @abstractmethod
    def effect(self, plan: RedeploymentPlan,
               force: bool = False) -> EffectReport:
        """Execute *plan*; raises :class:`EffectorError` on hard failure."""

    def preflight(self, model: DeploymentModel, plan: RedeploymentPlan,
                  force: bool = False) -> None:
        """Statically verify the post-state *plan* would leave behind.

        The verified deployment is the model's current deployment overlaid
        with the plan's target, which is exactly what effecting produces
        even for partial targets.
        """
        if not self.verify or force:
            return
        from repro.lint.model_rules import verify_deployment
        effective = model.deployment.as_dict()
        effective.update(plan.target.as_dict())
        report = verify_deployment(model, effective)
        if report.has_errors:
            raise PreflightError(
                f"refusing to enact {plan.summary()}; static verification "
                "failed (use force=True to override)",
                findings=report.errors)


class ModelEffector(Effector):
    """Applies the plan to the deployment model only (what-if exploration)."""

    def __init__(self, model: DeploymentModel, verify: bool = True):
        self.model = model
        self.verify = verify
        self.history: list = []

    def effect(self, plan: RedeploymentPlan,
               force: bool = False) -> EffectReport:
        self.preflight(self.model, plan, force=force)
        for component_id, host_id in plan.target.items():
            self.model.deploy(component_id, host_id)
        report = EffectReport(plan, True, len(plan.moves))
        self.history.append(report)
        return report


class MiddlewareEffector(Effector):
    """Drives a live :class:`~repro.middleware.runtime.DistributedSystem`.

    The heavy lifting — the request/transfer/reconstitute protocol with
    buffering — is the platform-dependent half inside the middleware's
    Admin/Deployer components; this class is the coordination shim that the
    analyzer talks to, **hardened** for the failure environment the paper
    targets:

    * each enactment attempt is bounded by a per-migration timeout
      (``max_wait`` simulated seconds; expiry raises
      :class:`~repro.core.errors.MigrationTimeoutError`, never a
      silently-partial report);
    * failed attempts are retried up to ``max_retries`` times with bounded
      exponential backoff plus seeded jitter — the backoff runs *simulated*
      time forward, giving partitions a chance to heal and offline queues a
      chance to flush;
    * retries are safe because migration is idempotent end to end: the
      Deployer re-requests only still-missing components, sources keep a
      serialized copy until the receiver's ack, and receivers discard
      duplicate transfers while re-acking;
    * when retries are exhausted and ``transactional`` is set, the plan is
      rolled back to the exact pre-plan deployment (limbo components are
      restored to their sources first), so the system is never left
      somewhere between two deployments.

    What was retried and rolled back is reported in the
    :class:`EffectReport` (``retries``/``rolled_back`` plus ``detail``),
    which the raised error also carries as ``.report``.
    """

    def __init__(self, system: Any, max_wait: float = 1000.0,
                 verify: bool = True, max_retries: int = 3,
                 backoff_base: float = 0.5, backoff_factor: float = 2.0,
                 backoff_max: float = 30.0, jitter: float = 0.1,
                 transactional: bool = True, seed: Optional[int] = None,
                 obs: Optional[Observability] = None):
        self.system = system
        self.max_wait = max_wait
        self.verify = verify
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.transactional = transactional
        self._rng = random.Random(seed)
        self.history: list = []
        self.obs = obs if obs is not None else get_observability()
        # Resolve instruments once; with a null registry these are shared
        # no-ops, with a live one they pre-register the effector's metrics
        # so captures always show the subsystem (even at zero activity).
        self._c_migrations = self.obs.counter("effector.migrations")
        self._c_moves = self.obs.counter("effector.moves")
        self._c_retries = self.obs.counter("effector.retries")
        self._c_rollbacks = self.obs.counter("effector.rollbacks")
        self._c_failures = self.obs.counter("effector.failures")
        self._h_kb = self.obs.histogram("effector.kb_moved")
        self._h_duration = self.obs.histogram("effector.sim_duration")

    def _backoff(self, retry_index: int) -> float:
        delay = min(self.backoff_base * self.backoff_factor ** retry_index,
                    self.backoff_max)
        if self.jitter:
            delay *= 1.0 + self.jitter * self._rng.uniform(-1.0, 1.0)
        return max(delay, 0.0)

    def effect(self, plan: RedeploymentPlan,
               force: bool = False) -> EffectReport:
        if plan.is_noop:
            report = EffectReport(plan, True, 0)
            self.history.append(report)
            return report
        with self.obs.span("effector.effect",
                           moves=len(plan.moves)) as span:
            report = self._effect(plan, force)
            span.set(succeeded=report.succeeded, retries=report.retries,
                     kb=report.kb_transferred)
        return report

    def _effect(self, plan: RedeploymentPlan,
                force: bool = False) -> EffectReport:
        self.preflight(self.system.model, plan, force=force)
        self._c_migrations.inc()
        clock = self.system.clock
        started = clock.now
        pre_state = dict(self.system.actual_deployment())
        retries = 0
        backoffs: list = []
        last_error: EffectorError
        while True:
            try:
                stats = self.system.redeploy(plan.target.as_dict(),
                                             max_wait=self.max_wait)
            except EffectorError as exc:
                last_error = exc
                if retries >= self.max_retries:
                    break
                delay = self._backoff(retries)
                retries += 1
                self._c_retries.inc()
                backoffs.append(delay)
                clock.run(delay)  # heal window: partitions may come back
                continue
            report = EffectReport(
                plan, True, stats["moves"],
                sim_duration=clock.now - started,
                kb_transferred=stats["kb_transferred"],
                retries=retries,
                detail={"backoffs": tuple(backoffs)} if backoffs else {},
            )
            self.history.append(report)
            self._c_moves.inc(report.moves_executed)
            self._h_kb.observe(report.kb_transferred)
            self._h_duration.observe(report.sim_duration)
            return report
        # Retries exhausted: roll back to the pre-plan deployment.
        detail: Dict[str, Any] = {"error": str(last_error),
                                  "backoffs": tuple(backoffs)}
        rolled_back = False
        if self.transactional:
            try:
                restored = self.system.reset_redeployment()
                self.system.redeploy(pre_state, max_wait=self.max_wait)
                rolled_back = True
                detail["restored_in_place"] = restored
            except EffectorError as rollback_exc:
                detail["rollback_error"] = str(rollback_exc)
        report = EffectReport(
            plan, False, 0, sim_duration=clock.now - started,
            retries=retries, rolled_back=rolled_back, detail=detail)
        self.history.append(report)
        self._c_failures.inc()
        if rolled_back:
            self._c_rollbacks.inc()
        raise MigrationTimeoutError(
            f"{plan.summary()} failed after {retries} retr"
            f"{'y' if retries == 1 else 'ies'}"
            f"{' (rolled back)' if rolled_back else ''}: {last_error}",
            pending=getattr(last_error, "pending", None),
            report=report) from last_error
