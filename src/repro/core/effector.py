"""Platform-independent effecting: redeployment plans and coordination.

Section 3.1 (Effector): "effectors are also composed of two parts: (1) a
platform-dependent part that 'hooks' into the platform to perform the
redeployment of software components; and (2) a platform-independent part
that receives the redeployment instructions from the analyzer and
coordinates the redeployment process."

The platform-dependent half is the Admin/Deployer machinery of
:mod:`repro.middleware.admin`.  Here live the platform-independent pieces:

* :class:`RedeploymentPlan` — the analyzer's instructions: target
  deployment, derived move list, and cost estimates (data volume and time)
  computed from the model's link parameters;
* :class:`Effector` implementations — :class:`MiddlewareEffector` drives a
  live :class:`~repro.middleware.runtime.DistributedSystem`;
  :class:`ModelEffector` applies a plan to the model only (DeSi's
  hypothetical "what-if" mode, where no real system is attached).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro.core.constraints import ConstraintSet
from repro.core.errors import (
    EffectorError, MigrationTimeoutError, PreflightError,
)
from repro.core.model import Deployment, DeploymentModel, Move
from repro.core.report import ReportBase
from repro.obs import Observability, get_observability

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.plan.planner import MigrationPlanner
    from repro.plan.schedule import MigrationSchedule


@dataclass
class RedeploymentPlan:
    """Instructions to take the system from one deployment to another."""

    current: Deployment
    target: Deployment
    moves: Tuple[Move, ...]
    #: Total serialized component data to ship, KB.
    estimated_kb: float
    #: Rough simulated-time estimate of the migration, seconds.
    estimated_time: float
    #: Components whose moves cross host pairs with no usable route
    #: (directly or via one relay).  Non-empty means the plan cannot be
    #: enacted as stated; the analyzer refuses such plans.
    unreachable: Tuple[str, ...] = ()
    #: Optional wave ordering built by :mod:`repro.plan`; when present,
    #: :class:`MiddlewareEffector` executes wave-by-wave with barrier
    #: rollback instead of enacting the whole target at once.
    schedule: Optional["MigrationSchedule"] = None

    @property
    def is_noop(self) -> bool:
        return not self.moves

    def summary(self) -> str:
        line = (f"RedeploymentPlan({len(self.moves)} moves, "
                f"~{self.estimated_kb:.1f} KB, "
                f"~{self.estimated_time:.3f} s")
        if self.schedule is not None:
            line += f", {len(self.schedule.waves)} waves"
        if self.unreachable:
            line += f", {len(self.unreachable)} unreachable"
        return line + ")"


def plan_redeployment(model: DeploymentModel,
                      target: Mapping[str, str],
                      current: Optional[Mapping[str, str]] = None,
                      schedule: bool = False,
                      constraints: Optional[ConstraintSet] = None,
                      planner: Optional["MigrationPlanner"] = None,
                      ) -> RedeploymentPlan:
    """Build a :class:`RedeploymentPlan` from the model's current deployment
    to *target*, estimating costs from component sizes and link parameters.

    The time estimate assumes moves proceed in parallel per source-target
    host pair: each pair's transfer time is the shipped volume over that
    pair's bandwidth plus its delay, and the plan completes when the slowest
    pair does.  Host pairs without a direct link are charged a relay through
    the most capacious mutual neighbor (the Deployer-mediated path).

    Moves whose host pair has no usable route at all — no direct link and
    no relay with positive bandwidth on both legs — are surfaced in
    ``plan.unreachable`` (and leave ``estimated_time`` infinite).

    With ``schedule=True`` (or an explicit *planner*), the plan also
    carries a :class:`~repro.plan.schedule.MigrationSchedule`: the same
    delta ordered into constraint-safe, bandwidth-packed waves, which the
    effector then executes wave-by-wave with barrier rollback.
    *constraints* bounds the schedule's barrier states; it defaults to
    the constraints stored on the model.
    """
    current_deployment = (model.deployment if current is None
                          else Deployment(current))
    target_deployment = Deployment(target)
    moves = current_deployment.diff(target_deployment)
    total_kb = 0.0
    pair_kb: Dict[Tuple[str, str], float] = {}
    for move in moves:
        size = max(model.component(move.component).memory, 0.1)
        total_kb += size
        key = (move.source, move.target)
        pair_kb[key] = pair_kb.get(key, 0.0) + size

    def pair_time(source: str, destination: str, kb: float) -> float:
        bandwidth = model.bandwidth(source, destination)
        delay = model.delay(source, destination)
        if bandwidth > 0.0 and delay != float("inf"):
            transfer = 0.0 if bandwidth == float("inf") else kb / bandwidth
            return delay + transfer
        # Relay via the best mutual neighbor.
        best = float("inf")
        for relay in model.host_ids:
            if relay in (source, destination):
                continue
            bw1 = model.bandwidth(source, relay)
            bw2 = model.bandwidth(relay, destination)
            if bw1 <= 0.0 or bw2 <= 0.0:
                continue
            leg1 = model.delay(source, relay) + (
                0.0 if bw1 == float("inf") else kb / bw1)
            leg2 = model.delay(relay, destination) + (
                0.0 if bw2 == float("inf") else kb / bw2)
            best = min(best, leg1 + leg2)
        return best

    estimated_time = 0.0
    pair_times: Dict[Tuple[str, str], float] = {}
    for (source, destination), kb in pair_kb.items():
        pair_times[(source, destination)] = pair_time(source, destination,
                                                      kb)
        estimated_time = max(estimated_time,
                             pair_times[(source, destination)])
    # An infinite pair time means no route exists at all: surface the
    # affected components explicitly instead of hiding them behind the
    # aggregate estimate.
    unreachable = tuple(sorted(
        move.component for move in moves
        if pair_times[(move.source, move.target)] == float("inf")))

    wave_schedule: Optional["MigrationSchedule"] = None
    if planner is not None or schedule:
        if planner is None:
            from repro.plan.planner import MigrationPlanner
            planner = MigrationPlanner(model, constraints=constraints)
        wave_schedule = planner.schedule(target_deployment.as_dict(),
                                         current=current_deployment.as_dict())
    return RedeploymentPlan(current_deployment, target_deployment,
                            moves, total_kb, estimated_time,
                            unreachable=unreachable,
                            schedule=wave_schedule)


@dataclass
class EffectReport(ReportBase):
    """What actually happened when a plan was effected."""

    plan: RedeploymentPlan
    succeeded: bool
    moves_executed: int
    sim_duration: float = 0.0
    kb_transferred: float = 0.0
    detail: Dict[str, Any] = field(default_factory=dict)
    #: How many times the whole plan was retried after a failed attempt.
    retries: int = 0
    #: Whether a failed plan was rolled back to the pre-plan deployment.
    rolled_back: bool = False

    def summary_line(self) -> str:
        outcome = "succeeded" if self.succeeded else "FAILED"
        line = (f"{self.plan.summary()} {outcome}: "
                f"{self.moves_executed} moves, "
                f"{self.kb_transferred:.1f} KB in {self.sim_duration:.3f}s")
        if self.retries:
            line += f", {self.retries} retries"
        if self.rolled_back:
            line += ", rolled back"
        return line

    def to_dict(self, **opts: Any) -> Dict[str, Any]:
        plan: Dict[str, Any] = {
            "moves": len(self.plan.moves),
            "estimated_kb": self.plan.estimated_kb,
            "estimated_time": self.plan.estimated_time,
        }
        if self.plan.unreachable:
            plan["unreachable"] = list(self.plan.unreachable)
        if self.plan.schedule is not None:
            plan["waves"] = len(self.plan.schedule.waves)
            plan["predicted_makespan"] = self.plan.schedule.makespan
        return {
            "plan": plan,
            "succeeded": self.succeeded,
            "moves_executed": self.moves_executed,
            "sim_duration": self.sim_duration,
            "kb_transferred": self.kb_transferred,
            "retries": self.retries,
            "rolled_back": self.rolled_back,
            "detail": dict(self.detail),
        }


class Effector(ABC):
    """Platform-independent coordinator; receives plans from the analyzer.

    Before enactment every effector runs a **pre-flight gate**: the static
    deployment rules of :mod:`repro.lint.model_rules` (component mapping,
    capacities, physical reachability, hard constraints) over the state the
    plan would produce.  Error-severity findings abort the redeployment
    with :class:`~repro.core.errors.PreflightError` — a statically-invalid
    plan must fail *before* components start migrating, not midway.  Pass
    ``verify=False`` at construction (or ``force=True`` to :meth:`effect`)
    to skip the gate, mirroring the CLI's ``--force``.
    """

    #: Whether :meth:`effect` runs the pre-flight gate (set in __init__).
    verify: bool = True

    @abstractmethod
    def effect(self, plan: RedeploymentPlan,
               force: bool = False) -> EffectReport:
        """Execute *plan*; raises :class:`EffectorError` on hard failure."""

    def preflight(self, model: DeploymentModel, plan: RedeploymentPlan,
                  force: bool = False) -> None:
        """Statically verify the post-state *plan* would leave behind.

        The verified deployment is the model's current deployment overlaid
        with the plan's target, which is exactly what effecting produces
        even for partial targets.
        """
        if not self.verify or force:
            return
        from repro.lint.model_rules import verify_deployment
        effective = model.deployment.as_dict()
        effective.update(plan.target.as_dict())
        report = verify_deployment(model, effective)
        if report.has_errors:
            raise PreflightError(
                f"refusing to enact {plan.summary()}; static verification "
                "failed (use force=True to override)",
                findings=report.errors)


class ModelEffector(Effector):
    """Applies the plan to the deployment model only (what-if exploration)."""

    def __init__(self, model: DeploymentModel, verify: bool = True):
        self.model = model
        self.verify = verify
        self.history: list = []

    def effect(self, plan: RedeploymentPlan,
               force: bool = False) -> EffectReport:
        self.preflight(self.model, plan, force=force)
        for component_id, host_id in plan.target.items():
            self.model.deploy(component_id, host_id)
        report = EffectReport(plan, True, len(plan.moves))
        self.history.append(report)
        return report


class MiddlewareEffector(Effector):
    """Drives a live :class:`~repro.middleware.runtime.DistributedSystem`.

    The heavy lifting — the request/transfer/reconstitute protocol with
    buffering — is the platform-dependent half inside the middleware's
    Admin/Deployer components; this class is the coordination shim that the
    analyzer talks to, **hardened** for the failure environment the paper
    targets:

    * each enactment attempt is bounded by a per-migration timeout
      (``max_wait`` simulated seconds; expiry raises
      :class:`~repro.core.errors.MigrationTimeoutError`, never a
      silently-partial report);
    * failed attempts are retried up to ``max_retries`` times with bounded
      exponential backoff plus seeded jitter — the backoff runs *simulated*
      time forward, giving partitions a chance to heal and offline queues a
      chance to flush;
    * retries are safe because migration is idempotent end to end: the
      Deployer re-requests only still-missing components, sources keep a
      serialized copy until the receiver's ack, and receivers discard
      duplicate transfers while re-acking;
    * when retries are exhausted and ``transactional`` is set, the plan is
      rolled back to the exact pre-plan deployment (limbo components are
      restored to their sources first), so the system is never left
      somewhere between two deployments.

    What was retried and rolled back is reported in the
    :class:`EffectReport` (``retries``/``rolled_back`` plus ``detail``),
    which the raised error also carries as ``.report``.
    """

    def __init__(self, system: Any, max_wait: float = 1000.0,
                 verify: bool = True, max_retries: int = 3,
                 backoff_base: float = 0.5, backoff_factor: float = 2.0,
                 backoff_max: float = 30.0, jitter: float = 0.1,
                 transactional: bool = True, seed: Optional[int] = None,
                 planner: Optional["MigrationPlanner"] = None,
                 max_replans: int = 2,
                 obs: Optional[Observability] = None):
        self.system = system
        self.max_wait = max_wait
        self.verify = verify
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.transactional = transactional
        #: Re-planner invoked after a barrier rollback: a failed wave's
        #: schedule is rebuilt from the barrier state toward the original
        #: target (up to ``max_replans`` times) before giving up.
        self.planner = planner
        self.max_replans = max_replans
        self._rng = random.Random(seed)
        self.history: list = []
        self.obs = obs if obs is not None else get_observability()
        # Resolve instruments once; with a null registry these are shared
        # no-ops, with a live one they pre-register the effector's metrics
        # so captures always show the subsystem (even at zero activity).
        self._c_migrations = self.obs.counter("effector.migrations")
        self._c_moves = self.obs.counter("effector.moves")
        self._c_retries = self.obs.counter("effector.retries")
        self._c_rollbacks = self.obs.counter("effector.rollbacks")
        self._c_failures = self.obs.counter("effector.failures")
        self._h_kb = self.obs.histogram("effector.kb_moved")
        self._h_duration = self.obs.histogram("effector.sim_duration")
        self._c_waves = self.obs.counter("plan.waves_executed")
        self._c_barrier_rollbacks = self.obs.counter(
            "plan.barrier_rollbacks")
        self._c_replans = self.obs.counter("plan.replans")

    def _backoff(self, retry_index: int) -> float:
        delay = min(self.backoff_base * self.backoff_factor ** retry_index,
                    self.backoff_max)
        if self.jitter:
            delay *= 1.0 + self.jitter * self._rng.uniform(-1.0, 1.0)
        return max(delay, 0.0)

    def effect(self, plan: RedeploymentPlan,
               force: bool = False) -> EffectReport:
        if plan.is_noop:
            report = EffectReport(plan, True, 0)
            self.history.append(report)
            return report
        scheduled = plan.schedule is not None and bool(plan.schedule.waves)
        with self.obs.span("effector.effect",
                           moves=len(plan.moves)) as span:
            if scheduled:
                report = self._effect_schedule(plan, force)
            else:
                report = self._effect(plan, force)
            span.set(succeeded=report.succeeded, retries=report.retries,
                     kb=report.kb_transferred)
        return report

    def _effect(self, plan: RedeploymentPlan,
                force: bool = False) -> EffectReport:
        self.preflight(self.system.model, plan, force=force)
        self._c_migrations.inc()
        clock = self.system.clock
        started = clock.now
        pre_state = dict(self.system.actual_deployment())
        retries = 0
        backoffs: list = []
        last_error: EffectorError
        while True:
            try:
                stats = self.system.redeploy(plan.target.as_dict(),
                                             max_wait=self.max_wait)
            except EffectorError as exc:
                last_error = exc
                if retries >= self.max_retries:
                    break
                delay = self._backoff(retries)
                retries += 1
                self._c_retries.inc()
                backoffs.append(delay)
                clock.run(delay)  # heal window: partitions may come back
                continue
            report = EffectReport(
                plan, True, stats["moves"],
                sim_duration=clock.now - started,
                kb_transferred=stats["kb_transferred"],
                retries=retries,
                detail={"backoffs": tuple(backoffs)} if backoffs else {},
            )
            self.history.append(report)
            self._c_moves.inc(report.moves_executed)
            self._h_kb.observe(report.kb_transferred)
            self._h_duration.observe(report.sim_duration)
            return report
        # Retries exhausted: roll back to the pre-plan deployment.
        detail: Dict[str, Any] = {"error": str(last_error),
                                  "backoffs": tuple(backoffs)}
        rolled_back = False
        if self.transactional:
            try:
                restored = self.system.reset_redeployment()
                self.system.redeploy(pre_state, max_wait=self.max_wait)
                rolled_back = True
                detail["restored_in_place"] = restored
            except EffectorError as rollback_exc:
                detail["rollback_error"] = str(rollback_exc)
        report = EffectReport(
            plan, False, 0, sim_duration=clock.now - started,
            retries=retries, rolled_back=rolled_back, detail=detail)
        self.history.append(report)
        self._c_failures.inc()
        if rolled_back:
            self._c_rollbacks.inc()
        raise MigrationTimeoutError(
            f"{plan.summary()} failed after {retries} retr"
            f"{'y' if retries == 1 else 'ies'}"
            f"{' (rolled back)' if rolled_back else ''}: {last_error}",
            pending=getattr(last_error, "pending", None),
            report=report) from last_error

    # ------------------------------------------------------------------
    # Wave-by-wave orchestration (plans carrying a MigrationSchedule)
    # ------------------------------------------------------------------
    def _run_wave(self, wave_target: Mapping[str, str],
                  backoffs: list) -> Tuple[Optional[Dict[str, Any]],
                                           Optional[EffectorError], int]:
        """One wave with the per-attempt retry/backoff discipline.

        Returns ``(stats, error, retries)``: *stats* on success, the
        final *error* when the retry budget is exhausted.
        """
        clock = self.system.clock
        retries = 0
        while True:
            try:
                stats = self.system.redeploy(dict(wave_target),
                                             max_wait=self.max_wait)
                return stats, None, retries
            except EffectorError as exc:
                if retries >= self.max_retries:
                    return None, exc, retries
                delay = self._backoff(retries)
                retries += 1
                self._c_retries.inc()
                backoffs.append(delay)
                clock.run(delay)  # heal window: partitions may come back

    def _effect_schedule(self, plan: RedeploymentPlan,
                         force: bool = False) -> EffectReport:
        """Execute ``plan.schedule`` wave-by-wave.

        Every completed wave is a **rollback barrier**: when a wave's
        retry budget runs out the effector restores the last barrier
        state (not the pre-plan deployment), then — if it has a
        ``planner`` — rebuilds the remaining schedule from the barrier
        toward the plan's target and keeps going, up to ``max_replans``
        times.  Progress made before the failed wave is never reverted.
        """
        self.preflight(self.system.model, plan, force=force)
        self._c_migrations.inc()
        clock = self.system.clock
        started = clock.now
        pre_state = dict(self.system.actual_deployment())
        schedule = plan.schedule
        assert schedule is not None
        barrier = dict(pre_state)
        backoffs: list = []
        moves_executed = 0
        kb_transferred = 0.0
        total_retries = 0
        waves_completed = 0
        barrier_rollbacks = 0
        replans = 0
        last_error: Optional[EffectorError] = None
        rollback_error: Optional[str] = None
        while True:
            failed = False
            for wave in schedule.waves:
                wave_target = {move.component: move.target
                               for move in wave.moves}
                with self.obs.span("plan.wave", index=wave.index,
                                   moves=len(wave.moves)) as wave_span:
                    stats, error, retries = self._run_wave(wave_target,
                                                           backoffs)
                    total_retries += retries
                    wave_span.set(succeeded=error is None,
                                  retries=retries)
                if error is not None:
                    last_error = error
                    failed = True
                    break
                moves_executed += stats["moves"]
                kb_transferred += stats["kb_transferred"]
                barrier.update(wave_target)
                waves_completed += 1
                self._c_waves.inc()
            if not failed:
                detail: Dict[str, Any] = {
                    "waves_completed": waves_completed,
                    "replans": replans,
                    "barrier_rollbacks": barrier_rollbacks,
                }
                if backoffs:
                    detail["backoffs"] = tuple(backoffs)
                report = EffectReport(
                    plan, True, moves_executed,
                    sim_duration=clock.now - started,
                    kb_transferred=kb_transferred,
                    retries=total_retries, detail=detail)
                self.history.append(report)
                self._c_moves.inc(report.moves_executed)
                self._h_kb.observe(report.kb_transferred)
                self._h_duration.observe(report.sim_duration)
                return report
            # The wave's retry budget ran out: restore the last barrier
            # (keeping every completed wave's progress), then re-plan.
            rolled = False
            if self.transactional:
                try:
                    self.system.reset_redeployment()
                    self.system.redeploy(barrier, max_wait=self.max_wait)
                    rolled = True
                    barrier_rollbacks += 1
                    self._c_barrier_rollbacks.inc()
                except EffectorError as rollback_exc:
                    rollback_error = str(rollback_exc)
            if rolled and self.planner is not None \
                    and replans < self.max_replans:
                replans += 1
                self._c_replans.inc()
                schedule = self.planner.schedule(
                    plan.target.as_dict(),
                    current=dict(self.system.actual_deployment()))
                barrier = dict(self.system.actual_deployment())
                continue
            break
        # Out of replans (or rollback itself failed): report the partial
        # outcome.  ``rolled_back`` here means "restored to the last
        # barrier" — earlier waves' progress is retained by design.
        progress = sum(1 for component, host in barrier.items()
                       if pre_state.get(component) != host)
        detail = {
            "error": str(last_error),
            "rollback_scope": "barrier",
            "waves_completed": waves_completed,
            "progress_components": progress,
            "barrier_rollbacks": barrier_rollbacks,
            "replans": replans,
        }
        if backoffs:
            detail["backoffs"] = tuple(backoffs)
        if rollback_error is not None:
            detail["rollback_error"] = rollback_error
        report = EffectReport(
            plan, False, moves_executed,
            sim_duration=clock.now - started,
            kb_transferred=kb_transferred, retries=total_retries,
            rolled_back=barrier_rollbacks > 0, detail=detail)
        self.history.append(report)
        self._c_failures.inc()
        if barrier_rollbacks:
            self._c_rollbacks.inc()
        raise MigrationTimeoutError(
            f"{plan.summary()} failed at wave "
            f"{waves_completed} after {replans} re-plan"
            f"{'' if replans == 1 else 's'} "
            f"({progress} components of progress retained): {last_error}",
            pending=getattr(last_error, "pending", None),
            report=report) from last_error
