"""DeSi reimplementation: the deployment exploration environment.

Architecture after Figure 4 — a reactive Model
(:class:`~repro.desi.systemdata.DeSiModel` holding SystemData,
GraphViewData, AlgoResultData), a Controller
(:class:`~repro.desi.generator.Generator`,
:class:`~repro.desi.modifier.Modifier`,
:class:`~repro.desi.container.AlgorithmContainer`,
:class:`~repro.desi.adapter.MiddlewareAdapter`), and headless Views
(:class:`~repro.desi.views.TableView`, :class:`~repro.desi.views.GraphView`).
xADL import/export lives in :mod:`repro.desi.xadl`.
"""

from repro.desi.adapter import AdapterEffector, AdapterMonitor, MiddlewareAdapter
from repro.desi.batch import CellResult, ExperimentReport, ExperimentRunner
from repro.desi.container import AlgorithmContainer
from repro.desi.generator import Generator, GeneratorConfig
from repro.desi.modifier import Modifier
from repro.desi.systemdata import (
    AlgoResultData, DeSiModel, GraphStyle, GraphViewData, SystemData,
)
from repro.desi.views import GraphView, TableView
from repro.desi import xadl

__all__ = [
    "AdapterEffector",
    "AdapterMonitor",
    "AlgoResultData",
    "AlgorithmContainer",
    "CellResult",
    "DeSiModel",
    "ExperimentReport",
    "ExperimentRunner",
    "Generator",
    "GeneratorConfig",
    "GraphStyle",
    "GraphView",
    "GraphViewData",
    "MiddlewareAdapter",
    "Modifier",
    "SystemData",
    "TableView",
    "xadl",
]
