"""DeSi's Generator: random deployment architectures from parameter ranges.

Section 4.1: "The Generator component takes as its input the desired number
of hardware hosts, software components, and a set of ranges for system
parameters (e.g., minimum and maximum network reliability, component
interaction frequency, available memory, and so on).  Based on this
information, Generator creates a specific deployment architecture that
satisfies the given input ... The above components allow DeSi to be used to
automatically generate and manipulate large numbers of hypothetical
deployment architectures."

The generator guarantees a *feasible* starting point: total host memory
comfortably exceeds total component memory (controlled by
``memory_headroom``) and the initial deployment satisfies the memory
constraint, so every algorithm starts from a valid configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.errors import ModelError
from repro.core.model import DeploymentModel


@dataclass
class GeneratorConfig:
    """Parameter ranges for architecture generation (DeSi's input form)."""

    hosts: int = 4
    components: int = 10
    # Inclusive (low, high) ranges.
    host_memory: Tuple[float, float] = (50.0, 150.0)
    component_memory: Tuple[float, float] = (2.0, 10.0)
    reliability: Tuple[float, float] = (0.3, 1.0)
    bandwidth: Tuple[float, float] = (30.0, 300.0)
    delay: Tuple[float, float] = (0.001, 0.05)
    frequency: Tuple[float, float] = (1.0, 10.0)
    evt_size: Tuple[float, float] = (0.1, 4.0)
    #: Probability that any host pair has a physical link (a spanning tree
    #: is always added first, so the network is connected).
    physical_density: float = 1.0
    #: Probability that any component pair interacts.
    logical_density: float = 0.35
    #: Total host memory is at least this multiple of total component
    #: memory (regenerated host memories enforce it).
    memory_headroom: float = 1.5
    host_prefix: str = "h"
    component_prefix: str = "c"

    def validate(self) -> None:
        if self.hosts < 1:
            raise ModelError("need at least one host")
        if self.components < 1:
            raise ModelError("need at least one component")
        for name in ("host_memory", "component_memory", "reliability",
                     "bandwidth", "delay", "frequency", "evt_size"):
            low, high = getattr(self, name)
            if low > high:
                raise ModelError(f"range {name} is inverted: {low} > {high}")
        if not 0.0 <= self.physical_density <= 1.0:
            raise ModelError("physical_density must be in [0,1]")
        if not 0.0 <= self.logical_density <= 1.0:
            raise ModelError("logical_density must be in [0,1]")
        if self.memory_headroom < 1.0:
            raise ModelError("memory_headroom must be >= 1.0 for feasibility")


class Generator:
    """Produces random-but-feasible :class:`DeploymentModel` instances."""

    def __init__(self, config: Optional[GeneratorConfig] = None,
                 seed: Optional[int] = None):
        self.config = config if config is not None else GeneratorConfig()
        self.config.validate()
        self.rng = random.Random(seed)

    def _uniform(self, bounds: Tuple[float, float]) -> float:
        return self.rng.uniform(*bounds)

    # ------------------------------------------------------------------
    def generate(self, name: str = "generated") -> DeploymentModel:
        """One random architecture with a valid initial deployment."""
        config = self.config
        model = DeploymentModel(name=name)
        host_ids = [f"{config.host_prefix}{i}" for i in range(config.hosts)]
        component_ids = [f"{config.component_prefix}{i}"
                         for i in range(config.components)]

        component_memories = {
            c: self._uniform(config.component_memory) for c in component_ids
        }
        total_component_memory = sum(component_memories.values())

        # Host memories: drawn from the range, then scaled up if the
        # headroom requirement is not met.
        host_memories = {
            h: self._uniform(config.host_memory) for h in host_ids
        }
        total_host_memory = sum(host_memories.values())
        required = total_component_memory * config.memory_headroom
        if total_host_memory < required:
            scale = required / total_host_memory
            host_memories = {h: m * scale for h, m in host_memories.items()}

        for host_id in host_ids:
            model.add_host(host_id, memory=host_memories[host_id])
        for component_id in component_ids:
            model.add_component(component_id,
                                memory=component_memories[component_id])

        # Physical topology: random spanning tree for connectivity, then
        # extra links per density.
        shuffled = list(host_ids)
        self.rng.shuffle(shuffled)
        for index in range(1, len(shuffled)):
            attach_to = shuffled[self.rng.randrange(index)]
            self._add_physical(model, shuffled[index], attach_to)
        for i, host_a in enumerate(host_ids):
            for host_b in host_ids[i + 1:]:
                if model.physical_link(host_a, host_b) is not None:
                    continue
                if self.rng.random() < self.config.physical_density:
                    self._add_physical(model, host_a, host_b)

        # Logical topology.
        for i, comp_a in enumerate(component_ids):
            for comp_b in component_ids[i + 1:]:
                if self.rng.random() < self.config.logical_density:
                    model.connect_components(
                        comp_a, comp_b,
                        frequency=self._uniform(config.frequency),
                        evt_size=self._uniform(config.evt_size))

        self._initial_deployment(model, host_ids, component_ids)
        return model

    def _add_physical(self, model: DeploymentModel, host_a: str,
                      host_b: str) -> None:
        model.connect_hosts(
            host_a, host_b,
            reliability=self._uniform(self.config.reliability),
            bandwidth=self._uniform(self.config.bandwidth),
            delay=self._uniform(self.config.delay))

    def _initial_deployment(self, model: DeploymentModel,
                            host_ids, component_ids) -> None:
        """Random memory-feasible placement.

        Tries random first-fit a few times (maximally random starts); under
        tight headroom random orders can fragment capacity, so it falls back
        to best-fit-decreasing with random tie-jitter, which succeeds
        whenever a reasonably-balanced packing exists.
        """
        for __ in range(10):
            placement = self._first_fit_random(model, host_ids, component_ids)
            if placement is not None:
                break
        else:
            placement = self._best_fit_decreasing(model, host_ids,
                                                  component_ids)
        if placement is None:
            raise ModelError(
                "generator could not place all components; "
                "increase memory_headroom")
        for component_id, host_id in placement.items():
            model.deploy(component_id, host_id)

    def _first_fit_random(self, model, host_ids, component_ids):
        remaining = {h: model.host(h).memory for h in host_ids}
        order = list(component_ids)
        self.rng.shuffle(order)
        placement = {}
        for component_id in order:
            need = model.component(component_id).memory
            candidates = list(host_ids)
            self.rng.shuffle(candidates)
            for host_id in candidates:
                if remaining[host_id] >= need:
                    placement[component_id] = host_id
                    remaining[host_id] -= need
                    break
            else:
                return None
        return placement

    def _best_fit_decreasing(self, model, host_ids, component_ids):
        remaining = {h: model.host(h).memory for h in host_ids}
        order = sorted(component_ids,
                       key=lambda c: -model.component(c).memory)
        placement = {}
        for component_id in order:
            need = model.component(component_id).memory
            viable = [h for h in host_ids if remaining[h] >= need]
            if not viable:
                return None
            # Most remaining capacity first (balanced), random tie-break.
            host_id = max(viable,
                          key=lambda h: (remaining[h], self.rng.random()))
            placement[component_id] = host_id
            remaining[host_id] -= need
        return placement

    def generate_many(self, count: int,
                      name_prefix: str = "generated") -> Tuple[DeploymentModel, ...]:
        """A batch of architectures (benches average over these)."""
        return tuple(self.generate(f"{name_prefix}-{index}")
                     for index in range(count))
