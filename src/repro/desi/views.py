"""DeSi's View subsystem — headless TableView and GraphView.

Section 4.1: "The current architecture of the View subsystem contains two
components — GraphView and TableView.  GraphView is used to depict the
information provided by the Model's GraphViewData component.  TableView is
intended to support a detailed layout of system parameters and deployment
estimation algorithms captured in the Model's SystemData and AlgoResultData
components."

The substitution (DESIGN.md §2): the original views are Eclipse/SWT
widgets; ours render the same content as plain text (the Figure 9 tables)
and Graphviz DOT (the Figure 10 graph), so every datum the screenshots show
is produced programmatically and can be asserted in tests.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.desi.systemdata import DeSiModel


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        return f"{value:.4g}"
    return str(value)


def _render_table(headers: Sequence[str],
                  rows: Iterable[Sequence[Any]]) -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width)
                          for cell, width in zip(cells, widths, strict=True))
    out = [line(list(headers)), "-+-".join("-" * w for w in widths)]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


class TableView:
    """Figure 9's tabular page: Parameters, Constraints, Results panels."""

    def __init__(self, desi: DeSiModel):
        self.desi = desi
        self.refreshes = 0
        desi.system.add_view(self._on_change)
        desi.results.add_view(self._on_change)

    def _on_change(self, aspect: str, detail: Dict[str, Any]) -> None:
        # A real widget would repaint; we count the pulls (Section 4.1:
        # "the View pulls the modified data from the Model").
        self.refreshes += 1

    # -- panels --------------------------------------------------------------
    def hosts_panel(self) -> str:
        model = self.desi.deployment_model
        rows = []
        deployment = model.deployment
        for host in model.hosts:
            rows.append([
                host.id, host.params.get("memory"),
                model.memory_used(host.id),
                ",".join(deployment.components_on(host.id)) or "-",
            ])
        return _render_table(
            ["host", "memory", "used", "components"], rows)

    def components_panel(self) -> str:
        model = self.desi.deployment_model
        deployment = model.deployment
        rows = [
            [component.id, component.params.get("memory"),
             deployment.get(component.id, "-")]
            for component in model.components
        ]
        return _render_table(["component", "memory", "host"], rows)

    def links_panel(self) -> str:
        model = self.desi.deployment_model
        rows = [
            [f"{link.hosts[0]}<->{link.hosts[1]}",
             link.params.get("reliability"), link.params.get("bandwidth"),
             link.params.get("delay"), link.params.get("connected")]
            for link in model.physical_links
        ]
        return _render_table(
            ["physical link", "reliability", "bandwidth", "delay", "up"],
            rows)

    def interactions_panel(self) -> str:
        model = self.desi.deployment_model
        rows = [
            [f"{link.components[0]}<->{link.components[1]}",
             link.params.get("frequency"), link.params.get("evt_size")]
            for link in model.logical_links
        ]
        return _render_table(
            ["logical link", "frequency", "evt size"], rows)

    def constraints_panel(self) -> str:
        model = self.desi.deployment_model
        if not model.constraints:
            return "(no constraints)"
        return "\n".join(f"- {constraint!r}"
                         for constraint in model.constraints)

    def results_panel(self) -> str:
        rows = self.desi.results.table_rows()
        if not rows:
            return "(no results)"
        return _render_table(
            ["algorithm", "objective", "value", "valid", "time (s)",
             "moves", "effect est (s)"],
            rows)

    def render(self) -> str:
        """The full Figure-9 page."""
        sections = [
            ("PARAMETERS / hosts", self.hosts_panel()),
            ("PARAMETERS / components", self.components_panel()),
            ("PARAMETERS / physical links", self.links_panel()),
            ("PARAMETERS / logical links", self.interactions_panel()),
            ("CONSTRAINTS", self.constraints_panel()),
            ("RESULTS", self.results_panel()),
        ]
        out = []
        for title, body in sections:
            out.append(f"=== {title} ===")
            out.append(body)
            out.append("")
        return "\n".join(out)


class GraphView:
    """Figure 10's graphical page, rendered as text and DOT.

    "Hosts are depicted as white boxes while software components are
    depicted as shaded boxes.  The solid black lines between hosts
    represent physical (network) links and the thin black lines between
    components represent logical (software) links."
    """

    def __init__(self, desi: DeSiModel):
        self.desi = desi
        self.refreshes = 0
        desi.graph.add_view(self._on_change)

    def _on_change(self, aspect: str, detail: Dict[str, Any]) -> None:
        self.refreshes += 1

    def render_text(self) -> str:
        """Containment view: each host box listing its components."""
        model = self.desi.deployment_model
        deployment = model.deployment
        out: List[str] = []
        for host in model.hosts:
            members = deployment.components_on(host.id)
            out.append(f"[{host.id}]")
            for component_id in members:
                out.append(f"  ({component_id})")
            if not members:
                out.append("  (empty)")
        out.append("")
        out.append("physical links:")
        for link in model.physical_links:
            state = "" if link.params.get("connected") else "  DOWN"
            out.append(f"  {link.hosts[0]} === {link.hosts[1]} "
                       f"(rel={_fmt(link.params.get('reliability'))}){state}")
        out.append("logical links:")
        for link in model.logical_links:
            out.append(f"  {link.components[0]} --- {link.components[1]} "
                       f"(freq={_fmt(link.params.get('frequency'))})")
        return "\n".join(out)

    def render_dot(self) -> str:
        """Graphviz DOT with hosts as white clusters, components shaded."""
        model = self.desi.deployment_model
        graph = self.desi.graph
        deployment = model.deployment
        lines = ["graph deployment {", "  compound=true;"]
        for index, host in enumerate(model.hosts):
            style = graph.host_styles.get(host.id)
            color = style.color if style else "white"
            lines.append(f'  subgraph cluster_{index} {{')
            lines.append(f'    label="{host.id}"; style=filled; '
                         f'fillcolor={color};')
            members = deployment.components_on(host.id)
            for component_id in members:
                comp_style = graph.component_styles.get(component_id)
                comp_color = comp_style.color if comp_style else "gray"
                lines.append(f'    "{component_id}" [shape=box, '
                             f'style=filled, fillcolor={comp_color}];')
            if not members:
                lines.append(f'    "__{host.id}_anchor" [style=invis];')
            lines.append("  }")
        for link in model.logical_links:
            a, b = link.components
            lines.append(f'  "{a}" -- "{b}" [style=dashed, '
                         f'label="{_fmt(link.params.get("frequency"))}"];')
        lines.append("}")
        return "\n".join(lines)

    def thumbnail(self) -> str:
        """The zoomed-out overview (component counts per host)."""
        model = self.desi.deployment_model
        deployment = model.deployment
        cells = [
            f"{host.id}:{len(deployment.components_on(host.id))}"
            for host in model.hosts
        ]
        return "[" + " | ".join(cells) + "]"
