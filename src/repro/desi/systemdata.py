"""DeSi's Model subsystem: SystemData, GraphViewData, AlgoResultData.

Figure 4: "The Model currently captures three different system aspects in
its three components: SystemData, GraphViewData, and AlgoResultData."  The
Model is "reactive and accessible to the Controller via a simple API" — here
reactivity means registered view callbacks fire whenever a Controller
component (Generator, Modifier, AlgorithmContainer, MiddlewareAdapter)
changes the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.algorithms.base import AlgorithmResult
from repro.core.model import DeploymentModel

# View callbacks receive (aspect, detail) where aspect names the Model part
# that changed ("system", "graph", "results").
ViewCallback = Callable[[str, Dict[str, Any]], None]


class SystemData:
    """The software system itself: architecture constructs and parameters.

    Wraps the shared :class:`DeploymentModel` and relays its change events
    to DeSi's views, making the model reactive in the MVC sense.
    """

    def __init__(self, model: Optional[DeploymentModel] = None):
        self.model = model if model is not None else DeploymentModel()
        self._views: List[ViewCallback] = []
        self.model.add_listener(self._on_model_event)

    def replace_model(self, model: DeploymentModel) -> None:
        self.model.remove_listener(self._on_model_event)
        self.model = model
        self.model.add_listener(self._on_model_event)
        self._notify("system", {"event": "model_replaced"})

    # -- reactivity -----------------------------------------------------------
    def add_view(self, callback: ViewCallback) -> None:
        self._views.append(callback)

    def remove_view(self, callback: ViewCallback) -> None:
        self._views.remove(callback)

    def _on_model_event(self, event: str, payload: Dict[str, Any]) -> None:
        self._notify("system", {"event": event, **payload})

    def _notify(self, aspect: str, detail: Dict[str, Any]) -> None:
        for view in tuple(self._views):
            view(aspect, detail)

    # -- the "simple API" used by Controller components --------------------
    def summary(self) -> Dict[str, Any]:
        return self.model.stats()


@dataclass
class GraphStyle:
    """Graphical properties of one depicted element (Fig. 4's 'color,
    shape, border thickness' and layout attributes)."""

    color: str = "white"
    shape: str = "box"
    border: int = 1
    x: float = 0.0
    y: float = 0.0
    movable: bool = True


class GraphViewData:
    """Visualization state: styles and layout for hosts/components/links.

    "Hosts are depicted as white boxes while software components are
    depicted as shaded boxes" (Section 4's description of Figure 10); those
    are the defaults assigned by :meth:`sync_entities`.
    """

    HOST_STYLE = GraphStyle(color="white", shape="box", border=2)
    COMPONENT_STYLE = GraphStyle(color="gray", shape="box", border=1)

    def __init__(self, system: SystemData):
        self.system = system
        self.host_styles: Dict[str, GraphStyle] = {}
        self.component_styles: Dict[str, GraphStyle] = {}
        self._views: List[ViewCallback] = []
        self.zoom: float = 1.0
        self.sync_entities()

    def add_view(self, callback: ViewCallback) -> None:
        self._views.append(callback)

    def _notify(self, detail: Dict[str, Any]) -> None:
        for view in tuple(self._views):
            view("graph", detail)

    def sync_entities(self) -> None:
        """Give every model entity a style; lay hosts on a circle."""
        model = self.system.model
        import math
        hosts = model.host_ids
        for index, host_id in enumerate(hosts):
            if host_id not in self.host_styles:
                angle = 2 * math.pi * index / max(len(hosts), 1)
                self.host_styles[host_id] = GraphStyle(
                    color="white", shape="box", border=2,
                    x=round(100 * math.cos(angle), 2),
                    y=round(100 * math.sin(angle), 2))
        for component_id in model.component_ids:
            if component_id not in self.component_styles:
                self.component_styles[component_id] = GraphStyle(
                    color="gray", shape="box", border=1)
        self._notify({"event": "synced"})

    def set_zoom(self, zoom: float) -> None:
        if zoom <= 0:
            raise ValueError("zoom must be positive")
        self.zoom = zoom
        self._notify({"event": "zoom", "zoom": zoom})

    def move_host(self, host_id: str, x: float, y: float) -> None:
        style = self.host_styles[host_id]
        if not style.movable:
            return
        style.x, style.y = x, y
        self._notify({"event": "moved", "host": host_id})


class AlgoResultData:
    """Captured outcomes of deployment estimation algorithms.

    "AlgoResultData provides a set of facilities for capturing the outcomes
    of the different deployment estimation algorithms: estimated deployment
    architectures (in terms of component-host pairs), achieved availability,
    algorithm's running time, estimated time to effect a redeployment, and
    so on." (Section 4.1)
    """

    def __init__(self):
        self.results: List[AlgorithmResult] = []
        #: Per-result estimated effecting time, parallel to ``results``.
        self.effect_estimates: List[float] = []
        self._views: List[ViewCallback] = []

    def add_view(self, callback: ViewCallback) -> None:
        self._views.append(callback)

    def record(self, result: AlgorithmResult,
               effect_estimate: float = 0.0) -> None:
        self.results.append(result)
        self.effect_estimates.append(effect_estimate)
        for view in tuple(self._views):
            view("results", {"event": "recorded",
                             "algorithm": result.algorithm})

    def latest(self) -> Optional[AlgorithmResult]:
        return self.results[-1] if self.results else None

    def best(self, objective) -> Optional[AlgorithmResult]:
        """Best valid result under *objective*'s direction."""
        valid = [r for r in self.results if r.valid
                 and r.objective == objective.name]
        if not valid:
            return None
        return max(valid, key=lambda r: (r.value if objective.direction == "max"
                                         else -r.value))

    def clear(self) -> None:
        self.results.clear()
        self.effect_estimates.clear()
        for view in tuple(self._views):
            view("results", {"event": "cleared"})

    def table_rows(self) -> List[Tuple[str, str, float, bool, float, int, float]]:
        """Rows for DeSi's Results panel: (algorithm, objective, value,
        valid, elapsed, moves, effect estimate)."""
        return [
            (r.algorithm, r.objective, r.value, r.valid, r.elapsed,
             r.moves_from_initial, estimate)
            for r, estimate in zip(self.results, self.effect_estimates, strict=True)
        ]


class DeSiModel:
    """The complete DeSi Model subsystem (Figure 4's left box)."""

    def __init__(self, model: Optional[DeploymentModel] = None):
        self.system = SystemData(model)
        self.graph = GraphViewData(self.system)
        self.results = AlgoResultData()

    @property
    def deployment_model(self) -> DeploymentModel:
        return self.system.model
