"""DeSi's Modifier: fine-grained, undoable tuning of an architecture.

Section 4.1: "The Modifier component allows fine-grain tuning of the
generated deployment architecture (e.g., by altering a single network
link's reliability, a single component's required memory, and so on)."

Every mutation is recorded with its inverse, so an architect exploring a
what-if ("assess a system's sensitivity to changes in specific parameters",
Section 4.3) can back out of it — the programmatic equivalent of DeSi's
interactive property sheet plus drag-and-drop exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.core.errors import ModelError
from repro.desi.systemdata import DeSiModel


@dataclass
class _Edit:
    description: str
    undo: Callable[[], None]


class Modifier:
    """Undoable edits against the DeSi model's deployment model."""

    def __init__(self, desi: DeSiModel):
        self.desi = desi
        self._undo_stack: List[_Edit] = []

    @property
    def model(self):
        return self.desi.deployment_model

    # ------------------------------------------------------------------
    def set_link_reliability(self, host_a: str, host_b: str,
                             value: float) -> None:
        link = self.model.physical_link(host_a, host_b)
        if link is None:
            raise ModelError(f"no physical link {host_a}<->{host_b}")
        old = link.params.get("reliability")
        self.model.set_physical_link_param(host_a, host_b, "reliability",
                                           value)
        self._push(f"reliability({host_a},{host_b}) {old} -> {value}",
                   lambda: self.model.set_physical_link_param(
                       host_a, host_b, "reliability", old))

    def set_link_bandwidth(self, host_a: str, host_b: str,
                           value: float) -> None:
        link = self.model.physical_link(host_a, host_b)
        if link is None:
            raise ModelError(f"no physical link {host_a}<->{host_b}")
        old = link.params.get("bandwidth")
        self.model.set_physical_link_param(host_a, host_b, "bandwidth", value)
        self._push(f"bandwidth({host_a},{host_b}) {old} -> {value}",
                   lambda: self.model.set_physical_link_param(
                       host_a, host_b, "bandwidth", old))

    def set_host_memory(self, host: str, value: float) -> None:
        old = self.model.host(host).params.get("memory")
        self.model.set_host_param(host, "memory", value)
        self._push(f"memory({host}) {old} -> {value}",
                   lambda: self.model.set_host_param(host, "memory", old))

    def set_component_memory(self, component: str, value: float) -> None:
        old = self.model.component(component).params.get("memory")
        self.model.set_component_param(component, "memory", value)
        self._push(f"memory({component}) {old} -> {value}",
                   lambda: self.model.set_component_param(
                       component, "memory", old))

    def set_interaction_frequency(self, comp_a: str, comp_b: str,
                                  value: float) -> None:
        link = self.model.logical_link(comp_a, comp_b)
        if link is None:
            raise ModelError(f"no logical link {comp_a}<->{comp_b}")
        old = link.params.get("frequency")
        self.model.set_logical_link_param(comp_a, comp_b, "frequency", value)
        self._push(f"frequency({comp_a},{comp_b}) {old} -> {value}",
                   lambda: self.model.set_logical_link_param(
                       comp_a, comp_b, "frequency", old))

    def move_component(self, component: str, host: str) -> None:
        """Drag-and-drop: manually re-deploy a component (Section 4.3:
        'Components can also be dragged-and-dropped from one host to
        another')."""
        old = self.model.deployment.get(component)
        self.model.deploy(component, host)
        if old is not None:
            self._push(f"move {component} {old} -> {host}",
                       lambda: self.model.deploy(component, old))
        else:
            self._push(f"deploy {component} -> {host}",
                       lambda: self.model.undeploy(component))

    # ------------------------------------------------------------------
    def _push(self, description: str, undo: Callable[[], None]) -> None:
        self._undo_stack.append(_Edit(description, undo))

    @property
    def edits(self) -> Tuple[str, ...]:
        return tuple(edit.description for edit in self._undo_stack)

    def undo(self) -> Optional[str]:
        """Revert the most recent edit; returns its description."""
        if not self._undo_stack:
            return None
        edit = self._undo_stack.pop()
        edit.undo()
        return edit.description

    def undo_all(self) -> int:
        count = 0
        while self.undo() is not None:
            count += 1
        return count
