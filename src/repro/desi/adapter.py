"""DeSi's MiddlewareAdapter: the bridge to a running system.

Section 4.1: "The MiddlewareAdapter component ... provides DeSi with the
same information from a running, real system.  MiddlewareAdapter's Monitor
subcomponent captures the run-time data from the external
MiddlewarePlatform and stores it inside the Model's SystemData component.
MiddlewareAdapter's Effector subcomponent is informed by the Controller's
AlgorithmContainer component of the calculated (improved) deployment
architecture; in turn, the Effector issues a set of commands to the
MiddlewarePlatform to modify the running system's deployment architecture."

Section 4.3 describes the wiring we reproduce: the adapter's Monitor and
Effector are registered against the platform's DeployerComponent — reports
flow in through ``deployer.on_report``; redeployment commands flow out
through the Deployer's enactment protocol.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.algorithms.base import AlgorithmResult
from repro.core.effector import (
    EffectReport, MiddlewareEffector, plan_redeployment,
)
from repro.core.monitoring import MonitoringHub
from repro.desi.systemdata import DeSiModel
from repro.middleware.runtime import DistributedSystem


class AdapterMonitor:
    """Monitor subcomponent: deployer reports -> DeSi's SystemData model."""

    def __init__(self, desi: DeSiModel, system: DistributedSystem,
                 epsilon: float = 0.05, window: int = 3):
        self.desi = desi
        self.system = system
        self.hub = MonitoringHub(desi.deployment_model, epsilon=epsilon,
                                 window=window)
        self.reports_received = 0
        system.deployer.on_report = self._on_report

    def _on_report(self, host: str, report: Dict[str, Any]) -> None:
        self.reports_received += 1
        self.hub.ingest(host, report)

    def close_interval(self) -> int:
        """Finish a monitoring window; returns model updates applied.

        The master host's own data is pulled directly (it does not send
        itself events).
        """
        master = self.system.master_host
        if master is not None:
            self.hub.ingest(master,
                            self.system.deployer.collect_report())
        return len(self.hub.process_interval())


class AdapterEffector:
    """Effector subcomponent: selected results -> platform commands."""

    def __init__(self, desi: DeSiModel, system: DistributedSystem):
        self.desi = desi
        self.system = system
        self._effector = MiddlewareEffector(system)

    def effect_result(self, result: AlgorithmResult) -> EffectReport:
        """Issue the commands realizing *result*'s deployment."""
        plan = plan_redeployment(self.desi.deployment_model,
                                 result.deployment)
        return self._effector.effect(plan)


class MiddlewareAdapter:
    """The complete adapter (Monitor + Effector subcomponents)."""

    def __init__(self, desi: DeSiModel, system: DistributedSystem,
                 epsilon: float = 0.05, window: int = 3):
        self.desi = desi
        self.system = system
        self.monitor = AdapterMonitor(desi, system, epsilon, window)
        self.effector = AdapterEffector(desi, system)

    def sync_from_platform(self) -> int:
        """One monitoring interval's worth of model updates."""
        return self.monitor.close_interval()

    def deploy_to_platform(self, result: AlgorithmResult) -> EffectReport:
        return self.effector.effect_result(result)
