"""xADL-style XML (de)serialization of deployment architectures.

Section 4.3: "Some properties are known at design time (e.g., initial
deployment of the system, available memory on each host, etc.), and can be
captured in architectural description of the system.  To this end, DeSi has
been integrated with xADL 2.0, an extensible architecture description
language."

We emit a compact xADL-flavored schema (``deploymentArchitecture`` root
with ``host``/``component``/``physicalLink``/``logicalLink``/``deployment``
/``constraint`` elements) using the standard library's ElementTree; the
round trip preserves every explicitly-set parameter, the deployment map,
and location/collocation constraints.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Dict, Optional

from repro.core.constraints import (
    CollocationConstraint, LocationConstraint,
)
from repro.core.errors import SerializationError, XadlError
from repro.core.model import DeploymentModel

_ROOT_TAG = "deploymentArchitecture"


def _params_to_xml(element: ET.Element, params: Dict[str, Any]) -> None:
    for name, value in sorted(params.items()):
        child = ET.SubElement(element, "param")
        child.set("name", name)
        child.set("value", repr(value))
        child.set("type", type(value).__name__)


def _params_from_xml(element: ET.Element) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for child in element.findall("param"):
        name = child.get("name")
        raw = child.get("value")
        kind = child.get("type")
        if name is None or raw is None:
            raise SerializationError("param element missing name/value")
        if kind == "bool":
            out[name] = raw == "True"
        elif kind == "int":
            out[name] = int(raw)
        elif kind == "float":
            out[name] = float(raw)
        else:
            out[name] = raw.strip("'\"")
    return out


def to_xml(model: DeploymentModel) -> str:
    """Serialize *model* (explicit parameters only) to an xADL-style string."""
    root = ET.Element(_ROOT_TAG)
    root.set("name", model.name)
    for host in model.hosts:
        element = ET.SubElement(root, "host")
        element.set("id", host.id)
        _params_to_xml(element, host.params.explicit())
    for component in model.components:
        element = ET.SubElement(root, "component")
        element.set("id", component.id)
        _params_to_xml(element, component.params.explicit())
    for link in model.physical_links:
        element = ET.SubElement(root, "physicalLink")
        element.set("hostA", link.hosts[0])
        element.set("hostB", link.hosts[1])
        _params_to_xml(element, link.params.explicit())
    for link in model.logical_links:
        element = ET.SubElement(root, "logicalLink")
        element.set("componentA", link.components[0])
        element.set("componentB", link.components[1])
        _params_to_xml(element, link.params.explicit())
    for component_id, host_id in sorted(model.deployment.items()):
        element = ET.SubElement(root, "deployment")
        element.set("component", component_id)
        element.set("host", host_id)
    for constraint in model.constraints:
        element = _constraint_to_xml(constraint)
        if element is not None:
            root.append(element)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _constraint_to_xml(constraint: Any) -> Optional[ET.Element]:
    if isinstance(constraint, LocationConstraint):
        element = ET.Element("constraint")
        element.set("kind", "location")
        element.set("component", constraint.component)
        if constraint.allowed is not None:
            element.set("allowed", ",".join(sorted(constraint.allowed)))
        else:
            element.set("forbidden",
                        ",".join(sorted(constraint.forbidden or ())))
        return element
    if isinstance(constraint, CollocationConstraint):
        element = ET.Element("constraint")
        element.set("kind", "collocation")
        element.set("components", ",".join(constraint.components))
        element.set("together", "true" if constraint.together else "false")
        return element
    return None  # resource constraints are structural, not per-entity


def from_xml(text: str) -> DeploymentModel:
    """Parse an xADL-style document back into a :class:`DeploymentModel`.

    Documents whose link or deployment elements reference undeclared
    hosts/components are rejected with :class:`XadlError` *before* any
    model construction — a dangling reference means the document is wrong,
    and half-built models must never reach algorithms or effectors.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SerializationError(f"malformed xADL document: {exc}") from exc
    if root.tag != _ROOT_TAG:
        raise SerializationError(
            f"expected root <{_ROOT_TAG}>, got <{root.tag}>")
    _validate_references(root)
    model = DeploymentModel(name=root.get("name") or "imported")
    for element in root.findall("host"):
        model.add_host(element.get("id"), **_params_from_xml(element))
    for element in root.findall("component"):
        model.add_component(element.get("id"), **_params_from_xml(element))
    for element in root.findall("physicalLink"):
        model.connect_hosts(element.get("hostA"), element.get("hostB"),
                            **_params_from_xml(element))
    for element in root.findall("logicalLink"):
        model.connect_components(element.get("componentA"),
                                 element.get("componentB"),
                                 **_params_from_xml(element))
    for element in root.findall("deployment"):
        model.deploy(element.get("component"), element.get("host"))
    for element in root.findall("constraint"):
        model.constraints.append(_constraint_from_xml(element))
    return model


def _validate_references(root: ET.Element) -> None:
    """Raise :class:`XadlError` on undeclared or missing entity references."""
    hosts = _collect_ids(root, "host")
    components = _collect_ids(root, "component")
    for element in root.findall("physicalLink"):
        for attr in ("hostA", "hostB"):
            host_id = element.get(attr)
            if host_id is None:
                raise XadlError(f"<physicalLink> is missing its {attr} "
                                "attribute")
            if host_id not in hosts:
                raise XadlError(
                    f"physical link endpoint references undeclared host "
                    f"{host_id!r}")
    for element in root.findall("logicalLink"):
        for attr in ("componentA", "componentB"):
            component_id = element.get(attr)
            if component_id is None:
                raise XadlError(f"<logicalLink> is missing its {attr} "
                                "attribute")
            if component_id not in components:
                raise XadlError(
                    f"logical link endpoint references undeclared "
                    f"component {component_id!r}")
    for element in root.findall("deployment"):
        component_id = element.get("component")
        host_id = element.get("host")
        if component_id is None or host_id is None:
            raise XadlError("<deployment> needs component and host "
                            "attributes")
        if component_id not in components:
            raise XadlError(f"deployment references undeclared component "
                            f"{component_id!r}")
        if host_id not in hosts:
            raise XadlError(f"deployment places {component_id!r} on "
                            f"undeclared host {host_id!r}")


def _collect_ids(root: ET.Element, tag: str) -> set:
    out = set()
    for element in root.findall(tag):
        identifier = element.get("id")
        if identifier is None:
            raise XadlError(f"<{tag}> element has no id attribute")
        if identifier in out:
            raise XadlError(f"duplicate {tag} id {identifier!r}")
        out.add(identifier)
    return out


def _constraint_from_xml(element: ET.Element) -> Any:
    kind = element.get("kind")
    if kind == "location":
        component = element.get("component")
        allowed = element.get("allowed")
        forbidden = element.get("forbidden")
        if allowed is not None:
            return LocationConstraint(component, allowed=allowed.split(","))
        return LocationConstraint(component,
                                  forbidden=(forbidden or "").split(","))
    if kind == "collocation":
        return CollocationConstraint(
            (element.get("components") or "").split(","),
            together=element.get("together") == "true")
    raise SerializationError(f"unknown constraint kind {kind!r}")


def save(model: DeploymentModel, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_xml(model))


def load(path: str) -> DeploymentModel:
    with open(path, "r", encoding="utf-8") as handle:
        return from_xml(handle.read())
