"""DeSi's AlgorithmContainer: pluggable algorithm invocation.

Section 4.1: "the AlgorithmContainer component invokes the selected
redeployment algorithms ... and updates the Model's AlgoResultData.  In
each case, the ... components also inform the View subsystem that the Model
has been modified."

Section 4.3 adds the meta-level API the Analyzer uses: "The API allows for
addition and removal of algorithms, modification of the model, and access
to DeSi's internal data structure that holds the results of executing
algorithms."
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.algorithms.base import AlgorithmResult, DeploymentAlgorithm
from repro.core.effector import plan_redeployment
from repro.core.errors import AnalyzerError
from repro.desi.systemdata import DeSiModel

AlgorithmFactory = Callable[[], DeploymentAlgorithm]


class AlgorithmContainer:
    """Registry + runner for deployment estimation algorithms."""

    def __init__(self, desi: DeSiModel):
        self.desi = desi
        self._factories: Dict[str, AlgorithmFactory] = {}

    # -- the meta-level API (add/remove/query) ------------------------------
    def register(self, name: str, factory: AlgorithmFactory) -> None:
        if name in self._factories:
            raise AnalyzerError(f"algorithm {name!r} already registered")
        self._factories[name] = factory

    def unregister(self, name: str) -> None:
        if name not in self._factories:
            raise AnalyzerError(f"algorithm {name!r} is not registered")
        del self._factories[name]

    @property
    def algorithm_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._factories))

    # -- invocation ------------------------------------------------------------
    def invoke(self, name: str) -> AlgorithmResult:
        """Run one registered algorithm against the current model and record
        its outcome (including the effecting-time estimate) in
        AlgoResultData."""
        factory = self._factories.get(name)
        if factory is None:
            raise AnalyzerError(f"algorithm {name!r} is not registered")
        model = self.desi.deployment_model
        result = factory().run(model)
        plan = plan_redeployment(model, result.deployment)
        self.desi.results.record(result, effect_estimate=plan.estimated_time)
        return result

    def invoke_all(self) -> List[AlgorithmResult]:
        """Run every registered algorithm (DeSi's Algorithms panel buttons,
        pressed in order)."""
        return [self.invoke(name) for name in self.algorithm_names]

    def results(self) -> List[AlgorithmResult]:
        """Access to the result store (part of the meta-level API)."""
        return list(self.desi.results.results)
