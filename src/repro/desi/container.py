"""DeSi's AlgorithmContainer: pluggable algorithm invocation.

Section 4.1: "the AlgorithmContainer component invokes the selected
redeployment algorithms ... and updates the Model's AlgoResultData.  In
each case, the ... components also inform the View subsystem that the Model
has been modified."

Section 4.3 adds the meta-level API the Analyzer uses: "The API allows for
addition and removal of algorithms, modification of the model, and access
to DeSi's internal data structure that holds the results of executing
algorithms."  That meta-level operation is
:class:`repro.core.registry.AlgorithmRegistry`, shared with the Analyzer;
the container's historical ``register``/``unregister`` methods remain as
thin deprecation shims over ``container.registry``.

Invocation runs through the memoized
:class:`repro.algorithms.engine.EvaluationEngine` — one cache per
container, so repeated invocations over the same model (DeSi's Algorithms
panel buttons, pressed repeatedly) stop re-scoring deployments any
algorithm already evaluated.
"""

from __future__ import annotations

import warnings
from typing import Callable, List, Optional, Tuple

from repro.algorithms.base import AlgorithmResult, DeploymentAlgorithm
from repro.algorithms.engine import (
    DeploymentCache, EvaluationEngine, PortfolioReport, PortfolioRunner,
)
from repro.core.effector import plan_redeployment
from repro.core.registry import AlgorithmRegistry
from repro.desi.systemdata import DeSiModel

AlgorithmFactory = Callable[[], DeploymentAlgorithm]


class AlgorithmContainer:
    """Registry + runner for deployment estimation algorithms."""

    def __init__(self, desi: DeSiModel):
        self.desi = desi
        #: The meta-level add/remove/query API (shared with the Analyzer).
        self.registry = AlgorithmRegistry()
        self._cache = DeploymentCache()

    # -- the meta-level API (add/remove/query) ------------------------------
    def register(self, name: str, factory: AlgorithmFactory) -> None:
        """Deprecated shim — use ``container.registry.register`` instead.

        Raises :class:`~repro.core.errors.DuplicateAlgorithmError` when the
        name is taken (historical behavior, now a dedicated registry error).
        """
        warnings.warn(
            "AlgorithmContainer.register is deprecated; use "
            "container.registry.register(name, factory)",
            DeprecationWarning, stacklevel=2)
        self.registry.register(name, factory)

    def unregister(self, name: str) -> None:
        """Deprecated shim — use ``container.registry.unregister`` instead."""
        warnings.warn(
            "AlgorithmContainer.unregister is deprecated; use "
            "container.registry.unregister(name)",
            DeprecationWarning, stacklevel=2)
        self.registry.unregister(name)

    @property
    def algorithm_names(self) -> Tuple[str, ...]:
        return self.registry.names

    # -- invocation ---------------------------------------------------------
    def _record(self, result: AlgorithmResult) -> None:
        plan = plan_redeployment(self.desi.deployment_model,
                                 result.deployment)
        self.desi.results.record(result, effect_estimate=plan.estimated_time)

    def invoke(self, name: str) -> AlgorithmResult:
        """Run one registered algorithm against the current model and record
        its outcome (including the effecting-time estimate) in
        AlgoResultData.

        Raises :class:`~repro.core.errors.UnknownAlgorithmError` when *name*
        is not registered.
        """
        factory = self.registry.get(name)
        model = self.desi.deployment_model
        algorithm = factory()
        engine = EvaluationEngine(algorithm.objective, algorithm.constraints,
                                  cache=self._cache)
        result = algorithm.run(model, engine=engine)
        self._record(result)
        return result

    def invoke_all(self, parallel: bool = False,
                   algorithm_timeout: Optional[float] = None,
                   ) -> List[AlgorithmResult]:
        """Run every registered algorithm (DeSi's Algorithms panel buttons,
        pressed in order) and record each outcome.

        With ``parallel=True`` the algorithms run as a concurrent portfolio
        sharing this container's evaluation cache; failed or timed-out
        algorithms are skipped rather than aborting the sweep (their fate is
        available via :meth:`invoke_portfolio`).
        """
        return [outcome.result
                for outcome in self.invoke_portfolio(
                    parallel=parallel,
                    algorithm_timeout=algorithm_timeout).outcomes
                if outcome.result is not None]

    def invoke_portfolio(self, parallel: bool = True,
                         algorithm_timeout: Optional[float] = None,
                         ) -> PortfolioReport:
        """Run every registered algorithm as a portfolio, returning the full
        per-algorithm outcome report (ok / skipped / error / timeout)."""
        runner = PortfolioRunner(parallel=parallel,
                                 algorithm_timeout=algorithm_timeout,
                                 cache=self._cache)
        report = runner.run(self.desi.deployment_model,
                            dict(self.registry.items()))
        for outcome in report.outcomes:
            if outcome.result is not None:
                self._record(outcome.result)
        return report

    def results(self) -> List[AlgorithmResult]:
        """Access to the result store (part of the meta-level API)."""
        return list(self.desi.results.results)
