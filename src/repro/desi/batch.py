"""Batch experimentation over generated architectures.

Section 4.1: DeSi's Generator/Modifier/AlgorithmContainer "allow DeSi to be
used to automatically generate and manipulate large numbers of hypothetical
deployment architectures".  :class:`ExperimentRunner` packages that
workflow: a sweep over architecture families x algorithms, with aggregate
statistics per cell — the machinery behind this repository's benchmark
tables, exposed as a public API so downstream users can run their own
comparisons.
"""

from __future__ import annotations

import pickle
import statistics
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import DeploymentAlgorithm
from repro.algorithms.engine import EvaluationEngine
from repro.core.errors import AlgorithmError, LintError, ReproError
from repro.core.model import DeploymentModel
from repro.core.objectives import Objective
from repro.core.report import ReportBase
from repro.desi.generator import Generator, GeneratorConfig
from repro.desi.xadl import from_xml, to_xml
from repro.lint.model_rules import verify_deployment
from repro.obs import Observability, get_observability
from repro.obs.metrics import MetricsRegistry

AlgorithmFactory = Callable[[], DeploymentAlgorithm]


@dataclass
class CellResult:
    """Aggregate outcome of one (family, algorithm) experiment cell."""

    family: str
    algorithm: str
    runs: int
    failures: int
    mean_value: Optional[float]
    stdev_value: Optional[float]
    mean_initial: float
    mean_elapsed: float
    mean_moves: float
    #: Engine counters (means over successful runs): how many full
    #: ``Objective.evaluate`` calls the cell actually paid for, how many
    #: were served from the memo cache, and how many went through the
    #: O(degree) delta fast path.
    mean_full_evaluations: float = 0.0
    mean_cache_hits: float = 0.0
    mean_delta_evaluations: float = 0.0
    #: Evaluations served by compiled kernels (full + delta), mean over
    #: successful runs.
    mean_kernel_evaluations: float = 0.0
    truncated_runs: int = 0
    #: Engine counters *summed* over successful runs, every key the engine
    #: reports (full_evaluations, cache_hits, cache_misses,
    #: delta_evaluations, delta_fallbacks, kernel_evaluations,
    #: kernel_deltas).  Unlike the ``mean_*`` convenience columns above,
    #: nothing is conflated or dropped — serial and ``workers=N`` sweeps
    #: must agree on these exactly.
    engine_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_improvement(self) -> Optional[float]:
        if self.mean_value is None:
            return None
        return self.mean_value - self.mean_initial


@dataclass
class ExperimentReport(ReportBase):
    """All cells of one sweep, with table rendering."""

    objective_name: str
    cells: List[CellResult] = field(default_factory=list)

    def cell(self, family: str, algorithm: str) -> CellResult:
        for candidate in self.cells:
            if candidate.family == family and candidate.algorithm == algorithm:
                return candidate
        raise KeyError((family, algorithm))

    def best_algorithm(self, family: str,
                       direction: str = "max") -> Optional[str]:
        candidates = [c for c in self.cells
                      if c.family == family and c.mean_value is not None]
        if not candidates:
            return None
        if direction == "max":
            return max(candidates, key=lambda c: c.mean_value).algorithm
        return min(candidates, key=lambda c: c.mean_value).algorithm

    def rows(self, include_timing: bool = True) -> List[Tuple]:
        out = []
        for cell in self.cells:
            row = [cell.family, cell.algorithm, cell.runs - cell.failures,
                   cell.mean_initial,
                   cell.mean_value if cell.mean_value is not None else "-"]
            if include_timing:
                row.append(cell.mean_elapsed * 1000.0)
            row.append(cell.mean_moves)
            out.append(tuple(row))
        return out

    def render(self, include_timing: bool = True) -> str:
        """The sweep as an aligned text table.

        ``include_timing=False`` drops the wall-clock column, making the
        rendering deterministic for a given seed — serial and
        ``workers=N`` sweeps then render byte-identically.
        """
        headers = ["family", "algorithm", "ok runs", "initial",
                   self.objective_name]
        if include_timing:
            headers.append("time (ms)")
        headers.append("moves")
        formatted = [
            [f"{v:.4f}" if isinstance(v, float) else str(v) for v in row]
            for row in self.rows(include_timing)
        ]
        widths = [len(h) for h in headers]
        for row in formatted:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)),
            "-+-".join("-" * w for w in widths),
        ]
        lines += [" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True))
                  for row in formatted]
        return "\n".join(lines)

    def engine_counters(self) -> Dict[str, int]:
        """Engine counters summed across every cell of the sweep."""
        totals: Dict[str, int] = {}
        for cell in self.cells:
            for key, value in cell.engine_counters.items():
                totals[key] = totals.get(key, 0) + value
        return dict(sorted(totals.items()))

    def summary_line(self) -> str:
        families = sorted({c.family for c in self.cells})
        algorithms = sorted({c.algorithm for c in self.cells})
        failures = sum(c.failures for c in self.cells)
        return (f"{self.objective_name} sweep: {len(families)} families x "
                f"{len(algorithms)} algorithms, {len(self.cells)} cells, "
                f"{failures} failed runs")

    def to_dict(self, include_timing: bool = True,
                **opts: Any) -> Dict[str, Any]:
        cells = []
        for cell in self.cells:
            entry: Dict[str, Any] = {
                "family": cell.family,
                "algorithm": cell.algorithm,
                "runs": cell.runs,
                "failures": cell.failures,
                "mean_value": cell.mean_value,
                "stdev_value": cell.stdev_value,
                "mean_initial": cell.mean_initial,
                "mean_moves": cell.mean_moves,
                "truncated_runs": cell.truncated_runs,
                "engine_counters": dict(sorted(
                    cell.engine_counters.items())),
            }
            if include_timing:
                entry["mean_elapsed"] = cell.mean_elapsed
            cells.append(entry)
        return {
            "objective": self.objective_name,
            "cells": cells,
            "engine_counters": self.engine_counters(),
        }


class ExperimentRunner:
    """Sweep architecture families against an algorithm suite.

    Args:
        objective: Objective every algorithm run is scored against.
        algorithms: Name -> factory; a fresh algorithm instance is built
            per run so internal RNG state never leaks across runs.
        replicates: Architectures generated per family.
        seed: Base seed; family i, replicate j uses ``seed + i*1000 + j``.
        max_evaluations / max_seconds: Per-run evaluation-engine budgets;
            over-budget runs truncate gracefully to their best-so-far
            deployment and are counted in ``CellResult.truncated_runs``.
        preflight: Statically verify every generated model before any
            algorithm searches it (:func:`repro.lint.model_rules.
            verify_deployment`); a model with error-severity findings
            aborts the sweep with :class:`~repro.core.errors.LintError`
            instead of surfacing as a mid-sweep exception or a silently
            wrong utility.
        workers: Number of worker processes for the sweep.  ``None``/1 runs
            serially in-process; ``N > 1`` fans (family, algorithm) cells
            out over a process pool, shipping models as xADL documents
            (whose ``repr``-based float round-trip is exact).  Both modes
            run every cell from the same serialized model bytes, so for a
            given seed they produce identical cells up to wall-clock
            timing — compare with ``report.render(include_timing=False)``.
            Algorithm factories must be picklable (module-level functions
            or ``functools.partial``, not lambdas).
        obs: Observability bundle the sweep reports into.  Defaults to the
            process-wide bundle.  In serial mode cells are instrumented
            in-process; in workers mode each worker records into a private
            registry that is shipped back (as metric lines) and merged into
            this bundle, so serial and parallel sweeps report identical
            counters.  Disabled bundles cost nothing and change nothing.
    """

    def __init__(self, objective: Objective,
                 algorithms: Dict[str, AlgorithmFactory],
                 replicates: int = 5, seed: int = 0,
                 max_evaluations: Optional[int] = None,
                 max_seconds: Optional[float] = None,
                 preflight: bool = True,
                 workers: Optional[int] = None,
                 obs: Optional[Observability] = None):
        if not algorithms:
            raise ReproError("need at least one algorithm")
        if replicates < 1:
            raise ReproError("replicates must be >= 1")
        if workers is not None and workers < 1:
            raise ReproError("workers must be >= 1")
        self.objective = objective
        self.algorithms = dict(algorithms)
        self.replicates = replicates
        self.seed = seed
        self.max_evaluations = max_evaluations
        self.max_seconds = max_seconds
        self.preflight = preflight
        self.workers = workers
        self.obs = obs if obs is not None else get_observability()

    def verify_models(self, models: Sequence[DeploymentModel]) -> None:
        """Raise :class:`LintError` if any model fails the deployment rules."""
        for model in models:
            report = verify_deployment(model)
            if report.has_errors:
                raise LintError(
                    f"generated model {model.name!r} failed static "
                    "verification", findings=report.errors)

    def _check_picklable(self) -> None:
        """Reject unpicklable factories before spawning any worker."""
        for name in sorted(self.algorithms):
            try:
                pickle.dumps(self.algorithms[name])
            except Exception as exc:
                raise ReproError(
                    f"workers mode requires picklable algorithm factories, "
                    f"but {name!r} cannot be pickled ({exc}); use a "
                    "module-level function or functools.partial instead of "
                    "a lambda or closure") from exc

    def run(self, families: Dict[str, GeneratorConfig]) -> ExperimentReport:
        """Execute the sweep; returns per-cell aggregates."""
        with self.obs.span("desi.sweep", families=len(families),
                           algorithms=len(self.algorithms),
                           workers=self.workers or 1):
            return self._run(families)

    def _run(self, families: Dict[str, GeneratorConfig]) -> ExperimentReport:
        report = ExperimentReport(self.objective.name)
        # Generate + verify + score initials in-process, then freeze every
        # family to xADL: serial and worker cells both reconstruct models
        # from the same bytes, so the two modes cannot diverge.
        prepared: List[Tuple[str, Tuple[str, ...], List[float]]] = []
        for family_index, (family, config) in enumerate(
                sorted(families.items())):
            models = [
                Generator(config,
                          seed=self.seed + family_index * 1000 + j
                          ).generate(f"{family}-{j}")
                for j in range(self.replicates)
            ]
            if self.preflight:
                self.verify_models(models)
            initials = [self.objective.evaluate(m, m.deployment)
                        for m in models]
            prepared.append((family, tuple(to_xml(m) for m in models),
                             initials))
        observed = self.obs.metrics.enabled
        jobs = [
            (family, algorithm_name, self.algorithms[algorithm_name],
             model_xmls, initials, self.max_evaluations, self.max_seconds,
             observed)
            for family, model_xmls, initials in prepared
            for algorithm_name in sorted(self.algorithms)
        ]
        if self.workers is not None and self.workers > 1:
            self._check_picklable()
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                outcomes = list(pool.map(_run_cell_job, jobs))
        else:
            outcomes = [_run_cell_job(job) for job in jobs]
        for cell, metric_lines in outcomes:
            report.cells.append(cell)
            self._absorb(cell, metric_lines)
        return report

    def _absorb(self, cell: CellResult, metric_lines: Optional[list]) -> None:
        """Merge one cell's worker-side metrics into the sweep's bundle
        and mirror the cell as a span (parent-side, so workers-mode sweeps
        still produce one span per cell)."""
        if not self.obs.enabled:
            return
        if metric_lines:
            shipped = MetricsRegistry()
            for line in metric_lines:
                shipped.load_line(line)
            self.obs.metrics.merge(shipped)
        with self.obs.span("desi.cell", family=cell.family,
                           algorithm=cell.algorithm) as span:
            span.set(runs=cell.runs, failures=cell.failures,
                     truncated=cell.truncated_runs)


def _run_cell_job(job: Tuple) -> Tuple[CellResult, Optional[list]]:
    """One (family, algorithm) cell; module-level so process pools can
    pickle it.  Models arrive as xADL strings and are rebuilt here, in the
    worker (or inline in serial mode).  Returns the cell plus (when the
    sweep is observed) the worker's metric lines for parent-side merging —
    registries themselves never cross the process boundary."""
    (family, algorithm_name, factory, model_xmls, initials,
     max_evaluations, max_seconds, observed) = job
    models = [from_xml(text) for text in model_xmls]
    registry = MetricsRegistry() if observed else None
    cell = _execute_cell(family, algorithm_name, factory, models, initials,
                         max_evaluations, max_seconds, registry)
    return cell, (registry.to_lines() if registry is not None else None)


def _execute_cell(family: str, algorithm_name: str,
                  factory: AlgorithmFactory,
                  models: Sequence[DeploymentModel],
                  initials: Sequence[float],
                  max_evaluations: Optional[int],
                  max_seconds: Optional[float],
                  registry: Optional[MetricsRegistry] = None) -> CellResult:
    values: List[float] = []
    elapsed: List[float] = []
    moves: List[float] = []
    full_evals: List[float] = []
    cache_hits: List[float] = []
    delta_evals: List[float] = []
    kernel_evals: List[float] = []
    engine_totals: Dict[str, int] = {}
    truncated = 0
    failures = 0
    for model in models:
        algorithm = factory()
        engine = EvaluationEngine(
            algorithm.objective, algorithm.constraints,
            max_evaluations=max_evaluations,
            max_seconds=max_seconds)
        try:
            result = algorithm.run(model.copy(), engine=engine)
        except AlgorithmError:
            failures += 1
            continue
        if not result.valid:
            failures += 1
            continue
        values.append(result.value)
        elapsed.append(result.elapsed)
        moves.append(result.moves_from_initial)
        counters = result.extra.get("engine", {})
        full_evals.append(counters.get("full_evaluations", 0))
        cache_hits.append(counters.get("cache_hits", 0))
        delta_evals.append(counters.get("delta_evaluations", 0))
        kernel_evals.append(counters.get("kernel_evaluations", 0)
                            + counters.get("kernel_deltas", 0))
        for key, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            engine_totals[key] = engine_totals.get(key, 0) + value
        if counters.get("truncated"):
            truncated += 1
    cell = CellResult(
        family=family,
        algorithm=algorithm_name,
        runs=len(models),
        failures=failures,
        mean_value=statistics.mean(values) if values else None,
        stdev_value=(statistics.stdev(values)
                     if len(values) > 1 else 0.0 if values else None),
        mean_initial=statistics.mean(initials),
        mean_elapsed=statistics.mean(elapsed) if elapsed else 0.0,
        mean_moves=statistics.mean(moves) if moves else 0.0,
        mean_full_evaluations=(statistics.mean(full_evals)
                               if full_evals else 0.0),
        mean_cache_hits=(statistics.mean(cache_hits)
                         if cache_hits else 0.0),
        mean_delta_evaluations=(statistics.mean(delta_evals)
                                if delta_evals else 0.0),
        mean_kernel_evaluations=(statistics.mean(kernel_evals)
                                 if kernel_evals else 0.0),
        truncated_runs=truncated,
        engine_counters=dict(sorted(engine_totals.items())),
    )
    if registry is not None:
        labels = {"family": family, "algorithm": algorithm_name}
        registry.counter("desi.runs", **labels).inc(len(models))
        registry.counter("desi.failures", **labels).inc(failures)
        registry.counter("desi.truncated", **labels).inc(truncated)
        for key, value in engine_totals.items():
            registry.counter(f"algorithms.engine.{key}", **labels).inc(value)
    return cell
