"""Decentralized model synchronization.

Section 3.2: "Each host has a Decentralized Model that contains some subset
of the system's overall model, populated by the data received from the Local
Monitor and the Decentralized Model of the hosts to which this host is
connected.  Therefore, if there are two hosts in the system that are not
aware of (i.e., connected to) each other, then the respective models
maintained by the two hosts do not contain each other's system parameters."

Knowledge is a set of versioned *facts* — "host h exists with memory M",
"component c is deployed on h", "link (a,b) has reliability r".  Each host
owns a :class:`KnowledgeBase`; a fact it observes locally is stamped with
its own monotonically increasing version, and merging keeps the
highest-version value per fact.  One :meth:`ModelSynchronizer.sync_round`
exchanges knowledge across every awareness edge, so information spreads one
awareness-hop per round — full propagation takes diameter-many rounds, which
is exactly the locality the decentralized algorithms must live with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.core import parameters as P
from repro.core.model import DeploymentModel
from repro.decentralized.awareness import AwarenessGraph

# Fact key: (category, entity, attribute)
#   ("host", "h1", "memory")            -> 64.0
#   ("host", "h1", "exists")            -> True
#   ("component", "c2", "memory")       -> 8.0
#   ("physical_link", ("a","b"), "reliability") -> 0.9
#   ("logical_link", ("c1","c2"), "frequency")  -> 3.5
#   ("deployment", "c2", "host")        -> "h1"
FactKey = Tuple[str, Any, str]


@dataclass(frozen=True)
class Fact:
    """A versioned observation.  Higher (version, origin) wins on merge;
    the origin tie-break keeps concurrent observations deterministic."""

    key: FactKey
    value: Any
    version: int
    origin: str

    def beats(self, other: "Fact") -> bool:
        return (self.version, self.origin) > (other.version, other.origin)


class KnowledgeBase:
    """One host's (partial, versioned) view of the system."""

    def __init__(self, owner: str):
        self.owner = owner
        self._facts: Dict[FactKey, Fact] = {}
        self._counter = 0
        self.facts_adopted = 0

    # ------------------------------------------------------------------
    def observe(self, category: str, entity: Any, attribute: str,
                value: Any) -> Fact:
        """Record a locally observed fact with a fresh version."""
        self._counter += 1
        fact = Fact((category, entity, attribute), value, self._counter,
                    self.owner)
        self._facts[fact.key] = fact
        return fact

    def get(self, category: str, entity: Any, attribute: str,
            default: Any = None) -> Any:
        fact = self._facts.get((category, entity, attribute))
        return fact.value if fact is not None else default

    def knows(self, category: str, entity: Any,
              attribute: str = "exists") -> bool:
        return (category, entity, attribute) in self._facts

    def facts(self) -> Tuple[Fact, ...]:
        return tuple(self._facts[k] for k in sorted(self._facts, key=repr))

    def __len__(self) -> int:
        return len(self._facts)

    # ------------------------------------------------------------------
    def merge_from(self, other: "KnowledgeBase") -> int:
        """Adopt every fact of *other* that beats (or is new to) ours.

        Also advances our version counter past anything adopted, so
        subsequent local observations supersede merged data.
        """
        adopted = 0
        for key, fact in other._facts.items():
            mine = self._facts.get(key)
            if mine is None or fact.beats(mine):
                self._facts[key] = fact
                adopted += 1
                if fact.version > self._counter:
                    self._counter = fact.version
        self.facts_adopted += adopted
        return adopted

    # ------------------------------------------------------------------
    # Bridges to/from DeploymentModel
    # ------------------------------------------------------------------
    def observe_model(self, model: DeploymentModel,
                      hosts: Optional[Iterable[str]] = None) -> None:
        """Ingest (a slice of) a ground-truth model as local observations.

        With ``hosts`` given, only those hosts, the components deployed on
        them, links touching them, and logical links among the ingested
        components are observed — a host's genuinely local knowledge.
        """
        keep = set(hosts) if hosts is not None else set(model.host_ids)
        deployment = model.deployment
        for host_id in sorted(keep):
            host = model.host(host_id)
            self.observe("host", host_id, "exists", True)
            for name, value in host.params.explicit().items():
                self.observe("host", host_id, name, value)
        local_components = {
            c for c in deployment if deployment[c] in keep
        }
        for component_id in sorted(local_components):
            component = model.component(component_id)
            self.observe("component", component_id, "exists", True)
            for name, value in component.params.explicit().items():
                self.observe("component", component_id, name, value)
            self.observe("deployment", component_id, "host",
                         deployment[component_id])
        for link in model.physical_links:
            if link.hosts[0] in keep or link.hosts[1] in keep:
                # We can see the link, though the far host's own parameters
                # may remain unknown.
                for end in link.hosts:
                    self.observe("host", end, "exists", True)
                self.observe("physical_link", link.hosts, "exists", True)
                for name, value in link.params.explicit().items():
                    self.observe("physical_link", link.hosts, name, value)
        for link in model.logical_links:
            a, b = link.components
            if a in local_components or b in local_components:
                for end in link.components:
                    self.observe("component", end, "exists", True)
                self.observe("logical_link", link.components, "exists", True)
                for name, value in link.params.explicit().items():
                    self.observe("logical_link", link.components, name, value)

    def materialize(self, name: Optional[str] = None) -> DeploymentModel:
        """Build a DeploymentModel from current knowledge.

        Entities referenced by links/deployment but never described get
        default parameters — knowing *of* a host is weaker than knowing its
        properties, and the materialized model reflects that honestly.
        """
        model = DeploymentModel(name=name or f"view:{self.owner}")
        # Collect entities by scanning facts once.
        host_ids = set()
        component_ids = set()
        physical = set()
        logical = set()
        for (category, entity, __attr) in self._facts:
            if category == "host":
                host_ids.add(entity)
            elif category == "component":
                component_ids.add(entity)
            elif category == "physical_link":
                physical.add(entity)
            elif category == "logical_link":
                logical.add(entity)
            elif category == "deployment":
                component_ids.add(entity)
        for host_id in sorted(host_ids):
            model.add_host(host_id)
            for (category, entity, attr), fact in self._facts.items():
                if category == "host" and entity == host_id \
                        and attr != "exists":
                    model.set_host_param(host_id, attr, fact.value)
        for component_id in sorted(component_ids):
            model.add_component(component_id)
            for (category, entity, attr), fact in self._facts.items():
                if category == "component" and entity == component_id \
                        and attr != "exists":
                    model.set_component_param(component_id, attr, fact.value)
        for pair in sorted(physical):
            if all(model.has_host(h) for h in pair):
                model.connect_hosts(*pair)
                for (category, entity, attr), fact in self._facts.items():
                    if category == "physical_link" and entity == pair \
                            and attr != "exists":
                        model.set_physical_link_param(*pair, attr, fact.value)
        for pair in sorted(logical):
            if all(model.has_component(c) for c in pair):
                model.connect_components(*pair)
                for (category, entity, attr), fact in self._facts.items():
                    if category == "logical_link" and entity == pair \
                            and attr != "exists":
                        model.set_logical_link_param(*pair, attr, fact.value)
        for (category, entity, attr), fact in self._facts.items():
            if category == "deployment" and attr == "host":
                if model.has_component(entity) and model.has_host(fact.value):
                    model.deploy(entity, fact.value)
        return model


class ModelSynchronizer:
    """Pairwise knowledge exchange over an awareness graph.

    "The Decentralized Model on each host synchronizes its local model with
    the remote hosts of which it is aware ... by sending streams of data
    whenever the model is modified" (Section 5.2).  We batch the streams
    into explicit rounds for determinism; a round is both directions of
    every awareness edge.
    """

    def __init__(self, awareness: AwarenessGraph):
        self.awareness = awareness
        self.bases: Dict[str, KnowledgeBase] = {
            host: KnowledgeBase(host) for host in awareness.hosts
        }
        self.rounds = 0

    def base(self, host: str) -> KnowledgeBase:
        return self.bases[host]

    def seed_from_model(self, model: DeploymentModel) -> None:
        """Give each host its genuinely-local slice of ground truth."""
        for host in self.awareness.hosts:
            self.bases[host].observe_model(model, hosts=[host])

    def sync_round(self) -> int:
        """One bidirectional exchange across every awareness edge; returns
        total facts adopted anywhere (0 = converged)."""
        adopted = 0
        for a, b in self.awareness.edges():
            adopted += self.bases[a].merge_from(self.bases[b])
            adopted += self.bases[b].merge_from(self.bases[a])
        self.rounds += 1
        return adopted

    def sync_until_quiet(self, max_rounds: int = 100) -> int:
        """Run rounds until no new facts move; returns rounds used."""
        for round_index in range(1, max_rounds + 1):
            if self.sync_round() == 0:
                return round_index
        return max_rounds
