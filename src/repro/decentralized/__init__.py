"""Decentralized instantiation of the framework (paper Section 3.2 / 5.2).

No host has global knowledge or control: knowledge lives in per-host
:class:`~repro.decentralized.sync.KnowledgeBase` objects bounded by an
:class:`~repro.decentralized.awareness.AwarenessGraph` and synchronized by
gossip; redeployment decisions are made by auctions
(:mod:`repro.decentralized.auction`) and analyzer coordination uses voting
or polling (:mod:`repro.decentralized.voting`).
"""

from repro.decentralized.agent import (
    DecentralizedAnalyzer, DecentralizedFramework, RoundReport,
)
from repro.decentralized.auction import (
    AuctionAgentComponent, AuctionRecord, agent_id,
)
from repro.decentralized.awareness import (
    AwarenessGraph, from_connectivity, full_awareness, k_hop_awareness,
    random_awareness,
)
from repro.decentralized.sync import Fact, KnowledgeBase, ModelSynchronizer
from repro.decentralized.voting import (
    PollingProtocol, PollOutcome, Voter, VoteOutcome, VotingProtocol,
)

__all__ = [
    "AuctionAgentComponent",
    "AuctionRecord",
    "AwarenessGraph",
    "DecentralizedAnalyzer",
    "DecentralizedFramework",
    "Fact",
    "KnowledgeBase",
    "ModelSynchronizer",
    "PollOutcome",
    "PollingProtocol",
    "RoundReport",
    "VoteOutcome",
    "Voter",
    "VotingProtocol",
    "agent_id",
    "from_connectivity",
    "full_awareness",
    "k_hop_awareness",
    "random_awareness",
]
