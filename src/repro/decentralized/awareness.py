"""Awareness: each host's partial knowledge of the system.

Section 5.2: "we were able to reuse the centralized model by extending it to
include the notion of 'awareness'.  Awareness denotes the extent of each
host's knowledge about the global system parameters."

An :class:`AwarenessGraph` records, per host, the set of hosts it exchanges
model data with.  The paper's default is physical connectivity; the builders
below also produce the sweeps bench E5 uses (awareness fraction from "only
direct neighbors" to "everyone"), since DecAp's solution quality as a
function of awareness is the decentralized claim we reproduce.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from repro.core.errors import ModelError, UnknownEntityError
from repro.core.model import DeploymentModel


class AwarenessGraph:
    """Symmetric host-awareness relation."""

    def __init__(self, hosts: Iterable[str],
                 edges: Iterable[Tuple[str, str]] = ()):
        self._hosts: Tuple[str, ...] = tuple(sorted(set(hosts)))
        if not self._hosts:
            raise ModelError("awareness graph needs at least one host")
        host_set = set(self._hosts)
        self._aware: Dict[str, Set[str]] = {h: set() for h in self._hosts}
        for a, b in edges:
            if a not in host_set:
                raise UnknownEntityError("host", a)
            if b not in host_set:
                raise UnknownEntityError("host", b)
            if a != b:
                self._aware[a].add(b)
                self._aware[b].add(a)

    # ------------------------------------------------------------------
    @property
    def hosts(self) -> Tuple[str, ...]:
        return self._hosts

    def aware_of(self, host: str) -> Tuple[str, ...]:
        try:
            return tuple(sorted(self._aware[host]))
        except KeyError:
            raise UnknownEntityError("host", host) from None

    def are_aware(self, host_a: str, host_b: str) -> bool:
        return host_b in self._aware.get(host_a, ())

    def add(self, host_a: str, host_b: str) -> None:
        if host_a not in self._aware:
            raise UnknownEntityError("host", host_a)
        if host_b not in self._aware:
            raise UnknownEntityError("host", host_b)
        if host_a != host_b:
            self._aware[host_a].add(host_b)
            self._aware[host_b].add(host_a)

    def edges(self) -> Tuple[Tuple[str, str], ...]:
        seen = set()
        for host, peers in self._aware.items():
            for peer in peers:
                seen.add((host, peer) if host <= peer else (peer, host))
        return tuple(sorted(seen))

    def degree(self, host: str) -> int:
        return len(self._aware[host])

    def mean_degree(self) -> float:
        if not self._hosts:
            return 0.0
        return sum(len(p) for p in self._aware.values()) / len(self._hosts)

    def awareness_fraction(self) -> float:
        """Mean fraction of *other* hosts each host is aware of (1.0 = full
        global knowledge)."""
        n = len(self._hosts)
        if n <= 1:
            return 1.0
        return self.mean_degree() / (n - 1)

    def as_map(self) -> Dict[str, Set[str]]:
        """Mutable copy in the format :mod:`repro.algorithms.decap` takes."""
        return {h: set(p) for h, p in self._aware.items()}

    def __repr__(self) -> str:
        return (f"AwarenessGraph(hosts={len(self._hosts)}, "
                f"fraction={self.awareness_fraction():.2f})")


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def from_connectivity(model: DeploymentModel) -> AwarenessGraph:
    """The paper's default: aware of directly connected hosts."""
    edges = [link.hosts for link in model.physical_links]
    return AwarenessGraph(model.host_ids, edges)


def full_awareness(model: DeploymentModel) -> AwarenessGraph:
    """Every host aware of every other (centralized-equivalent knowledge)."""
    hosts = model.host_ids
    edges = [(a, b) for i, a in enumerate(hosts) for b in hosts[i + 1:]]
    return AwarenessGraph(hosts, edges)


def k_hop_awareness(model: DeploymentModel, k: int) -> AwarenessGraph:
    """Aware of hosts within *k* physical-link hops (k=1 == connectivity)."""
    if k < 1:
        raise ModelError("k must be >= 1")
    hosts = model.host_ids
    neighbors = {h: set(model.host_neighbors(h)) for h in hosts}
    edges = []
    for host in hosts:
        frontier = {host}
        reached: Set[str] = set()
        for __ in range(k):
            frontier = set().union(*(neighbors[f] for f in frontier)) - {host}
            reached |= frontier
        edges.extend((host, other) for other in reached)
    return AwarenessGraph(hosts, edges)


def random_awareness(model: DeploymentModel, fraction: float,
                     seed: Optional[int] = None,
                     include_connectivity: bool = True) -> AwarenessGraph:
    """Awareness where each host knows ~``fraction`` of the other hosts.

    Used for E5's awareness sweep.  With ``include_connectivity`` the
    physical neighbors are always included (a host can hardly be unaware of
    a host it has a live link to), and random extra edges are added until
    the requested mean fraction is reached.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ModelError("fraction must be in [0, 1]")
    rng = random.Random(seed)
    base_edges = ([link.hosts for link in model.physical_links]
                  if include_connectivity else [])
    graph = AwarenessGraph(model.host_ids, base_edges)
    hosts = list(model.host_ids)
    all_pairs = [(a, b) for i, a in enumerate(hosts) for b in hosts[i + 1:]]
    rng.shuffle(all_pairs)
    for a, b in all_pairs:
        if graph.awareness_fraction() >= fraction:
            break
        graph.add(a, b)
    return graph
