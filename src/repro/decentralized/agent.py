"""Per-host agents and the decentralized framework instantiation (Figure 3).

Each host runs the full stack locally: a Local Monitor (its AdminComponent's
monitors), a Decentralized Model (a :class:`~repro.decentralized.sync.KnowledgeBase`
synchronized with aware peers), a Decentralized Algorithm (the
:class:`~repro.decentralized.auction.AuctionAgentComponent`), a Decentralized
Analyzer (:class:`DecentralizedAnalyzer`, which coordinates with its remote
counterparts through voting/polling), and a Local Effector (its Admin's
migrate-out machinery).

:class:`DecentralizedFramework` drives the whole thing in rounds:

1. every host observes its local state and monitoring data into its KB;
2. KBs synchronize one (or more) awareness-hops;
3. the analyzers poll on whether to act now;
4. if so, agents run an auction wave — staggered so that "none of its
   neighboring hosts is already conducting an auction" — and winning bids
   migrate components host-to-host with no central coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import MiddlewareError
from repro.core.model import DeploymentModel
from repro.core.objectives import AvailabilityObjective, Objective
from repro.core.report import ReportBase, deprecated_alias
from repro.decentralized.auction import AuctionAgentComponent, agent_id
from repro.decentralized.awareness import AwarenessGraph, from_connectivity
from repro.decentralized.sync import KnowledgeBase, ModelSynchronizer
from repro.decentralized.voting import PollingProtocol, Voter, VotingProtocol
from repro.middleware.runtime import DistributedSystem


class DecentralizedAnalyzer(Voter):
    """One host's analyzer: judges proposals from its partial view.

    Votes/preferences are computed against the availability its local KB
    predicts — a host fully satisfied with what it can see prefers to
    defer, a host seeing degraded interactions wants a redeployment round.

    With ``preferences`` set (a :class:`~repro.core.utility.UserPreferences`),
    the host judges by *its user's satisfaction* instead of raw
    availability — §6's "modelling user preferences for multiple desired
    system characteristics in a decentralized environment".
    """

    def __init__(self, host: str, kb: KnowledgeBase,
                 objective: Optional[Objective] = None,
                 availability_goal: float = 0.95,
                 preferences: Optional[Any] = None):
        self._host = host
        self.kb = kb
        self.objective = objective if objective is not None \
            else AvailabilityObjective()
        self.availability_goal = availability_goal
        self.preferences = preferences
        self.local_estimates: List[float] = []

    @property
    def host(self) -> str:
        return self._host

    def local_estimate(self) -> float:
        """Objective value (or user satisfaction) of the deployment as this
        host's KB sees it."""
        view = self.kb.materialize()
        if not view.component_ids:
            return 1.0
        if self.preferences is not None:
            estimate = self.preferences.satisfaction(view, view.deployment)
        else:
            estimate = self.objective.evaluate(view, view.deployment)
        self.local_estimates.append(estimate)
        return estimate

    # -- Voter ---------------------------------------------------------------
    def vote(self, proposal: Mapping[str, Any]) -> bool:
        kind = proposal.get("type")
        if kind == "auction_round":
            return self.local_estimate() < self.availability_goal
        if kind == "accept_move":
            # A move that the proposer predicts improves things; accept
            # unless our view contradicts a gain.
            return proposal.get("expected_gain", 0.0) > 0.0
        return False

    def preference(self, options: Sequence[str],
                   context: Mapping[str, Any]) -> str:
        wants_action = self.local_estimate() < self.availability_goal
        for option in options:
            if wants_action and option == "redeploy_now":
                return option
            if not wants_action and option == "defer":
                return option
        return options[0]


@dataclass
class RoundReport(ReportBase):
    """What one decentralized improvement round did."""

    index: int
    time: float
    facts_synced: int
    decision: str
    auctions: int
    moves: int
    availability_before: float
    availability_after: float

    def summary_line(self) -> str:
        return (f"round {self.index} t={self.time:.1f}: {self.decision}; "
                f"{self.auctions} auctions, {self.moves} moves; "
                f"availability {self.availability_before:.4f} -> "
                f"{self.availability_after:.4f}")

    def to_dict(self, **opts: Any) -> Dict[str, Any]:
        return {
            "index": self.index,
            "time": self.time,
            "facts_synced": self.facts_synced,
            "decision": self.decision,
            "auctions": self.auctions,
            "moves": self.moves,
            "availability_before": self.availability_before,
            "availability_after": self.availability_after,
        }

    def render(self, **opts: Any) -> str:
        return self.summary_line()

    summary = deprecated_alias("summary_line", "summary")


class DecentralizedFramework:
    """Figure 3's instantiation over a deployer-less distributed system.

    Args:
        system: A :class:`DistributedSystem` built with
            ``decentralized=True``.
        objective: Used for ground-truth reporting and local estimates.
        awareness: Which hosts exchange knowledge/auctions; defaults to
            physical connectivity (the paper's notion).
        bid_timeout: How long auctions stay open (simulated seconds).
        sync_rounds_per_cycle: Awareness-hops of knowledge propagation per
            improvement round.
        use_polling: Coordinate the go/no-go decision by polling; set False
            to use majority voting instead (both protocols from §5.2).
        availability_goal: Per-host satisfaction threshold for analyzers.
        preferences: Optional per-host
            :class:`~repro.core.utility.UserPreferences`; a host with
            preferences judges rounds by its user's satisfaction instead of
            raw availability (§6).
    """

    def __init__(self, system: DistributedSystem,
                 objective: Optional[Objective] = None,
                 awareness: Optional[AwarenessGraph] = None,
                 bid_timeout: float = 0.5,
                 sync_rounds_per_cycle: int = 1,
                 use_polling: bool = True,
                 availability_goal: float = 0.95,
                 preferences: Optional[Mapping[str, Any]] = None):
        if not system.decentralized:
            raise MiddlewareError(
                "DecentralizedFramework requires a DistributedSystem built "
                "with decentralized=True")
        self.system = system
        self.model = system.model  # ground truth, used for reporting only
        self.clock = system.clock
        self.objective = objective if objective is not None \
            else AvailabilityObjective()
        self.awareness = awareness if awareness is not None \
            else from_connectivity(system.model)
        self.synchronizer = ModelSynchronizer(self.awareness)
        self.synchronizer.seed_from_model(system.model)
        self.bid_timeout = bid_timeout
        self.sync_rounds_per_cycle = sync_rounds_per_cycle
        self.use_polling = use_polling
        self.agents: Dict[str, AuctionAgentComponent] = {}
        self.analyzers: Dict[str, DecentralizedAnalyzer] = {}
        self.polling = PollingProtocol(self.awareness)
        self.voting = VotingProtocol(self.awareness)
        self.rounds: List[RoundReport] = []
        self.preferences = dict(preferences or {})
        self._install_agents(availability_goal)

    # ------------------------------------------------------------------
    def _install_agents(self, availability_goal: float) -> None:
        agent_locations = {
            agent_id(host): host for host in self.model.host_ids
        }
        for host in self.model.host_ids:
            kb = self.synchronizer.base(host)
            agent = AuctionAgentComponent(
                host, self.clock, kb,
                neighbors=self.awareness.aware_of(host),
                bid_timeout=self.bid_timeout)
            self.system.architecture(host).add_component(agent)
            self.agents[host] = agent
            self.analyzers[host] = DecentralizedAnalyzer(
                host, kb, self.objective, availability_goal,
                preferences=self.preferences.get(host))
        for host in self.model.host_ids:
            dist = self.system.architecture(host).distribution_connector
            dist.update_locations(agent_locations)

    # ------------------------------------------------------------------
    def _ingest_monitoring(self) -> None:
        """Local Monitor -> Decentralized Model, per host."""
        for host in self.model.host_ids:
            admin = self.system.admin(host)
            kb = self.synchronizer.base(host)
            report = admin.collect_report(reset=False)
            for peer, estimate in (report.get("reliability") or {}).items():
                key = (host, peer) if host <= peer else (peer, host)
                kb.observe("physical_link", key, "exists", True)
                kb.observe("physical_link", key, "reliability", estimate)
            for pair, rate in (report.get("evt_frequency") or {}).items():
                src, __, dst = pair.partition("|")
                key = (src, dst) if src <= dst else (dst, src)
                kb.observe("logical_link", key, "exists", True)
                # Directed rate; the undirected frequency is at least this.
                previous = kb.get("logical_link", key, "frequency", 0.0)
                kb.observe("logical_link", key, "frequency",
                           max(previous, rate))
            self.agents[host].observe_local()

    def _decide(self) -> str:
        """Poll (or vote) the analyzers on acting now."""
        initiator_host = self.model.host_ids[0]
        initiator = self.analyzers[initiator_host]
        participants = dict(self.analyzers)
        if self.use_polling:
            outcome = self.polling.conduct(
                initiator, participants, ["redeploy_now", "defer"])
            return outcome.winner
        vote = self.voting.conduct(
            initiator, participants, {"type": "auction_round"})
        return "redeploy_now" if vote.passed else "defer"

    def _auction_wave(self) -> Tuple[int, int]:
        """Stagger one initiation attempt per host; returns (auctions, moves).

        Hosts attempt in sorted order with small offsets; the busy-neighbor
        rule inside the agents serializes adjacent auctions.
        """
        before = {host: len(agent.completed)
                  for host, agent in self.agents.items()}
        offset = 0.0
        for host in self.model.host_ids:
            self.clock.schedule(offset, self.agents[host].try_initiate)
            offset += self.bid_timeout * 1.5
        # Let every auction open, close, and migrate.
        self.clock.run(offset + self.bid_timeout * 3)
        auctions = 0
        moves = 0
        for host, agent in self.agents.items():
            new_records = agent.completed[before[host]:]
            auctions += len(new_records)
            moves += sum(1 for record in new_records if record.moved)
        return auctions, moves

    # ------------------------------------------------------------------
    def improvement_round(self) -> RoundReport:
        """One full decentralized cycle: observe, sync, decide, auction."""
        index = len(self.rounds) + 1
        before = self.ground_truth_availability()
        self._ingest_monitoring()
        synced = 0
        for __ in range(self.sync_rounds_per_cycle):
            synced += self.synchronizer.sync_round()
        decision = self._decide()
        auctions = moves = 0
        if decision == "redeploy_now":
            auctions, moves = self._auction_wave()
            self._refresh_ground_truth()
        after = self.ground_truth_availability()
        report = RoundReport(index, self.clock.now, synced, decision,
                             auctions, moves, before, after)
        self.rounds.append(report)
        return report

    def run(self, rounds: int) -> List[RoundReport]:
        return [self.improvement_round() for __ in range(rounds)]

    # ------------------------------------------------------------------
    def _refresh_ground_truth(self) -> None:
        """Mirror actual (post-migration) placement into the ground-truth
        model, for honest reporting."""
        for component_id, host in self.system.actual_deployment().items():
            if self.model.has_component(component_id):
                self.model.deploy(component_id, host)

    def ground_truth_availability(self) -> float:
        self._refresh_ground_truth()
        return self.objective.evaluate(self.model, self.model.deployment)

    def status(self) -> Dict[str, Any]:
        return {
            "rounds": len(self.rounds),
            "availability": self.ground_truth_availability(),
            "awareness_fraction": self.awareness.awareness_fraction(),
            "auctions": sum(len(a.completed) for a in self.agents.values()),
            "moves": sum(
                1 for a in self.agents.values()
                for record in a.completed if record.moved),
        }
