"""Message-level DecAp: auctions between per-host agents over the middleware.

This is the protocol realization of Section 5.2 — where
:class:`repro.algorithms.decap.DecApAlgorithm` simulates the auction's
*decisions* directly against a model, this module runs the actual message
exchange: agents announce auctions with events, bids travel over (reliable)
control channels, deadlines close auctions on the simulation clock, and
winning bids trigger real component migrations through the host Admins.

"Each host's agent initiates an auction for the redeployment of its local
components, assuming none of its neighboring (i.e., connected) hosts is
already conducting an auction.  The auction initiation is done by sending to
all the neighboring hosts a message that carries information about a
component to be redeployed ... The agents receiving this message have a
limited time to enter a bid on the component before the auction closes."

Bids are computed from each agent's *local knowledge base* (its synced
partial model), preserving DecAp's information locality.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.errors import AuctionError
from repro.decentralized.sync import KnowledgeBase
from repro.middleware.admin import AdminComponent, ExtensibleComponent, admin_id
from repro.middleware.events import Event
from repro.sim.clock import SimClock


def agent_id(host: str) -> str:
    """Canonical component id of the auction agent on *host*."""
    return f"agent@{host}"


def _pair(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def interaction_volume(kb: KnowledgeBase, comp_a: str, comp_b: str) -> float:
    """frequency * evt_size between two components, per *kb*'s knowledge."""
    key = _pair(comp_a, comp_b)
    if not kb.knows("logical_link", key):
        return 0.0
    frequency = kb.get("logical_link", key, "frequency", 0.0)
    size = kb.get("logical_link", key, "evt_size", 1.0)
    return frequency * size


def local_components_of(kb: KnowledgeBase, host: str) -> Tuple[str, ...]:
    """Components *kb* believes are deployed on *host*."""
    out = []
    for fact in kb.facts():
        category, entity, attribute = fact.key
        if category == "deployment" and attribute == "host" \
                and fact.value == host:
            out.append(entity)
    return tuple(sorted(out))


def can_fit(kb: KnowledgeBase, host: str, component: str) -> bool:
    """Memory-constraint check against *kb*'s knowledge of *host*."""
    capacity = kb.get("host", host, "memory", float("inf"))
    used = sum(
        kb.get("component", local, "memory", 0.0)
        for local in local_components_of(kb, host)
    )
    need = kb.get("component", component, "memory", 0.0)
    return used + need <= capacity


def link_reliability(kb: KnowledgeBase, host_a: str, host_b: str) -> float:
    if host_a == host_b:
        return 1.0
    key = _pair(host_a, host_b)
    if not kb.knows("physical_link", key):
        return 0.0
    if not kb.get("physical_link", key, "connected", True):
        return 0.0
    return kb.get("physical_link", key, "reliability", 1.0)


@dataclass
class AuctionRecord:
    """Bookkeeping for one auction conducted by an agent."""

    auction_id: str
    component: str
    auctioneer: str
    invited: Tuple[str, ...]
    bids: Dict[str, float] = field(default_factory=dict)
    winner: Optional[str] = None
    moved: bool = False
    closed: bool = False


class AuctionAgentComponent(ExtensibleComponent):
    """The Decentralized Algorithm component of Figure 3, as an agent.

    Args:
        host: Host this agent lives on.
        clock: Simulation clock (for bid deadlines).
        kb: The host's knowledge base (local, partial model).
        neighbors: Awareness set — hosts whose agents hear our auctions.
        bid_timeout: Simulated seconds an auction stays open.
    """

    def __init__(self, host: str, clock: SimClock, kb: KnowledgeBase,
                 neighbors: Tuple[str, ...], bid_timeout: float = 0.5):
        super().__init__(agent_id(host))
        self.host = host
        self.clock = clock
        self.kb = kb
        self.neighbors = tuple(sorted(neighbors))
        self.bid_timeout = bid_timeout
        self._auction_counter = itertools.count(1)
        #: Our currently open auction, if any.
        self.active: Optional[AuctionRecord] = None
        #: Hosts we believe are currently auctioning.
        self.busy_neighbors: Set[str] = set()
        self.completed: List[AuctionRecord] = []
        self.bids_submitted = 0
        self.moves_won = 0

    # ------------------------------------------------------------------
    @property
    def local_admin(self) -> AdminComponent:
        return self.local_architecture.component(admin_id(self.host))

    def _send_agent(self, host: str, name: str,
                    payload: Dict[str, Any]) -> None:
        self.send(Event(name, payload, source=self.id,
                        target=agent_id(host)))

    def observe_local(self) -> None:
        """Refresh the KB's view of what is deployed here (Local Monitor)."""
        for component_id in self.local_architecture.component_ids:
            if component_id.startswith(("admin@", "agent@")):
                continue
            self.kb.observe("deployment", component_id, "host", self.host)

    # ------------------------------------------------------------------
    # Auction initiation (auctioneer role)
    # ------------------------------------------------------------------
    def local_app_components(self) -> Tuple[str, ...]:
        return tuple(
            c for c in self.local_architecture.component_ids
            if not c.startswith(("admin@", "agent@"))
        )

    def may_initiate(self) -> bool:
        return self.active is None and not self.busy_neighbors

    def try_initiate(self) -> bool:
        """Open an auction for one local component, if permitted.

        Components are auctioned round-robin (lowest id first among those
        not auctioned recently); returns True when an auction opened.
        """
        if not self.may_initiate():
            return False
        candidates = self.local_app_components()
        if not candidates:
            return False
        recently = {record.component for record in self.completed[-len(candidates):]}
        fresh = [c for c in candidates if c not in recently]
        component = (fresh or list(candidates))[0]
        return self.initiate_auction(component)

    def initiate_auction(self, component: str) -> bool:
        if not self.may_initiate():
            return False
        if component not in self.local_app_components():
            raise AuctionError(
                f"{self.id}: cannot auction non-local component {component!r}")
        reachable = [
            h for h in self.neighbors
            if h in self.connector_neighbors()
        ]
        if not reachable:
            return False
        auction_id = f"{self.host}#{next(self._auction_counter)}"
        record = AuctionRecord(auction_id, component, self.host,
                               tuple(reachable))
        self.active = record
        payload = {
            "auction_id": auction_id,
            "component": component,
            "auctioneer_host": self.host,
            "memory": self.kb.get("component", component, "memory", 0.0),
        }
        for host in reachable:
            self._send_agent(host, "admin.auction_announce", payload)
        self.clock.schedule(self.bid_timeout, self._close_auction, auction_id)
        return True

    def connector_neighbors(self) -> Tuple[str, ...]:
        dist = self.local_architecture.distribution_connector
        return dist.neighbors() if dist is not None else ()

    def _close_auction(self, auction_id: str) -> None:
        record = self.active
        if record is None or record.auction_id != auction_id:
            return
        record.closed = True
        self.active = None
        winner, final_bid, keep = self._settle(record)
        record.winner = winner
        if winner is not None and winner != self.host \
                and final_bid > keep + 1e-12:
            record.moved = True
            self.local_admin.migrate_out(record.component, winner)
            self.kb.observe("deployment", record.component, "host", winner)
        self.completed.append(record)
        result = {"auction_id": auction_id,
                  "winner": record.winner if record.moved else self.host}
        for host in record.invited:
            self._send_agent(host, "admin.auction_result", result)

    def _settle(self, record: AuctionRecord,
                ) -> Tuple[Optional[str], float, float]:
        """Compute final bids and the keep-value from local knowledge.

        Mirrors :class:`repro.algorithms.decap.DecApAlgorithm`: a bidder's
        reported local interaction volume becomes perfectly reliable if it
        wins; traffic with components staying here rides the
        auctioneer-winner link; the keep-value prices the status quo with
        the same information.
        """
        component = record.component
        retained = sum(
            interaction_volume(self.kb, component, other)
            for other in self.local_app_components() if other != component
        )
        keep = retained
        for bidder, bid in record.bids.items():
            keep += bid * link_reliability(self.kb, self.host, bidder)
        best_host: Optional[str] = None
        best_bid = float("-inf")
        for bidder in sorted(record.bids):
            final = record.bids[bidder] + retained * link_reliability(
                self.kb, self.host, bidder)
            # Traffic with the other bidders' components rides the
            # bidder-to-bidder links (qualities known via the synced KB),
            # keeping the final bid information-symmetric with keep.
            for other_bidder, other_bid in record.bids.items():
                if other_bidder != bidder:
                    final += other_bid * link_reliability(
                        self.kb, bidder, other_bidder)
            if final > best_bid:
                best_bid = final
                best_host = bidder
        return best_host, best_bid, keep

    # ------------------------------------------------------------------
    # Bidding (participant role)
    # ------------------------------------------------------------------
    def _compute_bid(self, component: str,
                     component_memory: float) -> Optional[float]:
        self.kb.observe("component", component, "memory", component_memory)
        if not can_fit(self.kb, self.host, component):
            return None
        return sum(
            interaction_volume(self.kb, component, local)
            for local in self.local_app_components()
        )

    # ------------------------------------------------------------------
    def handle(self, event: Event) -> None:
        if event.name == "admin.auction_announce":
            auctioneer = event.payload["auctioneer_host"]
            self.busy_neighbors.add(auctioneer)
            bid = self._compute_bid(event.payload["component"],
                                    event.payload.get("memory", 0.0))
            if bid is not None:
                self.bids_submitted += 1
                self._send_agent(auctioneer, "admin.auction_bid", {
                    "auction_id": event.payload["auction_id"],
                    "bidder_host": self.host,
                    "bid": bid,
                })
        elif event.name == "admin.auction_bid":
            record = self.active
            if record is not None \
                    and record.auction_id == event.payload["auction_id"]:
                record.bids[event.payload["bidder_host"]] = \
                    event.payload["bid"]
        elif event.name == "admin.auction_result":
            # The auctioneer is free again.
            auction_id = event.payload["auction_id"]
            auctioneer = auction_id.split("#", 1)[0]
            self.busy_neighbors.discard(auctioneer)
            winner = event.payload.get("winner")
            if winner == self.host:
                self.moves_won += 1
