"""Coordination protocols for decentralized analyzers.

Section 3.1 lists "distributed voting" and "auction-based" as the
decentralized cooperative protocols the algorithm layer must accommodate,
and Section 5.2 says "the analyzer uses either the voting or the polling
protocol to decide on the appropriate course of action".

Both protocols here run over a set of *participants* — objects exposing the
small :class:`Voter` interface — filtered by awareness: only hosts the
initiator is aware of take part, so a vote in a fragmented system is
genuinely local, with all the consequences that has for global optimality.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import SynchronizationError
from repro.decentralized.awareness import AwarenessGraph


class Voter(ABC):
    """A participant in voting/polling, usually a decentralized agent."""

    @property
    @abstractmethod
    def host(self) -> str:
        """The host this participant speaks for."""

    @abstractmethod
    def vote(self, proposal: Mapping[str, Any]) -> bool:
        """Yes/no on a concrete proposal (VotingProtocol)."""

    @abstractmethod
    def preference(self, options: Sequence[str],
                   context: Mapping[str, Any]) -> str:
        """Pick the preferred option (PollingProtocol)."""


@dataclass
class VoteOutcome:
    """Result of one voting round."""

    proposal: Dict[str, Any]
    initiator: str
    yes: Tuple[str, ...]
    no: Tuple[str, ...]
    passed: bool

    @property
    def participation(self) -> int:
        return len(self.yes) + len(self.no)


class VotingProtocol:
    """Majority (or configurable-quorum) yes/no voting among aware hosts.

    The initiator always votes; ties fail (a change of deployment should
    need a real majority).
    """

    def __init__(self, awareness: AwarenessGraph,
                 quorum_fraction: float = 0.5):
        if not 0.0 <= quorum_fraction <= 1.0:
            raise SynchronizationError("quorum_fraction must be in [0,1]")
        self.awareness = awareness
        self.quorum_fraction = quorum_fraction
        self.history: List[VoteOutcome] = []

    def conduct(self, initiator: Voter, participants: Mapping[str, Voter],
                proposal: Mapping[str, Any]) -> VoteOutcome:
        eligible = [initiator.host]
        eligible.extend(
            h for h in self.awareness.aware_of(initiator.host)
            if h in participants)
        yes: List[str] = []
        no: List[str] = []
        for host in sorted(set(eligible)):
            voter = participants.get(host) if host != initiator.host \
                else initiator
            if voter is None:
                continue
            (yes if voter.vote(proposal) else no).append(host)
        passed = len(yes) > self.quorum_fraction * (len(yes) + len(no))
        outcome = VoteOutcome(dict(proposal), initiator.host,
                              tuple(yes), tuple(no), passed)
        self.history.append(outcome)
        return outcome


@dataclass
class PollOutcome:
    """Result of one polling round."""

    options: Tuple[str, ...]
    initiator: str
    choices: Dict[str, str]
    winner: str

    def tally(self) -> Dict[str, int]:
        counts: Dict[str, int] = {option: 0 for option in self.options}
        for choice in self.choices.values():
            counts[choice] = counts.get(choice, 0) + 1
        return counts


class PollingProtocol:
    """Plurality polling: each aware host names its preferred option.

    Ties break toward the option listed first (deterministic, and lets the
    initiator order options by its own preference).
    """

    def __init__(self, awareness: AwarenessGraph):
        self.awareness = awareness
        self.history: List[PollOutcome] = []

    def conduct(self, initiator: Voter, participants: Mapping[str, Voter],
                options: Sequence[str],
                context: Optional[Mapping[str, Any]] = None) -> PollOutcome:
        if not options:
            raise SynchronizationError("polling requires at least one option")
        context = dict(context or {})
        eligible = [initiator.host]
        eligible.extend(
            h for h in self.awareness.aware_of(initiator.host)
            if h in participants)
        choices: Dict[str, str] = {}
        for host in sorted(set(eligible)):
            voter = participants.get(host) if host != initiator.host \
                else initiator
            if voter is None:
                continue
            choice = voter.preference(list(options), context)
            if choice not in options:
                raise SynchronizationError(
                    f"{host} voted for unknown option {choice!r}")
            choices[host] = choice
        counts = {option: 0 for option in options}
        for choice in choices.values():
            counts[choice] += 1
        winner = max(options, key=lambda option: counts[option])
        outcome = PollOutcome(tuple(options), initiator.host, choices, winner)
        self.history.append(outcome)
        return outcome
