#!/usr/bin/env python
"""Utility-based multi-stakeholder deployment (the §6 future work, live).

Three stakeholders judge the same crisis-response system differently:

* the **HQ analyst** wants the status picture available and fresh
  (availability-heavy, some latency);
* the **field commander** wants responsiveness on the field net
  (latency-heavy);
* the **logistics officer** worries about PDA batteries lasting the
  mission (durability).

Each stakeholder's preferences are utility curves; their mean satisfaction
becomes a single pluggable objective that the stock algorithms optimize —
"a deployment architecture that maximizes the users' overall satisfaction".

Run:  python examples/utility_preferences.py
"""

from repro.algorithms import HillClimbingAlgorithm, StochasticAlgorithm
from repro.core import (
    AvailabilityObjective, ConstraintSet, DurabilityObjective,
    LatencyObjective, MemoryConstraint, SatisfactionObjective,
    UserPreferences, UtilityFunction,
)
from repro.scenarios import CrisisConfig, build_crisis_scenario


def main() -> None:
    scenario = build_crisis_scenario(CrisisConfig(
        commanders=2, troops_per_commander=2, seed=3))
    model = scenario.model
    # Field PDAs run on batteries; HQ is mains-powered.
    for host in scenario.commanders + scenario.troops:
        model.set_host_param(host, "battery", 800.0)

    availability = AvailabilityObjective()
    latency = LatencyObjective()
    durability = DurabilityObjective()
    latency_now = latency.evaluate(model, model.deployment)

    analyst = (UserPreferences("hq-analyst")
               .add(UtilityFunction(availability,
                                    [(0.6, 0.0), (0.95, 1.0)]), weight=3.0)
               .add(UtilityFunction(latency,
                                    [(0.0, 1.0), (latency_now * 2, 0.0)]),
                    weight=1.0))
    commander = (UserPreferences("field-commander")
                 .add(UtilityFunction(latency,
                                      [(0.0, 1.0), (latency_now, 0.0)]),
                      weight=3.0)
                 .add(UtilityFunction(availability,
                                      [(0.5, 0.0), (0.9, 1.0)]), weight=1.0))
    logistics = (UserPreferences("logistics")
                 .add(UtilityFunction(durability,
                                      [(50.0, 0.0), (400.0, 1.0)])))

    users = [analyst, commander, logistics]
    objective = SatisfactionObjective(users)
    constraints = ConstraintSet([MemoryConstraint()])
    for constraint in scenario.constraints:
        constraints.add(constraint)

    def report(label, deployment):
        print(f"{label}:")
        print(f"  overall satisfaction "
              f"{objective.evaluate(model, deployment):.4f}")
        for user in users:
            print(f"    {user.name:<16s} "
                  f"{user.satisfaction(model, deployment):.4f}  "
                  f"{ {k: round(v, 3) for k, v in user.breakdown(model, deployment).items()} }")
        name, score = objective.least_satisfied(model, deployment)
        print(f"  least satisfied: {name} ({score:.4f})")

    report("initial deployment", model.deployment)

    print("\noptimizing overall satisfaction...")
    best = None
    for algorithm in (
        HillClimbingAlgorithm(objective, constraints, seed=1),
        StochasticAlgorithm(objective, constraints, seed=1, iterations=150),
    ):
        result = algorithm.run(model)
        print(f"  {result.summary()}")
        if best is None or result.value > best.value:
            best = result
    model.set_deployment(best.deployment)
    print()
    report(f"after {best.algorithm}", model.deployment)


if __name__ == "__main__":
    main()
