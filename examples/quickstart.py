#!/usr/bin/env python
"""Quickstart: generate an architecture, improve its deployment, compare
algorithms — the 60-second tour of the public API.

Run:  python examples/quickstart.py
"""

from repro.algorithms import (
    AvalaAlgorithm, ExactAlgorithm, StochasticAlgorithm,
)
from repro.core import (
    AvailabilityObjective, ConstraintSet, LatencyObjective, MemoryConstraint,
)
from repro.core.objectives import evaluate_all
from repro.desi import DeSiModel, Generator, GeneratorConfig, GraphView


def main() -> None:
    # 1. Generate a random-but-feasible deployment architecture, the way
    #    DeSi's Generator does: 4 hosts, 10 components, tight memory.
    config = GeneratorConfig(hosts=4, components=10,
                             host_memory=(20.0, 40.0),
                             memory_headroom=1.3,
                             reliability=(0.3, 0.95))
    model = Generator(config, seed=42).generate("quickstart")
    print(f"generated: {model}")

    # 2. Score the random initial deployment.
    objective = AvailabilityObjective()
    constraints = ConstraintSet([MemoryConstraint()])
    initial = model.deployment
    print(f"initial availability: "
          f"{objective.evaluate(model, initial):.4f}")

    # 3. Run the paper's three centralized algorithms and compare.
    for algorithm in (
        ExactAlgorithm(objective, constraints),
        AvalaAlgorithm(objective, constraints, seed=1),
        StochasticAlgorithm(objective, constraints, seed=1, iterations=50),
    ):
        result = algorithm.run(model)
        print(f"  {result.summary()}")

    # 4. Adopt the best deployment and look at the trade-offs.
    best = ExactAlgorithm(objective, constraints).run(model)
    model.set_deployment(best.deployment)
    scores = evaluate_all(
        [AvailabilityObjective(), LatencyObjective()], model,
        model.deployment)
    print(f"adopted exact deployment: {scores}")

    # 5. Render the deployment the way DeSi's graph view shows it.
    desi = DeSiModel(model)
    print()
    print(GraphView(desi).render_text())


if __name__ == "__main__":
    main()
