#!/usr/bin/env python
"""Crisis response: the paper's Section-1 scenario, end to end.

Headquarters, commander PDAs, and troop PDAs run a live (simulated)
distributed application over Prism-MW-style middleware.  The centralized
framework monitors it, and when a commander's uplink degrades mid-mission,
redeploys components to restore availability — while the architect's
constraints (the status display stays at HQ, coordinators stay in the
field) hold throughout.

Run:  python examples/crisis_response.py
"""

from repro.core import AvailabilityObjective, LatencyObjective
from repro.core.framework import CentralizedFramework
from repro.middleware import DistributedSystem
from repro.scenarios import CrisisConfig, build_crisis_scenario
from repro.sim import InteractionWorkload, SimClock, StepChange


def main() -> None:
    scenario = build_crisis_scenario(CrisisConfig(
        commanders=2, troops_per_commander=3, seed=7))
    model = scenario.model
    print(f"scenario: {model}")
    print(f"  hq={scenario.hq} commanders={scenario.commanders} "
          f"troops={len(scenario.troops)}")

    clock = SimClock()
    system = DistributedSystem(model, clock, master_host=scenario.hq,
                               seed=11)
    framework = CentralizedFramework(
        system, AvailabilityObjective(), scenario.constraints,
        latency_guard=LatencyObjective(),
        user_input=scenario.user_input,
        monitor_interval=2.0, seed=13)
    workload = InteractionWorkload(model, clock, system.emit, seed=17)

    # The incident: commander 0's HQ uplink degrades badly at t=40.
    StepChange(system.network, scenario.hq, scenario.commanders[0],
               at=40.0, attribute="reliability", value=0.25).start()

    print(f"\nt=0    modeled availability "
          f"{framework.modeled_availability():.4f}")
    framework.start(cycles_per_analysis=2)
    workload.start()
    for checkpoint in (20.0, 40.0, 60.0, 80.0):
        clock.run(checkpoint - clock.now)
        print(f"t={checkpoint:<5.0f}modeled availability "
              f"{framework.modeled_availability():.4f}   "
              f"delivery ratio {framework.app_delivery_ratio():.4f}")
    framework.stop()
    workload.stop()

    print("\nimprovement cycles:")
    for cycle in framework.cycles:
        print(f"  {cycle.summary()}")

    print("\nfinal placement:")
    for component, host in sorted(system.actual_deployment().items()):
        print(f"  {component:<16s} -> {host}")
    print("\narchitect constraints held:")
    print(f"  status_display on hq: "
          f"{model.deployment['status_display'] == scenario.hq}")
    print(f"  coordinators off hq:  "
          f"{all(model.deployment[f'coordinator{i}'] != scenario.hq for i in range(2))}")


if __name__ == "__main__":
    main()
