#!/usr/bin/env python
"""Decentralized sensor field: auctions instead of a master host.

A 3x3 grid of battery-powered nodes, linked only to grid neighbors, runs
sampler/aggregator/sink components.  No host has global knowledge: each
node gossips its partial model to the neighbors it is aware of, the
analyzers poll on whether to act, and components migrate via DecAp-style
auctions — all over real middleware messages.

Run:  python examples/decentralized_fleet.py
"""

from repro.core import AvailabilityObjective
from repro.decentralized import DecentralizedFramework, from_connectivity
from repro.middleware import DistributedSystem
from repro.scenarios import build_sensor_field
from repro.sim import InteractionWorkload, SimClock


def main() -> None:
    scenario = build_sensor_field(rows=3, cols=3, aggregators=3, seed=5)
    model = scenario.model
    print(f"scenario: {model}")

    clock = SimClock()
    system = DistributedSystem(model, clock, decentralized=True, seed=6)
    print(f"master host: {system.master_host} (decentralized: none)")

    # Warm up monitoring so each node's knowledge base has real data.
    system.install_monitoring(ping_interval=0.5, pings_per_round=5)
    workload = InteractionWorkload(model, clock, system.emit, seed=8).start()
    clock.run(10.0)

    awareness = from_connectivity(model)
    framework = DecentralizedFramework(
        system, AvailabilityObjective(), awareness=awareness,
        bid_timeout=0.3, availability_goal=0.99)
    print(f"awareness fraction (connectivity-derived): "
          f"{awareness.awareness_fraction():.2f}")
    print(f"initial availability: "
          f"{framework.ground_truth_availability():.4f}\n")

    for report in framework.run(6):
        print(f"  {report.summary()}")
    workload.stop()

    status = framework.status()
    print(f"\ntotal auctions: {status['auctions']}, "
          f"migrations won: {status['moves']}")
    print("final placement:")
    for component, host in sorted(system.actual_deployment().items()):
        print(f"  {component:<14s} -> {host}")

    # Show one node's partial world view (the Decentralized Model).
    kb = framework.synchronizer.base(model.host_ids[0])
    view = kb.materialize()
    print(f"\n{model.host_ids[0]}'s knowledge after gossip: "
          f"{len(view.host_ids)} hosts, "
          f"{len(view.component_ids)} components "
          f"(of {len(model.host_ids)}/{len(model.component_ids)} global)")


if __name__ == "__main__":
    main()
