#!/usr/bin/env python
"""DeSi exploration session: generate, inspect, tweak, compare, export.

Reproduces the Section-4 workflow headlessly: an architect generates a
hypothetical architecture, views its tables (Figure 9) and deployment graph
(Figure 10), drags a component, assesses sensitivity to a link parameter,
runs the algorithm suite, and exports the result as xADL.

Run:  python examples/desi_exploration.py
"""

from repro.algorithms import (
    AvalaAlgorithm, ExactAlgorithm, StochasticAlgorithm,
)
from repro.core import (
    AvailabilityObjective, ConstraintSet, MemoryConstraint,
)
from repro.desi import (
    AlgorithmContainer, DeSiModel, Generator, GeneratorConfig, GraphView,
    Modifier, TableView, xadl,
)


def main() -> None:
    # -- Generate (DeSi's Generator panel) ---------------------------------
    model = Generator(GeneratorConfig(
        hosts=3, components=7, host_memory=(15.0, 30.0),
        memory_headroom=1.3, reliability=(0.3, 0.95)),
        seed=21).generate("explored")
    desi = DeSiModel(model)
    table = TableView(desi)
    graph = GraphView(desi)

    print(table.render())
    print("thumbnail:", graph.thumbnail())

    # -- Explore by hand (Figure 10's drag-and-drop) ----------------------
    objective = AvailabilityObjective()
    constraints = ConstraintSet([MemoryConstraint()])
    modifier = Modifier(desi)
    component = model.component_ids[0]
    before = objective.evaluate(model, model.deployment)
    other_host = next(h for h in model.host_ids
                      if h != model.deployment[component])
    modifier.move_component(component, other_host)
    after = objective.evaluate(model, model.deployment)
    print(f"\ndrag {component} -> {other_host}: availability "
          f"{before:.4f} -> {after:.4f}; undoing: {modifier.undo()}")

    # -- Sensitivity analysis (Section 4.3) ---------------------------------
    link = model.physical_links[0]
    print(f"\nsensitivity of availability to reliability({link.hosts[0]},"
          f"{link.hosts[1]}):")
    for value in (0.1, 0.5, 0.9):
        modifier.set_link_reliability(*link.hosts, value=value)
        print(f"  reliability={value:.1f} -> availability "
              f"{objective.evaluate(model, model.deployment):.4f}")
    modifier.undo_all()

    # -- Algorithms panel -----------------------------------------------------
    container = AlgorithmContainer(desi)
    container.register("exact",
                       lambda: ExactAlgorithm(objective, constraints))
    container.register("avala",
                       lambda: AvalaAlgorithm(objective, constraints,
                                              seed=1))
    container.register("stochastic",
                       lambda: StochasticAlgorithm(objective, constraints,
                                                   seed=1, iterations=40))
    container.invoke_all()
    print()
    print(table.results_panel())

    # -- Adopt the best and export (xADL integration) -----------------------
    best = desi.results.best(objective)
    model.set_deployment(best.deployment)
    document = xadl.to_xml(model)
    print(f"\nadopted {best.algorithm}'s deployment; xADL export is "
          f"{len(document)} bytes; first lines:")
    for line in document.splitlines()[:6]:
        print(f"  {line}")
    restored = xadl.from_xml(document)
    print(f"re-imported deployment matches: "
          f"{dict(restored.deployment) == dict(model.deployment)}")

    # -- The Figure-10 DOT render -------------------------------------------
    print("\nGraphviz DOT of the final deployment:")
    print(graph.render_dot())


if __name__ == "__main__":
    main()
