#!/usr/bin/env python
"""Baseline shootout: the framework's algorithms vs the related work.

Pits the paper's pluggable algorithm suite against the two Section-2
baselines on their home turf and away from it:

* Coign-style min-cut on the two-host client-server app it was built for;
* I5-style BIP on small systems, where it is optimal for communication
  volume but blind to availability;
* and shows both baselines failing structurally where the framework's
  algorithms keep working (more hosts, different objectives).

Run:  python examples/baseline_shootout.py
"""

from repro.algorithms import (
    AvalaAlgorithm, BIPAlgorithm, ExactAlgorithm, MinCutAlgorithm,
)
from repro.core import (
    AvailabilityObjective, ConstraintSet, MemoryConstraint,
)
from repro.core.constraints import LocationConstraint
from repro.core.errors import AlgorithmError
from repro.core.objectives import CommunicationCostObjective
from repro.desi import Generator, GeneratorConfig
from repro.scenarios import build_client_server


def main() -> None:
    # -- Round 1: Coign's home turf -----------------------------------------
    scenario = build_client_server(middle_components=8, seed=33)
    pins = ConstraintSet([c for c in scenario.constraints
                          if isinstance(c, LocationConstraint)])
    comm = CommunicationCostObjective()
    print("Round 1 - two-host client/server, minimize remote traffic:")
    initial = comm.evaluate(scenario.model, scenario.model.deployment)
    print(f"  initial remote volume: {initial:.1f} KB/s")
    for algorithm in (MinCutAlgorithm(pins), BIPAlgorithm(pins),
                      ExactAlgorithm(comm, pins)):
        result = algorithm.run(scenario.model)
        print(f"  {result.summary()}")

    # -- Round 2: availability, where single-criterion baselines lose -------
    print("\nRound 2 - availability on a small system:")
    model = Generator(GeneratorConfig(
        hosts=4, components=8, host_memory=(10.0, 25.0),
        memory_headroom=1.2, reliability=(0.2, 0.95)), seed=34).generate()
    availability = AvailabilityObjective()
    constraints = ConstraintSet([MemoryConstraint()])
    bip = BIPAlgorithm(constraints).run(model)
    print(f"  BIP (optimal for volume): availability of its solution = "
          f"{availability.evaluate(model, bip.deployment):.4f}")
    exact = ExactAlgorithm(availability, constraints).run(model)
    print(f"  Exact (availability objective): {exact.value:.4f}")
    avala = AvalaAlgorithm(availability, constraints, seed=1).run(model)
    print(f"  Avala (availability objective): {avala.value:.4f}")

    # -- Round 3: structural limits ------------------------------------------
    print("\nRound 3 - structural limits of the baselines:")
    three_host = Generator(GeneratorConfig(hosts=3, components=6),
                           seed=35).generate()
    try:
        MinCutAlgorithm(ConstraintSet()).run(three_host)
    except AlgorithmError as error:
        print(f"  mincut on 3 hosts: {error}")
    big = Generator(GeneratorConfig(hosts=6, components=40),
                    seed=36).generate()
    try:
        BIPAlgorithm(ConstraintSet(), max_space=1e6).run(big)
    except AlgorithmError as error:
        print(f"  BIP on 6x40: {error}")
    result = AvalaAlgorithm(availability,
                            ConstraintSet([MemoryConstraint()]),
                            seed=1).run(big)
    print(f"  Avala on the same 6x40 system: {result.summary()}")


if __name__ == "__main__":
    main()
